//! # aldsp-relational — the relational substrate
//!
//! ALDSP delegates as much query processing as possible to the relational
//! backends it integrates (§4.3–4.4). The paper's systems were Oracle,
//! DB2, SQL Server and Sybase; this crate is the from-scratch substitute:
//! an in-memory relational engine with a catalog ([`catalog`]), typed
//! storage with key constraints ([`store`]), the SQL AST the pushdown
//! framework generates ([`sql`]), a SQL92-semantics executor ([`exec`]),
//! per-vendor SQL text rendering ([`dialect`]), DML with conditioned
//! updates ([`dml`]), and a latency-simulating server facade with XA
//! hooks and execution statistics ([`server`]) so the distributed-join
//! and failover experiments exercise the same trade-offs as the paper's
//! testbed.

pub mod catalog;
pub mod dialect;
pub mod dml;
pub mod error;
pub mod exec;
pub mod server;
pub mod sql;
pub mod store;
pub mod types;

pub use catalog::{Catalog, Column, ForeignKey, TableSchema};
pub use dialect::{render_select, Dialect};
pub use dml::{render_dml, Delete, Dml, Insert, Update};
pub use error::SourceError;
pub use exec::ResultSet;
pub use server::{
    Fault, FaultKind, FaultTrigger, LatencyModel, RelationalServer, ServerStats, TableStatistics,
};
pub use sql::{
    ppk_block_predicate, AggFunc, JoinKind, OrderBy, OutputColumn, ScalarExpr, Select, TableRef,
};
pub use store::{Database, Row, Table};
pub use types::{SqlType, SqlValue, Truth};
