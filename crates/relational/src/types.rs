//! SQL types, values and three-valued logic.
//!
//! The substrate's value model mirrors what ALDSP's relational adaptors
//! see through JDBC (§5.3): typed column values plus SQL NULL. The
//! SQL↔XML type mapping (§4.3) lives here too: each SQL type maps to an
//! XQuery atomic type, and `NULL` maps to a *missing element* on the XML
//! side.

use aldsp_xdm::value::{AtomicType, AtomicValue, Date, DateTime, Decimal};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// SQL column types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// `VARCHAR` / `CHAR`.
    Varchar,
    /// `INTEGER` / `BIGINT`.
    Integer,
    /// `DECIMAL` / `NUMERIC`.
    Decimal,
    /// `FLOAT` / `DOUBLE`.
    Double,
    /// `DATE`.
    Date,
    /// `TIMESTAMP`.
    Timestamp,
    /// `BOOLEAN` (SQL:1999; rendered as such for engines that have it).
    Boolean,
}

impl SqlType {
    /// The XQuery atomic type this SQL type surfaces as (§4.3's
    /// "well-defined set of SQL to XML data type mappings").
    pub fn xml_type(self) -> AtomicType {
        match self {
            SqlType::Varchar => AtomicType::String,
            SqlType::Integer => AtomicType::Integer,
            SqlType::Decimal => AtomicType::Decimal,
            SqlType::Double => AtomicType::Double,
            SqlType::Date => AtomicType::Date,
            SqlType::Timestamp => AtomicType::DateTime,
            SqlType::Boolean => AtomicType::Boolean,
        }
    }

    /// The SQL type an XQuery atomic type pushes down as (for parameters).
    pub fn from_xml_type(t: AtomicType) -> Option<SqlType> {
        Some(match t {
            AtomicType::String | AtomicType::Untyped => SqlType::Varchar,
            AtomicType::Integer => SqlType::Integer,
            AtomicType::Decimal => SqlType::Decimal,
            AtomicType::Double => SqlType::Double,
            AtomicType::Date => SqlType::Date,
            AtomicType::DateTime => SqlType::Timestamp,
            AtomicType::Boolean => SqlType::Boolean,
            AtomicType::AnyAtomic => return None,
        })
    }

    /// DDL keyword for diagnostics.
    pub fn keyword(self) -> &'static str {
        match self {
            SqlType::Varchar => "VARCHAR",
            SqlType::Integer => "INTEGER",
            SqlType::Decimal => "DECIMAL",
            SqlType::Double => "DOUBLE",
            SqlType::Date => "DATE",
            SqlType::Timestamp => "TIMESTAMP",
            SqlType::Boolean => "BOOLEAN",
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A SQL value, including NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// Character data.
    Str(Arc<str>),
    /// Integer data.
    Int(i64),
    /// Exact numeric data.
    Dec(Decimal),
    /// Approximate numeric data.
    Dbl(f64),
    /// Date.
    Date(Date),
    /// Timestamp.
    Timestamp(DateTime),
    /// Boolean.
    Bool(bool),
}

impl SqlValue {
    /// Convenience string constructor.
    pub fn str(s: &str) -> SqlValue {
        SqlValue::Str(Arc::from(s))
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// SQL comparison: `None` when either side is NULL (UNKNOWN) or the
    /// types are incomparable.
    pub fn compare(&self, other: &SqlValue) -> Option<Ordering> {
        use SqlValue::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Dec(a), Dec(b)) => Some(a.cmp(b)),
            (Int(a), Dec(b)) => Some(Decimal::from_int(*a).cmp(b)),
            (Dec(a), Int(b)) => Some(a.cmp(&Decimal::from_int(*b))),
            (Dbl(a), Dbl(b)) => a.partial_cmp(b),
            (Int(a), Dbl(b)) => (*a as f64).partial_cmp(b),
            (Dbl(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Dec(a), Dbl(b)) => a.to_f64().partial_cmp(b),
            (Dbl(a), Dec(b)) => a.partial_cmp(&b.to_f64()),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Ordering for ORDER BY / GROUP BY, with NULLs ordered first
    /// ("NULLs least"), so sorting is total.
    pub fn order_cmp(&self, other: &SqlValue) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.compare(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Grouping equality: NULLs group together (SQL GROUP BY semantics,
    /// unlike WHERE's UNKNOWN).
    pub fn group_eq(&self, other: &SqlValue) -> bool {
        self.order_cmp(other) == Ordering::Equal
    }

    /// Convert to the XML-side typed atomic value; NULL yields `None`
    /// (a missing element).
    pub fn to_xml(&self) -> Option<AtomicValue> {
        Some(match self {
            SqlValue::Null => return None,
            SqlValue::Str(s) => AtomicValue::String(s.clone()),
            SqlValue::Int(i) => AtomicValue::Integer(*i),
            SqlValue::Dec(d) => AtomicValue::Decimal(*d),
            SqlValue::Dbl(d) => AtomicValue::Double(*d),
            SqlValue::Date(d) => AtomicValue::Date(*d),
            SqlValue::Timestamp(t) => AtomicValue::DateTime(*t),
            SqlValue::Bool(b) => AtomicValue::Boolean(*b),
        })
    }

    /// Convert an XML-side atomic value to a SQL value, coercing to the
    /// column type; `None` (empty sequence) becomes NULL.
    pub fn from_xml(v: Option<&AtomicValue>, ty: SqlType) -> Result<SqlValue, String> {
        let Some(v) = v else {
            return Ok(SqlValue::Null);
        };
        let target = ty.xml_type();
        let cast = v
            .cast_to(target)
            .map_err(|e| format!("cannot bind {} as {ty}: {e}", v.string_value()))?;
        Ok(match cast {
            AtomicValue::String(s) | AtomicValue::Untyped(s) => SqlValue::Str(s),
            AtomicValue::Integer(i) => SqlValue::Int(i),
            AtomicValue::Decimal(d) => SqlValue::Dec(d),
            AtomicValue::Double(d) => SqlValue::Dbl(d),
            AtomicValue::Date(d) => SqlValue::Date(d),
            AtomicValue::DateTime(t) => SqlValue::Timestamp(t),
            AtomicValue::Boolean(b) => SqlValue::Bool(b),
        })
    }

    /// Does this value conform to the column type (modulo integer/decimal
    /// widening)?
    pub fn conforms_to(&self, ty: SqlType) -> bool {
        matches!(
            (self, ty),
            (SqlValue::Null, _)
                | (SqlValue::Str(_), SqlType::Varchar)
                | (SqlValue::Int(_), SqlType::Integer)
                | (SqlValue::Int(_), SqlType::Decimal)
                | (SqlValue::Dec(_), SqlType::Decimal)
                | (SqlValue::Dbl(_), SqlType::Double)
                | (SqlValue::Date(_), SqlType::Date)
                | (SqlValue::Timestamp(_), SqlType::Timestamp)
                | (SqlValue::Bool(_), SqlType::Boolean)
        )
    }

    /// Render as a SQL literal (used by dialect rendering for constants).
    pub fn sql_literal(&self) -> String {
        let mut s = String::new();
        self.sql_literal_into(&mut s);
        s
    }

    /// Append the SQL-literal rendering to `out` without allocating a
    /// fresh string (hot in PP-k local-join key building, where one key
    /// is rendered per fetched row).
    pub fn sql_literal_into(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            SqlValue::Null => out.push_str("NULL"),
            SqlValue::Str(s) => {
                out.push('\'');
                for c in s.chars() {
                    if c == '\'' {
                        out.push('\'');
                    }
                    out.push(c);
                }
                out.push('\'');
            }
            SqlValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            SqlValue::Dec(d) => {
                let _ = write!(out, "{d}");
            }
            SqlValue::Dbl(d) => {
                let _ = write!(out, "{d}");
            }
            SqlValue::Date(d) => {
                let _ = write!(out, "DATE '{d}'");
            }
            SqlValue::Timestamp(t) => {
                let _ = write!(out, "TIMESTAMP '{t}'");
            }
            SqlValue::Bool(b) => out.push_str(if *b { "1" } else { "0" }),
        }
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => f.write_str("NULL"),
            SqlValue::Str(s) => f.write_str(s),
            SqlValue::Int(i) => write!(f, "{i}"),
            SqlValue::Dec(d) => write!(f, "{d}"),
            SqlValue::Dbl(d) => write!(f, "{d}"),
            SqlValue::Date(d) => write!(f, "{d}"),
            SqlValue::Timestamp(t) => write!(f, "{t}"),
            SqlValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Three-valued logic truth values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// TRUE.
    True,
    /// FALSE.
    False,
    /// UNKNOWN (NULL involved).
    Unknown,
}

impl Truth {
    /// From a two-valued bool.
    pub fn of(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// From an optional comparison result.
    pub fn from_option(o: Option<bool>) -> Truth {
        match o {
            Some(true) => Truth::True,
            Some(false) => Truth::False,
            None => Truth::Unknown,
        }
    }

    /// 3VL AND.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// 3VL OR.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// 3VL NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// WHERE-clause acceptance: only TRUE passes.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(SqlValue::Null.compare(&SqlValue::Int(1)), None);
        assert_eq!(SqlValue::Int(1).compare(&SqlValue::Null), None);
        assert_eq!(
            Truth::from_option(
                SqlValue::Null
                    .compare(&SqlValue::Null)
                    .map(|o| o == Ordering::Equal)
            ),
            Truth::Unknown
        );
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            SqlValue::Int(2).compare(&SqlValue::Dec(Decimal::parse("2.0").unwrap())),
            Some(Ordering::Equal)
        );
        assert_eq!(
            SqlValue::Dbl(1.5).compare(&SqlValue::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn order_cmp_puts_nulls_first_and_group_eq_groups_them() {
        assert_eq!(SqlValue::Null.order_cmp(&SqlValue::Int(0)), Ordering::Less);
        assert!(SqlValue::Null.group_eq(&SqlValue::Null));
        assert!(!SqlValue::Null.group_eq(&SqlValue::Int(0)));
    }

    #[test]
    fn three_valued_logic_tables() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert!(!Unknown.is_true());
    }

    #[test]
    fn xml_mapping_roundtrip() {
        let v = SqlValue::Int(42);
        let x = v.to_xml().unwrap();
        assert_eq!(x, AtomicValue::Integer(42));
        let back = SqlValue::from_xml(Some(&x), SqlType::Integer).unwrap();
        assert_eq!(back, v);
        // NULL ↔ missing element
        assert_eq!(SqlValue::Null.to_xml(), None);
        assert_eq!(
            SqlValue::from_xml(None, SqlType::Varchar).unwrap(),
            SqlValue::Null
        );
        // coercion: xs:string "7" binds to INTEGER
        let s = AtomicValue::str("7");
        assert_eq!(
            SqlValue::from_xml(Some(&s), SqlType::Integer).unwrap(),
            SqlValue::Int(7)
        );
        assert!(SqlValue::from_xml(Some(&AtomicValue::str("x")), SqlType::Integer).is_err());
    }

    #[test]
    fn literals_escape() {
        assert_eq!(SqlValue::str("O'Brien").sql_literal(), "'O''Brien'");
        assert_eq!(SqlValue::Null.sql_literal(), "NULL");
        assert_eq!(
            SqlValue::Date(Date::parse("2006-09-12").unwrap()).sql_literal(),
            "DATE '2006-09-12'"
        );
    }

    #[test]
    fn conformance() {
        assert!(SqlValue::Int(1).conforms_to(SqlType::Decimal));
        assert!(!SqlValue::str("x").conforms_to(SqlType::Integer));
        assert!(SqlValue::Null.conforms_to(SqlType::Date));
    }
}
