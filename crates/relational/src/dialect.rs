//! Vendor-specific SQL text rendering (§4.3).
//!
//! "Actual SQL syntax generation during pushdown is done in a
//! vendor/version-dependent manner" — ALDSP ships dialect knowledge for
//! Oracle, DB2, SQL Server and Sybase, plus a conservative *base SQL92*
//! platform for any other database. The differences this module models:
//!
//! * **Pagination** (Table 2(i)): Oracle uses the nested `ROWNUM`
//!   pattern shown in the paper; DB2 uses `FETCH FIRST n ROWS ONLY` (and
//!   `ROW_NUMBER()` nesting when an offset is required); SQL Server uses
//!   `TOP n` / `ROW_NUMBER()`; Sybase and base SQL92 cannot push row
//!   ranges at all ([`Dialect::supports_pagination`] is how the pushdown
//!   analysis learns this and keeps `fn:subsequence` in the middleware).
//! * **String concatenation**: `||` (Oracle/DB2/SQL92) vs `+`
//!   (SQL Server/Sybase).
//! * Identifier quoting and function spellings.
//!
//! Note: the paper's Table 1(a) prints `WHERE t1."CID" = "CUST001"`;
//! standard SQL requires single quotes for character literals, so this
//! renderer emits `'CUST001'` (see EXPERIMENTS.md).

use crate::sql::{JoinKind, ScalarExpr, Select, TableRef};
use aldsp_xdm::value::ArithOp;
use std::fmt::Write;

/// The relational platforms the SQL generator knows (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dialect {
    /// Oracle (9i/10g era — `ROWNUM` pagination).
    Oracle,
    /// IBM DB2 (`FETCH FIRST n ROWS ONLY`).
    Db2,
    /// Microsoft SQL Server (`TOP n`, `ROW_NUMBER()` since 2005).
    SqlServer,
    /// Sybase ASE (conservative; no pushable pagination).
    Sybase,
    /// The "base SQL92 platform" for any other RDBMS.
    Sql92,
}

impl Dialect {
    /// Vendor name used in connection metadata.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Oracle => "Oracle",
            Dialect::Db2 => "DB2",
            Dialect::SqlServer => "SQL Server",
            Dialect::Sybase => "Sybase",
            Dialect::Sql92 => "SQL92",
        }
    }

    /// Can `fn:subsequence` row ranges be pushed to this platform? When
    /// not, the pushdown analysis leaves subsequence in the middleware.
    pub fn supports_pagination(self) -> bool {
        matches!(self, Dialect::Oracle | Dialect::Db2 | Dialect::SqlServer)
    }

    /// The string-concatenation operator.
    fn concat_op(self) -> &'static str {
        match self {
            Dialect::SqlServer | Dialect::Sybase => " + ",
            _ => " || ",
        }
    }

    /// `LENGTH` vs `LEN`, `SUBSTR` vs `SUBSTRING`.
    fn function_name(self, name: &str) -> &'static str {
        match (self, name) {
            (Dialect::SqlServer | Dialect::Sybase, "LENGTH") => "LEN",
            (Dialect::SqlServer | Dialect::Sybase, "SUBSTR") => "SUBSTRING",
            (_, "UPPER") => "UPPER",
            (_, "LOWER") => "LOWER",
            (_, "LENGTH") => "LENGTH",
            (_, "SUBSTR") => "SUBSTR",
            (_, "ABS") => "ABS",
            _ => "CONCAT", // CONCAT handled via concat_op
        }
    }
}

/// Render a `SELECT` statement as SQL text in the given dialect.
pub fn render_select(q: &Select, d: Dialect) -> String {
    match (q.offset, q.fetch) {
        (None, None) => render_core(q, d),
        _ => render_paginated(q, d),
    }
}

fn render_paginated(q: &Select, d: Dialect) -> String {
    let offset = q.offset.unwrap_or(0);
    let fetch = q.fetch;
    let mut inner = q.clone();
    inner.offset = None;
    inner.fetch = None;
    match d {
        Dialect::Oracle => {
            // the Table 2(i) pattern: wrap in ROWNUM numbering, then range
            let core = render_core(&inner, d);
            if offset == 0 {
                if let Some(n) = fetch {
                    return format!("SELECT * FROM (\n{core}\n) t_page WHERE ROWNUM <= {n}");
                }
            }
            let cols: Vec<&str> = q.columns.iter().map(|c| c.alias.as_str()).collect();
            let outer_cols: String = cols
                .iter()
                .map(|c| format!("t_out.{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            let numbered_cols: String = cols
                .iter()
                .map(|c| format!("t_in.{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            let lower = offset + 1;
            let range = match fetch {
                Some(n) => format!("(t_out.rn >= {lower}) AND (t_out.rn < {})", lower + n),
                None => format!("t_out.rn >= {lower}"),
            };
            format!(
                "SELECT {outer_cols}\nFROM (\nSELECT ROWNUM AS rn, {numbered_cols}\nFROM (\n{core}\n) t_in\n) t_out\nWHERE {range}"
            )
        }
        Dialect::Db2 => {
            if offset == 0 {
                let core = render_core(&inner, d);
                match fetch {
                    Some(n) => format!("{core}\nFETCH FIRST {n} ROWS ONLY"),
                    None => core,
                }
            } else {
                render_row_number_wrapper(&inner, q, d, offset, fetch)
            }
        }
        Dialect::SqlServer => {
            if offset == 0 {
                if let Some(n) = fetch {
                    let core = render_core(&inner, d);
                    return core.replacen("SELECT ", &format!("SELECT TOP {n} "), 1);
                }
                render_core(&inner, d)
            } else {
                render_row_number_wrapper(&inner, q, d, offset, fetch)
            }
        }
        // not pushable: the middleware applies the row range (the caller
        // should not have asked, but render the core rather than lie)
        Dialect::Sybase | Dialect::Sql92 => render_core(&inner, d),
    }
}

/// The `ROW_NUMBER() OVER (ORDER BY …)` pagination nesting used for DB2
/// and SQL Server when an offset is present.
fn render_row_number_wrapper(
    inner: &Select,
    orig: &Select,
    d: Dialect,
    offset: u64,
    fetch: Option<u64>,
) -> String {
    let mut numbered = inner.clone();
    numbered.order_by = Vec::new(); // ordering moves into OVER()
    let over = if inner.order_by.is_empty() {
        "ORDER BY 1".to_string()
    } else {
        let mut s = String::from("ORDER BY ");
        for (i, o) in inner.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&render_expr(&o.expr, d));
            if o.descending {
                s.push_str(" DESC");
            }
        }
        s
    };
    let core = render_core(&numbered, d);
    let with_rn = core.replacen(
        "SELECT ",
        &format!("SELECT ROW_NUMBER() OVER ({over}) AS rn, "),
        1,
    );
    let cols: String = orig
        .columns
        .iter()
        .map(|c| format!("t_out.{}", c.alias))
        .collect::<Vec<_>>()
        .join(", ");
    let lower = offset + 1;
    let range = match fetch {
        Some(n) => format!("(t_out.rn >= {lower}) AND (t_out.rn < {})", lower + n),
        None => format!("t_out.rn >= {lower}"),
    };
    format!("SELECT {cols}\nFROM (\n{with_rn}\n) t_out\nWHERE {range}")
}

fn render_core(q: &Select, d: Dialect) -> String {
    let mut s = String::new();
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    for (i, c) in q.columns.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{} AS {}", render_expr(&c.expr, d), c.alias);
    }
    s.push_str("\nFROM ");
    render_table_ref(&q.from, d, &mut s);
    if let Some(w) = &q.where_ {
        let _ = write!(s, "\nWHERE {}", render_expr(w, d));
    }
    if !q.group_by.is_empty() {
        s.push_str("\nGROUP BY ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&render_expr(g, d));
        }
    }
    if let Some(h) = &q.having {
        let _ = write!(s, "\nHAVING {}", render_expr(h, d));
    }
    if !q.order_by.is_empty() {
        s.push_str("\nORDER BY ");
        for (i, o) in q.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&render_expr(&o.expr, d));
            if o.descending {
                s.push_str(" DESC");
            }
        }
    }
    s
}

fn render_table_ref(t: &TableRef, d: Dialect, s: &mut String) {
    match t {
        TableRef::Table { name, alias } => {
            let _ = write!(s, "\"{name}\" {alias}");
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            render_table_ref(left, d, s);
            s.push_str(match kind {
                JoinKind::Inner => "\nJOIN ",
                JoinKind::LeftOuter => "\nLEFT OUTER JOIN ",
            });
            render_table_ref(right, d, s);
            let _ = write!(s, "\nON {}", render_expr(on, d));
        }
        TableRef::Derived { query, alias } => {
            let _ = write!(s, "(\n{}\n) {alias}", render_core(query, d));
        }
    }
}

fn render_expr(e: &ScalarExpr, d: Dialect) -> String {
    match e {
        ScalarExpr::Column { table, column } => format!("{table}.\"{column}\""),
        ScalarExpr::Literal(v) => v.sql_literal(),
        ScalarExpr::Param(_) => "?".into(),
        ScalarExpr::Compare { op, lhs, rhs } => format!(
            "{} {} {}",
            render_operand(lhs, d),
            op.sql(),
            render_operand(rhs, d)
        ),
        ScalarExpr::And(a, b) => {
            format!("{} AND {}", render_operand(a, d), render_operand(b, d))
        }
        ScalarExpr::Or(a, b) => {
            format!("({} OR {})", render_operand(a, d), render_operand(b, d))
        }
        ScalarExpr::Not(a) => format!("NOT ({})", render_expr(a, d)),
        ScalarExpr::IsNull(a) => format!("{} IS NULL", render_operand(a, d)),
        ScalarExpr::Arith { op, lhs, rhs } => {
            let sym = match op {
                ArithOp::Add => "+",
                ArithOp::Sub => "-",
                ArithOp::Mul => "*",
                ArithOp::Div => "/",
                ArithOp::Mod => "MOD",
            };
            if *op == ArithOp::Mod {
                format!("MOD({}, {})", render_expr(lhs, d), render_expr(rhs, d))
            } else {
                format!("({} {sym} {})", render_expr(lhs, d), render_expr(rhs, d))
            }
        }
        ScalarExpr::Case { when, els } => {
            let mut s = String::from("CASE");
            for (c, v) in when {
                let _ = write!(
                    s,
                    "\nWHEN {}\nTHEN {}",
                    render_expr(c, d),
                    render_expr(v, d)
                );
            }
            if let Some(e) = els {
                let _ = write!(s, "\nELSE {}", render_expr(e, d));
            }
            s.push_str("\nEND");
            s
        }
        ScalarExpr::Exists(sub) => {
            format!("EXISTS(\n{})", render_core(sub, d))
        }
        ScalarExpr::InList { expr, list } => {
            let items: Vec<String> = list.iter().map(|i| render_expr(i, d)).collect();
            format!("{} IN ({})", render_operand(expr, d), items.join(", "))
        }
        ScalarExpr::Func { name, args } => {
            if name == "CONCAT" {
                let parts: Vec<String> = args.iter().map(|a| render_operand(a, d)).collect();
                format!("({})", parts.join(d.concat_op()))
            } else {
                let parts: Vec<String> = args.iter().map(|a| render_expr(a, d)).collect();
                format!("{}({})", d.function_name(name), parts.join(", "))
            }
        }
        ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            let inner = match arg {
                None => "*".to_string(),
                Some(a) => {
                    let rendered = render_expr(a, d);
                    if *distinct {
                        format!("DISTINCT {rendered}")
                    } else {
                        rendered
                    }
                }
            };
            format!("{}({inner})", func.keyword())
        }
    }
}

/// Parenthesize compound operands for readability/precedence safety.
fn render_operand(e: &ScalarExpr, d: Dialect) -> String {
    match e {
        ScalarExpr::And(..) | ScalarExpr::Or(..) | ScalarExpr::Compare { .. } => {
            format!("({})", render_expr(e, d))
        }
        _ => render_expr(e, d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{AggFunc, OrderBy};
    use crate::types::SqlValue;

    fn col(t: &str, c: &str) -> ScalarExpr {
        ScalarExpr::col(t, c)
    }

    #[test]
    fn table1a_simple_select_project() {
        let mut q =
            Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "FIRST_NAME"), "c1");
        q.where_ = Some(col("t1", "CID").eq(ScalarExpr::lit(SqlValue::str("CUST001"))));
        let sql = render_select(&q, Dialect::Oracle);
        assert_eq!(
            sql,
            "SELECT t1.\"FIRST_NAME\" AS c1\nFROM \"CUSTOMER\" t1\nWHERE t1.\"CID\" = 'CUST001'"
        );
    }

    #[test]
    fn table1b_inner_join() {
        let q = Select::new(TableRef::table("CUSTOMER", "t1").join(
            JoinKind::Inner,
            TableRef::table("ORDER", "t2"),
            col("t1", "CID").eq(col("t2", "CID")),
        ))
        .column(col("t1", "CID"), "c1")
        .column(col("t2", "OID"), "c2");
        let sql = render_select(&q, Dialect::Oracle);
        assert_eq!(
            sql,
            "SELECT t1.\"CID\" AS c1, t2.\"OID\" AS c2\nFROM \"CUSTOMER\" t1\nJOIN \"ORDER\" t2\nON t1.\"CID\" = t2.\"CID\""
        );
    }

    #[test]
    fn table2i_oracle_rownum_nesting() {
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "CID"), "c1");
        q.order_by = vec![OrderBy {
            expr: col("t1", "CID"),
            descending: true,
        }];
        q.offset = Some(9);
        q.fetch = Some(20);
        let sql = render_select(&q, Dialect::Oracle);
        assert!(sql.contains("ROWNUM AS rn"), "{sql}");
        assert!(
            sql.contains("(t_out.rn >= 10) AND (t_out.rn < 30)"),
            "{sql}"
        );
        assert!(sql.contains("ORDER BY t1.\"CID\" DESC"), "{sql}");
    }

    #[test]
    fn db2_fetch_first_and_sqlserver_top() {
        let mut q = Select::new(TableRef::table("T", "t1")).column(col("t1", "A"), "c1");
        q.fetch = Some(5);
        assert!(render_select(&q, Dialect::Db2).ends_with("FETCH FIRST 5 ROWS ONLY"));
        assert!(render_select(&q, Dialect::SqlServer).starts_with("SELECT TOP 5 "));
        q.offset = Some(10);
        let db2 = render_select(&q, Dialect::Db2);
        assert!(db2.contains("ROW_NUMBER() OVER"), "{db2}");
        let mss = render_select(&q, Dialect::SqlServer);
        assert!(mss.contains("ROW_NUMBER() OVER"), "{mss}");
    }

    #[test]
    fn pagination_support_flags() {
        assert!(Dialect::Oracle.supports_pagination());
        assert!(Dialect::Db2.supports_pagination());
        assert!(Dialect::SqlServer.supports_pagination());
        assert!(!Dialect::Sybase.supports_pagination());
        assert!(!Dialect::Sql92.supports_pagination());
        // unsupported dialects render the core and leave the range to the
        // middleware
        let mut q = Select::new(TableRef::table("T", "t1")).column(col("t1", "A"), "c1");
        q.fetch = Some(5);
        assert!(!render_select(&q, Dialect::Sql92).contains('5'));
    }

    #[test]
    fn concat_operator_differs_by_vendor() {
        let e = ScalarExpr::Func {
            name: "CONCAT".into(),
            args: vec![col("t1", "A"), col("t1", "B")],
        };
        assert_eq!(render_expr(&e, Dialect::Oracle), "(t1.\"A\" || t1.\"B\")");
        assert_eq!(render_expr(&e, Dialect::SqlServer), "(t1.\"A\" + t1.\"B\")");
    }

    #[test]
    fn function_spellings() {
        let e = ScalarExpr::Func {
            name: "LENGTH".into(),
            args: vec![col("t1", "A")],
        };
        assert_eq!(render_expr(&e, Dialect::Oracle), "LENGTH(t1.\"A\")");
        assert_eq!(render_expr(&e, Dialect::Sybase), "LEN(t1.\"A\")");
    }

    #[test]
    fn case_exists_and_group_render() {
        let c = ScalarExpr::Case {
            when: vec![(
                col("t1", "CID").eq(ScalarExpr::lit(SqlValue::str("X"))),
                col("t1", "A"),
            )],
            els: Some(Box::new(col("t1", "B"))),
        };
        let s = render_expr(&c, Dialect::Oracle);
        assert!(s.starts_with("CASE\nWHEN") && s.ends_with("END"), "{s}");

        let mut sub = Select::new(TableRef::table("ORDERS", "t2"))
            .column(ScalarExpr::lit(SqlValue::Int(1)), "c1");
        sub.where_ = Some(col("t1", "CID").eq(col("t2", "CID")));
        let e = ScalarExpr::Exists(Box::new(sub));
        let s = render_expr(&e, Dialect::Oracle);
        assert!(s.starts_with("EXISTS(\nSELECT 1 AS c1"), "{s}");

        let agg = ScalarExpr::Agg {
            func: AggFunc::Count,
            arg: Some(Box::new(col("t2", "CID"))),
            distinct: false,
        };
        assert_eq!(render_expr(&agg, Dialect::Oracle), "COUNT(t2.\"CID\")");
        assert_eq!(
            render_expr(&ScalarExpr::count_star(), Dialect::Oracle),
            "COUNT(*)"
        );
    }

    #[test]
    fn params_render_as_question_marks() {
        let e = crate::sql::ppk_block_predicate(&[col("t1", "CID")], 2, 0);
        let s = render_expr(&e, Dialect::Oracle);
        assert_eq!(s, "((t1.\"CID\" = ?) OR (t1.\"CID\" = ?))");
    }
}
