//! The SQL executor.
//!
//! Executes [`crate::sql::Select`] statements (and, via
//! [`crate::dml`], DML) directly against the in-memory [`Database`]. The
//! semantics follow SQL92 for the repertoire the pushdown framework
//! emits: three-valued WHERE/ON logic, NULL-grouping GROUP BY, correlated
//! EXISTS, DISTINCT, ORDER BY (NULLs least) and OFFSET/FETCH. This is the
//! "backend" that stands in for the paper's Oracle/DB2/SQL Server/Sybase
//! installations.

use crate::error::SourceError;
use crate::sql::{AggFunc, JoinKind, OrderBy, ScalarExpr, Select, TableRef};
use crate::store::{Database, Row};
use crate::types::{SqlValue, Truth};
use aldsp_xdm::value::{ArithOp, Decimal};
use std::collections::{HashMap, HashSet};

/// A query result: output column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column aliases.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

/// Flattened layout of the FROM product: each alias owns a column slice.
#[derive(Debug, Clone, Default)]
struct Layout {
    entries: Vec<(String, Vec<String>, usize)>,
    width: usize,
}

impl Layout {
    fn push(&mut self, alias: String, columns: Vec<String>) {
        let offset = self.width;
        self.width += columns.len();
        self.entries.push((alias, columns, offset));
    }

    fn merge(mut self, other: Layout) -> Layout {
        for (alias, cols, off) in other.entries {
            self.entries.push((alias, cols, off + self.width));
        }
        self.width += other.width;
        self
    }

    fn resolve(&self, table: &str, column: &str) -> Option<usize> {
        self.entries.iter().find_map(|(alias, cols, off)| {
            if alias == table {
                cols.iter().position(|c| c == column).map(|i| off + i)
            } else {
                None
            }
        })
    }
}

/// Evaluation context: a plain row or an aggregation group.
enum Ctx<'a> {
    Row(&'a [SqlValue]),
    Group {
        rows: &'a [Row],
        repr: &'a [SqlValue],
    },
}

impl<'a> Ctx<'a> {
    fn repr(&self) -> &'a [SqlValue] {
        match self {
            Ctx::Row(r) => r,
            Ctx::Group { repr, .. } => repr,
        }
    }
}

/// Linked outer-scope chain for correlated subqueries.
struct Scope<'a> {
    layout: &'a Layout,
    row: &'a [SqlValue],
    parent: Option<&'a Scope<'a>>,
}

impl Database {
    /// Execute a `SELECT` with positional parameters.
    ///
    /// This is the public source boundary: internal evaluation keeps plain
    /// `String` errors, converted to a typed [`SourceError`] here.
    pub fn execute_select(
        &self,
        q: &Select,
        params: &[SqlValue],
    ) -> Result<ResultSet, SourceError> {
        exec_select(self, q, params, None).map_err(SourceError::Sql)
    }
}

fn exec_select(
    db: &Database,
    q: &Select,
    params: &[SqlValue],
    outer: Option<&Scope<'_>>,
) -> Result<ResultSet, String> {
    let (layout, from_rows) = eval_from(db, &q.from, params, outer)?;
    let columns: Vec<String> = q.columns.iter().map(|c| c.alias.clone()).collect();
    // Each output row is paired with its sort keys.
    let mut out: Vec<(Row, Vec<SqlValue>)> = Vec::new();
    let project = |db: &Database, ctx: &Ctx<'_>| -> Result<(Row, Vec<SqlValue>), String> {
        let mut r = Vec::with_capacity(q.columns.len());
        for c in &q.columns {
            r.push(eval(db, &c.expr, &layout, ctx, params, outer)?);
        }
        let mut keys = Vec::with_capacity(q.order_by.len());
        for OrderBy { expr, .. } in &q.order_by {
            keys.push(eval(db, expr, &layout, ctx, params, outer)?);
        }
        Ok((r, keys))
    };
    if q.is_aggregate() {
        let mut rows = from_rows.into_owned();
        if let Some(w) = &q.where_ {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if truth_of(db, w, &layout, &Ctx::Row(&row), params, outer)?.is_true() {
                    kept.push(row);
                }
            }
            rows = kept;
        }
        // group rows on the GROUP BY keys (SQL NULL-grouping semantics),
        // hashing on the literal rendering for O(n) grouping
        let mut groups: Vec<(Vec<SqlValue>, Vec<Row>)> = Vec::new();
        let mut group_index: HashMap<String, usize> = HashMap::new();
        for row in rows {
            let mut key = Vec::with_capacity(q.group_by.len());
            for g in &q.group_by {
                key.push(eval(db, g, &layout, &Ctx::Row(&row), params, outer)?);
            }
            let hash_key: String = key.iter().map(|v| v.sql_literal() + "\u{1}").collect();
            match group_index.get(&hash_key) {
                Some(&gi) => groups[gi].1.push(row),
                None => {
                    group_index.insert(hash_key, groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        // a pure aggregate query (no GROUP BY) aggregates the whole input,
        // even when it is empty
        if groups.is_empty() && q.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }
        for (_, grows) in &groups {
            let empty: Row = Vec::new();
            let repr: &[SqlValue] = grows.first().map(|r| r.as_slice()).unwrap_or(&empty);
            let ctx = Ctx::Group { rows: grows, repr };
            if let Some(h) = &q.having {
                if !truth_of(db, h, &layout, &ctx, params, outer)?.is_true() {
                    continue;
                }
            }
            out.push(project(db, &ctx)?);
        }
    } else {
        // the non-aggregate scan filters and projects straight off the
        // borrowed storage rows: no clone of the table, no kept-rows
        // intermediate — per-query allocation is exactly the projected
        // output
        for row in from_rows.as_slice() {
            if let Some(w) = &q.where_ {
                if !truth_of(db, w, &layout, &Ctx::Row(row), params, outer)?.is_true() {
                    continue;
                }
            }
            out.push(project(db, &Ctx::Row(row))?);
        }
    }
    if q.distinct {
        let mut seen = HashSet::new();
        out.retain(|(r, _)| {
            let key: String = r.iter().map(|v| v.sql_literal() + "\u{1}").collect();
            seen.insert(key)
        });
    }
    if !q.order_by.is_empty() {
        let desc: Vec<bool> = q.order_by.iter().map(|o| o.descending).collect();
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, (a, b)) in ka.iter().zip(kb).enumerate() {
                let mut ord = a.order_cmp(b);
                if desc[i] {
                    ord = ord.reverse();
                }
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Row> = out.into_iter().map(|(r, _)| r).collect();
    if let Some(off) = q.offset {
        rows = rows.split_off((off as usize).min(rows.len()));
    }
    if let Some(n) = q.fetch {
        rows.truncate(n as usize);
    }
    Ok(ResultSet { columns, rows })
}

/// Rows produced by a `FROM` clause: a base-table scan borrows the
/// stored rows (no per-query copy of the table), while derived tables
/// and joins own what they computed.
enum FromRows<'a> {
    Borrowed(&'a [Row]),
    Owned(Vec<Row>),
}

impl FromRows<'_> {
    fn as_slice(&self) -> &[Row] {
        match self {
            FromRows::Borrowed(r) => r,
            FromRows::Owned(r) => r,
        }
    }

    fn into_owned(self) -> Vec<Row> {
        match self {
            FromRows::Borrowed(r) => r.to_vec(),
            FromRows::Owned(r) => r,
        }
    }
}

fn eval_from<'a>(
    db: &'a Database,
    t: &TableRef,
    params: &[SqlValue],
    outer: Option<&Scope<'_>>,
) -> Result<(Layout, FromRows<'a>), String> {
    match t {
        TableRef::Table { name, alias } => {
            let table = db.table(name).ok_or_else(|| format!("no table '{name}'"))?;
            let mut layout = Layout::default();
            layout.push(
                alias.clone(),
                table
                    .schema()
                    .columns
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
            );
            Ok((layout, FromRows::Borrowed(table.rows())))
        }
        TableRef::Derived { query, alias } => {
            let rs = exec_select(db, query, params, outer)?;
            let mut layout = Layout::default();
            layout.push(alias.clone(), rs.columns);
            Ok((layout, FromRows::Owned(rs.rows)))
        }
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (ll, lrows) = eval_from(db, left, params, outer)?;
            let (rl, rrows) = eval_from(db, right, params, outer)?;
            let lwidth = ll.width;
            let rwidth = rl.width;
            let layout = ll.merge(rl);
            // split the ON condition into hashable equi-conjuncts
            // (left-col = right-col) and a residual predicate
            let (equi, residual) = split_equi_conjuncts(on, &layout, lwidth);
            let (lrows, rrows) = (lrows.as_slice(), rrows.as_slice());
            let mut out = Vec::new();
            if equi.is_empty() {
                // general nested loop
                for l in lrows {
                    let mut matched = false;
                    for r in rrows {
                        let mut combined = Vec::with_capacity(l.len() + r.len());
                        combined.extend(l.iter().cloned());
                        combined.extend(r.iter().cloned());
                        if truth_of(db, on, &layout, &Ctx::Row(&combined), params, outer)?.is_true()
                        {
                            matched = true;
                            out.push(combined);
                        }
                    }
                    if !matched && *kind == JoinKind::LeftOuter {
                        let mut combined = Vec::with_capacity(l.len() + rwidth);
                        combined.extend(l.iter().cloned());
                        combined.extend(std::iter::repeat_n(SqlValue::Null, rwidth));
                        out.push(combined);
                    }
                }
            } else {
                // hash join: build on the right side's key columns
                let mut index: HashMap<String, Vec<usize>> = HashMap::new();
                for (ri, r) in rrows.iter().enumerate() {
                    let mut key = String::new();
                    let mut null_key = false;
                    for &(_, rc) in &equi {
                        let v = &r[rc - lwidth];
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        key.push_str(&v.sql_literal());
                        key.push('\u{1}');
                    }
                    if !null_key {
                        index.entry(key).or_default().push(ri);
                    }
                }
                for l in lrows {
                    let mut matched = false;
                    let mut key = String::new();
                    let mut null_key = false;
                    for &(lc, _) in &equi {
                        let v = &l[lc];
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        key.push_str(&v.sql_literal());
                        key.push('\u{1}');
                    }
                    if !null_key {
                        for &ri in index.get(&key).map(|v| v.as_slice()).unwrap_or(&[]) {
                            let r = &rrows[ri];
                            let mut combined = Vec::with_capacity(l.len() + r.len());
                            combined.extend(l.iter().cloned());
                            combined.extend(r.iter().cloned());
                            let keep = match &residual {
                                Some(res) => {
                                    truth_of(db, res, &layout, &Ctx::Row(&combined), params, outer)?
                                        .is_true()
                                }
                                None => true,
                            };
                            if keep {
                                matched = true;
                                out.push(combined);
                            }
                        }
                    }
                    if !matched && *kind == JoinKind::LeftOuter {
                        let mut combined = Vec::with_capacity(l.len() + rwidth);
                        combined.extend(l.iter().cloned());
                        combined.extend(std::iter::repeat_n(SqlValue::Null, rwidth));
                        out.push(combined);
                    }
                }
            }
            Ok((layout, FromRows::Owned(out)))
        }
    }
}

/// Decompose an ON condition into `(left column index, right column
/// index)` equality pairs plus an optional residual. Only top-level AND
/// chains of `col = col` comparisons qualify; hashing uses the literal
/// rendering, which matches SQL equality for identically-typed keys
/// (NULL keys never match, per SQL).
fn split_equi_conjuncts(
    on: &ScalarExpr,
    layout: &Layout,
    lwidth: usize,
) -> (Vec<(usize, usize)>, Option<ScalarExpr>) {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Vec<ScalarExpr> = Vec::new();
    for c in conjuncts {
        let mut taken = false;
        if let ScalarExpr::Compare {
            op: aldsp_xdm::item::CompOp::Eq,
            lhs,
            rhs,
        } = c
        {
            if let (
                ScalarExpr::Column {
                    table: ta,
                    column: ca,
                },
                ScalarExpr::Column {
                    table: tb,
                    column: cb,
                },
            ) = (lhs.as_ref(), rhs.as_ref())
            {
                if let (Some(ia), Some(ib)) = (layout.resolve(ta, ca), layout.resolve(tb, cb)) {
                    // same-type columns only: comparing e.g. INTEGER with
                    // DECIMAL via literals would be wrong, so require the
                    // literal-compatible case (both sides resolve); cross-
                    // type keys fall back to the residual predicate
                    if ia < lwidth && ib >= lwidth {
                        equi.push((ia, ib));
                        taken = true;
                    } else if ib < lwidth && ia >= lwidth {
                        equi.push((ib, ia));
                        taken = true;
                    }
                }
            }
        }
        if !taken {
            residual.push(c.clone());
        }
    }
    let residual = residual.into_iter().reduce(|a, b| a.and(b));
    (equi, residual)
}

fn flatten_and<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
    match e {
        ScalarExpr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        _ => out.push(e),
    }
}

fn truth_of(
    db: &Database,
    e: &ScalarExpr,
    layout: &Layout,
    ctx: &Ctx<'_>,
    params: &[SqlValue],
    outer: Option<&Scope<'_>>,
) -> Result<Truth, String> {
    Ok(match eval(db, e, layout, ctx, params, outer)? {
        SqlValue::Bool(b) => Truth::of(b),
        SqlValue::Null => Truth::Unknown,
        other => return Err(format!("predicate evaluated to non-boolean {other}")),
    })
}

fn eval(
    db: &Database,
    e: &ScalarExpr,
    layout: &Layout,
    ctx: &Ctx<'_>,
    params: &[SqlValue],
    outer: Option<&Scope<'_>>,
) -> Result<SqlValue, String> {
    Ok(match e {
        ScalarExpr::Column { table, column } => {
            if let Some(i) = layout.resolve(table, column) {
                ctx.repr().get(i).cloned().unwrap_or(SqlValue::Null)
            } else {
                // correlated reference into an outer scope
                let mut scope = outer;
                loop {
                    match scope {
                        Some(s) => {
                            if let Some(i) = s.layout.resolve(table, column) {
                                break s.row.get(i).cloned().unwrap_or(SqlValue::Null);
                            }
                            scope = s.parent;
                        }
                        None => return Err(format!("unresolved column {table}.{column}")),
                    }
                }
            }
        }
        ScalarExpr::Literal(v) => v.clone(),
        ScalarExpr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or_else(|| format!("missing parameter ?{i}"))?,
        ScalarExpr::Compare { op, lhs, rhs } => {
            let a = eval(db, lhs, layout, ctx, params, outer)?;
            let b = eval(db, rhs, layout, ctx, params, outer)?;
            match a.compare(&b) {
                Some(ord) => SqlValue::Bool(op.test(ord)),
                None => SqlValue::Null,
            }
        }
        ScalarExpr::And(a, b) => {
            let ta = truth_of(db, a, layout, ctx, params, outer)?;
            // short-circuit FALSE without evaluating the right side
            if ta == Truth::False {
                SqlValue::Bool(false)
            } else {
                truth_to_value(ta.and(truth_of(db, b, layout, ctx, params, outer)?))
            }
        }
        ScalarExpr::Or(a, b) => {
            let ta = truth_of(db, a, layout, ctx, params, outer)?;
            if ta == Truth::True {
                SqlValue::Bool(true)
            } else {
                truth_to_value(ta.or(truth_of(db, b, layout, ctx, params, outer)?))
            }
        }
        ScalarExpr::Not(a) => truth_to_value(truth_of(db, a, layout, ctx, params, outer)?.not()),
        ScalarExpr::IsNull(a) => SqlValue::Bool(eval(db, a, layout, ctx, params, outer)?.is_null()),
        ScalarExpr::Arith { op, lhs, rhs } => {
            let a = eval(db, lhs, layout, ctx, params, outer)?;
            let b = eval(db, rhs, layout, ctx, params, outer)?;
            sql_arith(*op, &a, &b)?
        }
        ScalarExpr::Case { when, els } => {
            let mut result = None;
            for (cond, val) in when {
                if truth_of(db, cond, layout, ctx, params, outer)?.is_true() {
                    result = Some(eval(db, val, layout, ctx, params, outer)?);
                    break;
                }
            }
            match result {
                Some(v) => v,
                None => match els {
                    Some(e) => eval(db, e, layout, ctx, params, outer)?,
                    None => SqlValue::Null,
                },
            }
        }
        ScalarExpr::Exists(sub) => {
            let scope = Scope {
                layout,
                row: ctx.repr(),
                parent: outer,
            };
            let rs = exec_select(db, sub, params, Some(&scope))?;
            SqlValue::Bool(!rs.rows.is_empty())
        }
        ScalarExpr::InList { expr, list } => {
            let v = eval(db, expr, layout, ctx, params, outer)?;
            if v.is_null() {
                return Ok(SqlValue::Null);
            }
            let mut saw_unknown = false;
            for item in list {
                let w = eval(db, item, layout, ctx, params, outer)?;
                match v.compare(&w) {
                    Some(std::cmp::Ordering::Equal) => return Ok(SqlValue::Bool(true)),
                    Some(_) => {}
                    None => saw_unknown = true,
                }
            }
            if saw_unknown {
                SqlValue::Null
            } else {
                SqlValue::Bool(false)
            }
        }
        ScalarExpr::Func { name, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(db, a, layout, ctx, params, outer)?);
            }
            sql_function(name, &vals)?
        }
        ScalarExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            let Ctx::Group { rows, .. } = ctx else {
                return Err(format!(
                    "{} used outside an aggregate context",
                    func.keyword()
                ));
            };
            let mut vals: Vec<SqlValue> = Vec::new();
            for row in rows.iter() {
                match arg {
                    None => vals.push(SqlValue::Int(1)), // COUNT(*)
                    Some(a) => {
                        let v = eval(db, a, layout, &Ctx::Row(row), params, outer)?;
                        if !v.is_null() {
                            vals.push(v);
                        }
                    }
                }
            }
            if *distinct {
                let mut seen = HashSet::new();
                vals.retain(|v| seen.insert(v.sql_literal()));
            }
            aggregate(*func, &vals)?
        }
    })
}

fn truth_to_value(t: Truth) -> SqlValue {
    match t {
        Truth::True => SqlValue::Bool(true),
        Truth::False => SqlValue::Bool(false),
        Truth::Unknown => SqlValue::Null,
    }
}

fn sql_arith(op: ArithOp, a: &SqlValue, b: &SqlValue) -> Result<SqlValue, String> {
    if a.is_null() || b.is_null() {
        return Ok(SqlValue::Null);
    }
    let xa = a.to_xml().expect("non-null");
    let xb = b.to_xml().expect("non-null");
    let r = xa
        .arithmetic(op, &xb)
        .map_err(|e| format!("SQL arithmetic error: {e}"))?;
    SqlValue::from_xml(
        Some(&r),
        crate::types::SqlType::from_xml_type(r.type_of()).expect("numeric"),
    )
}

fn sql_function(name: &str, args: &[SqlValue]) -> Result<SqlValue, String> {
    if args.iter().any(SqlValue::is_null) && name != "CONCAT" {
        return Ok(SqlValue::Null);
    }
    Ok(match (name, args) {
        ("UPPER", [SqlValue::Str(s)]) => SqlValue::str(&s.to_uppercase()),
        ("LOWER", [SqlValue::Str(s)]) => SqlValue::str(&s.to_lowercase()),
        ("LENGTH", [SqlValue::Str(s)]) => SqlValue::Int(s.chars().count() as i64),
        ("ABS", [SqlValue::Int(i)]) => SqlValue::Int(i.abs()),
        ("ABS", [SqlValue::Dec(d)]) => SqlValue::Dec(Decimal(d.0.abs())),
        ("ABS", [SqlValue::Dbl(d)]) => SqlValue::Dbl(d.abs()),
        ("SUBSTR", [SqlValue::Str(s), SqlValue::Int(start)]) => {
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).max(0) as usize;
            SqlValue::str(&chars[from.min(chars.len())..].iter().collect::<String>())
        }
        ("SUBSTR", [SqlValue::Str(s), SqlValue::Int(start), SqlValue::Int(len)]) => {
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).max(0) as usize;
            let to = (from + (*len).max(0) as usize).min(chars.len());
            SqlValue::str(&chars[from.min(chars.len())..to].iter().collect::<String>())
        }
        ("CONCAT", parts) => {
            let mut out = String::new();
            for p in parts {
                if !p.is_null() {
                    out.push_str(&p.to_string());
                }
            }
            SqlValue::str(&out)
        }
        _ => {
            return Err(format!(
                "unknown SQL function {name}/{} or bad argument types",
                args.len()
            ))
        }
    })
}

fn aggregate(func: AggFunc, vals: &[SqlValue]) -> Result<SqlValue, String> {
    Ok(match func {
        AggFunc::Count => SqlValue::Int(vals.len() as i64),
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&SqlValue> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take = match v.compare(b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.cloned().unwrap_or(SqlValue::Null)
        }
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(SqlValue::Null);
            }
            let mut acc = SqlValue::Int(0);
            for v in vals {
                acc = sql_arith(ArithOp::Add, &acc, v)?;
            }
            if func == AggFunc::Avg {
                acc = sql_arith(ArithOp::Div, &acc, &SqlValue::Int(vals.len() as i64))?;
            }
            acc
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSchema;
    use crate::sql::{ppk_block_predicate, OutputColumn};
    use crate::types::SqlType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_table(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("FIRST_NAME", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        d.create_table(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .col("AMOUNT", SqlType::Decimal)
                .pk(&["OID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for (cid, last, first) in [
            ("C1", "Jones", Some("Ann")),
            ("C2", "Smith", None),
            ("C3", "Jones", Some("Bob")),
        ] {
            d.insert(
                "CUSTOMER",
                vec![
                    SqlValue::str(cid),
                    SqlValue::str(last),
                    first.map(SqlValue::str).unwrap_or(SqlValue::Null),
                ],
            )
            .unwrap();
        }
        for (oid, cid, amt) in [(1, "C1", "10.5"), (2, "C1", "20"), (3, "C3", "7.25")] {
            d.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(cid),
                    SqlValue::Dec(Decimal::parse(amt).unwrap()),
                ],
            )
            .unwrap();
        }
        d
    }

    fn col(t: &str, c: &str) -> ScalarExpr {
        ScalarExpr::col(t, c)
    }

    #[test]
    fn select_project_where() {
        // Table 1(a)
        let d = db();
        let q =
            Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "FIRST_NAME"), "c1");
        let mut q = q;
        q.where_ = Some(col("t1", "CID").eq(ScalarExpr::lit(SqlValue::str("C1"))));
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![SqlValue::str("Ann")]]);
    }

    #[test]
    fn inner_and_outer_join() {
        // Tables 1(b)/1(c)
        let d = db();
        let join_on = col("t1", "CID").eq(col("t2", "CID"));
        let inner = Select::new(TableRef::table("CUSTOMER", "t1").join(
            JoinKind::Inner,
            TableRef::table("ORDER", "t2"),
            join_on.clone(),
        ))
        .column(col("t1", "CID"), "c1")
        .column(col("t2", "OID"), "c2");
        let rs = d.execute_select(&inner, &[]).unwrap();
        assert_eq!(rs.rows.len(), 3); // C1×2, C3×1
        let outer = Select::new(TableRef::table("CUSTOMER", "t1").join(
            JoinKind::LeftOuter,
            TableRef::table("ORDER", "t2"),
            join_on,
        ))
        .column(col("t1", "CID"), "c1")
        .column(col("t2", "OID"), "c2");
        let rs = d.execute_select(&outer, &[]).unwrap();
        assert_eq!(rs.rows.len(), 4); // + C2 with NULL OID
        assert!(rs
            .rows
            .iter()
            .any(|r| r[0] == SqlValue::str("C2") && r[1].is_null()));
    }

    #[test]
    fn case_when() {
        // Table 1(d)
        let d = db();
        let q = Select::new(TableRef::table("CUSTOMER", "t1")).column(
            ScalarExpr::Case {
                when: vec![(
                    col("t1", "CID").eq(ScalarExpr::lit(SqlValue::str("C1"))),
                    col("t1", "FIRST_NAME"),
                )],
                els: Some(Box::new(col("t1", "LAST_NAME"))),
            },
            "c1",
        );
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![SqlValue::str("Ann")],
                vec![SqlValue::str("Smith")],
                vec![SqlValue::str("Jones")]
            ]
        );
    }

    #[test]
    fn group_by_count_and_distinct() {
        // Tables 1(e)/1(f)
        let d = db();
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1"))
            .column(col("t1", "LAST_NAME"), "c1")
            .column(ScalarExpr::count_star(), "c2");
        q.group_by = vec![col("t1", "LAST_NAME")];
        q.order_by = vec![OrderBy {
            expr: col("t1", "LAST_NAME"),
            descending: false,
        }];
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![SqlValue::str("Jones"), SqlValue::Int(2)],
                vec![SqlValue::str("Smith"), SqlValue::Int(1)],
            ]
        );
        let mut q2 =
            Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "LAST_NAME"), "c1");
        q2.distinct = true;
        let rs = d.execute_select(&q2, &[]).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn outer_join_with_aggregation() {
        // Table 2(g): per-customer order counts, zero included
        let d = db();
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1").join(
            JoinKind::LeftOuter,
            TableRef::table("ORDER", "t2"),
            col("t1", "CID").eq(col("t2", "CID")),
        ))
        .column(col("t1", "CID"), "c1")
        .column(
            ScalarExpr::Agg {
                func: AggFunc::Count,
                arg: Some(Box::new(col("t2", "CID"))),
                distinct: false,
            },
            "c2",
        );
        q.group_by = vec![col("t1", "CID")];
        q.order_by = vec![OrderBy {
            expr: col("t1", "CID"),
            descending: false,
        }];
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![SqlValue::str("C1"), SqlValue::Int(2)],
                vec![SqlValue::str("C2"), SqlValue::Int(0)], // COUNT skips NULLs
                vec![SqlValue::str("C3"), SqlValue::Int(1)],
            ]
        );
    }

    #[test]
    fn correlated_exists_semi_join() {
        // Table 2(h)
        let d = db();
        let sub = Select::new(TableRef::table("ORDER", "t2"))
            .column(ScalarExpr::lit(SqlValue::Int(1)), "c1");
        let mut sub = sub;
        sub.where_ = Some(col("t1", "CID").eq(col("t2", "CID")));
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "CID"), "c1");
        q.where_ = Some(ScalarExpr::Exists(Box::new(sub)));
        q.order_by = vec![OrderBy {
            expr: col("t1", "CID"),
            descending: false,
        }];
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![SqlValue::str("C1")], vec![SqlValue::str("C3")]]
        );
    }

    #[test]
    fn derived_table_with_pagination() {
        // Table 2(i): order by count desc, subsequence
        let d = db();
        let mut inner = Select::new(TableRef::table("CUSTOMER", "t1").join(
            JoinKind::LeftOuter,
            TableRef::table("ORDER", "t2"),
            col("t1", "CID").eq(col("t2", "CID")),
        ))
        .column(col("t1", "CID"), "c1")
        .column(
            ScalarExpr::Agg {
                func: AggFunc::Count,
                arg: Some(Box::new(col("t2", "CID"))),
                distinct: false,
            },
            "c2",
        );
        inner.group_by = vec![col("t1", "CID")];
        inner.order_by = vec![OrderBy {
            expr: ScalarExpr::Agg {
                func: AggFunc::Count,
                arg: Some(Box::new(col("t2", "CID"))),
                distinct: false,
            },
            descending: true,
        }];
        let mut outer = Select::new(TableRef::Derived {
            query: Box::new(inner),
            alias: "t3".into(),
        })
        .column(col("t3", "c1"), "c1")
        .column(col("t3", "c2"), "c2");
        outer.offset = Some(1);
        outer.fetch = Some(1);
        let rs = d.execute_select(&outer, &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![SqlValue::str("C3"), SqlValue::Int(1)]]);
    }

    #[test]
    fn ppk_disjunctive_parameter_block() {
        // the PP-k fetch query (§4.2): fetch ORDER rows joining a block
        let d = db();
        let mut q = Select::new(TableRef::table("ORDER", "t1"))
            .column(col("t1", "OID"), "c1")
            .column(col("t1", "CID"), "c2");
        q.where_ = Some(ppk_block_predicate(&[col("t1", "CID")], 2, 0));
        let rs = d
            .execute_select(&q, &[SqlValue::str("C1"), SqlValue::str("C3")])
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn three_valued_where_and_in_list() {
        let d = db();
        // FIRST_NAME = 'Ann' is UNKNOWN for C2 (NULL) → filtered out
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "CID"), "c1");
        q.where_ = Some(ScalarExpr::Not(Box::new(
            col("t1", "FIRST_NAME").eq(ScalarExpr::lit(SqlValue::str("Ann"))),
        )));
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![SqlValue::str("C3")]]); // NOT UNKNOWN is UNKNOWN
                                                              // IN list with NULL member
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "CID"), "c1");
        q.where_ = Some(ScalarExpr::InList {
            expr: Box::new(col("t1", "FIRST_NAME")),
            list: vec![
                ScalarExpr::lit(SqlValue::str("Bob")),
                ScalarExpr::lit(SqlValue::Null),
            ],
        });
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![SqlValue::str("C3")]]);
    }

    #[test]
    fn scalar_functions() {
        let d = db();
        let q = Select::new(TableRef::table("CUSTOMER", "t1"))
            .column(
                ScalarExpr::Func {
                    name: "UPPER".into(),
                    args: vec![col("t1", "LAST_NAME")],
                },
                "c1",
            )
            .column(
                ScalarExpr::Func {
                    name: "SUBSTR".into(),
                    args: vec![
                        col("t1", "CID"),
                        ScalarExpr::lit(SqlValue::Int(2)),
                        ScalarExpr::lit(SqlValue::Int(1)),
                    ],
                },
                "c2",
            );
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows[0], vec![SqlValue::str("JONES"), SqlValue::str("1")]);
    }

    #[test]
    fn aggregates_over_empty_input() {
        let d = db();
        let mut q = Select::new(TableRef::table("ORDER", "t1"))
            .column(ScalarExpr::count_star(), "c1")
            .column(
                ScalarExpr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(col("t1", "AMOUNT"))),
                    distinct: false,
                },
                "c2",
            );
        q.where_ = Some(col("t1", "OID").eq(ScalarExpr::lit(SqlValue::Int(999))));
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![SqlValue::Int(0), SqlValue::Null]]);
    }

    #[test]
    fn sum_avg_min_max() {
        let d = db();
        let q = Select::new(TableRef::table("ORDER", "t1"))
            .column(
                ScalarExpr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(Box::new(col("t1", "AMOUNT"))),
                    distinct: false,
                },
                "s",
            )
            .column(
                ScalarExpr::Agg {
                    func: AggFunc::Min,
                    arg: Some(Box::new(col("t1", "AMOUNT"))),
                    distinct: false,
                },
                "mn",
            )
            .column(
                ScalarExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(Box::new(col("t1", "AMOUNT"))),
                    distinct: false,
                },
                "mx",
            );
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(rs.rows[0][0].to_string(), "37.75");
        assert_eq!(rs.rows[0][1].to_string(), "7.25");
        assert_eq!(rs.rows[0][2].to_string(), "20");
    }

    #[test]
    fn order_by_nulls_least_and_desc() {
        let d = db();
        let mut q =
            Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "FIRST_NAME"), "c1");
        q.order_by = vec![OrderBy {
            expr: col("t1", "FIRST_NAME"),
            descending: true,
        }];
        let rs = d.execute_select(&q, &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![SqlValue::str("Bob")],
                vec![SqlValue::str("Ann")],
                vec![SqlValue::Null]
            ]
        );
    }

    #[test]
    fn errors_surface() {
        let d = db();
        let q = Select::new(TableRef::table("NOPE", "t1"))
            .column(ScalarExpr::lit(SqlValue::Int(1)), "c1");
        assert!(d.execute_select(&q, &[]).is_err());
        let q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "MISSING"), "c1");
        assert!(d.execute_select(&q, &[]).is_err());
        let mut q = Select::new(TableRef::table("CUSTOMER", "t1")).column(col("t1", "CID"), "c1");
        q.where_ = Some(col("t1", "CID").eq(ScalarExpr::Param(2)));
        assert!(d.execute_select(&q, &[SqlValue::str("x")]).is_err());
    }

    #[test]
    fn projection_struct_helpers() {
        let c = OutputColumn {
            expr: ScalarExpr::lit(SqlValue::Int(1)),
            alias: "x".into(),
        };
        assert_eq!(c.alias, "x");
    }
}
