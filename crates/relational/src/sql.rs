//! The SQL abstract syntax the pushdown framework generates (§4.3, §4.4).
//!
//! ALDSP's SQL generation produces vendor-specific SQL *text*; internally
//! it first builds this AST, then renders it per dialect
//! ([`crate::dialect`]) and — in this reproduction — executes it directly
//! against the in-memory engine ([`crate::exec`]). The AST covers exactly
//! the pushable repertoire Tables 1–2 demonstrate: select-project, inner
//! and left outer joins, CASE, GROUP BY with aggregates, DISTINCT,
//! EXISTS semi-joins, ORDER BY, pagination, and disjunctive parameter
//! blocks (the PP-k fetch query shape).

use crate::types::SqlValue;
use aldsp_xdm::item::CompOp;

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projected columns with output aliases (`AS c1`, `AS c2`, … — the
    /// naming scheme visible in the paper's Tables 1–2).
    pub columns: Vec<OutputColumn>,
    /// The FROM clause.
    pub from: TableRef,
    /// WHERE predicate.
    pub where_: Option<ScalarExpr>,
    /// GROUP BY keys.
    pub group_by: Vec<ScalarExpr>,
    /// HAVING predicate.
    pub having: Option<ScalarExpr>,
    /// ORDER BY specifications.
    pub order_by: Vec<OrderBy>,
    /// Row-range selection (from `fn:subsequence` pushdown, Table 2(i)):
    /// skip `offset` rows, then return at most `fetch` rows.
    pub offset: Option<u64>,
    /// Maximum number of rows to return.
    pub fetch: Option<u64>,
}

impl Select {
    /// A bare `SELECT cols FROM from`.
    pub fn new(from: TableRef) -> Select {
        Select {
            distinct: false,
            columns: Vec::new(),
            from,
            where_: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            offset: None,
            fetch: None,
        }
    }

    /// Add a projected column.
    pub fn column(mut self, expr: ScalarExpr, alias: &str) -> Self {
        self.columns.push(OutputColumn {
            expr,
            alias: alias.to_string(),
        });
        self
    }

    /// Does any output column or the HAVING clause aggregate?
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.columns.iter().any(|c| c.expr.contains_aggregate())
            || self
                .having
                .as_ref()
                .is_some_and(ScalarExpr::contains_aggregate)
    }
}

/// One projected output column.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputColumn {
    /// The projected expression.
    pub expr: ScalarExpr,
    /// Output alias.
    pub alias: String,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Sort key expression.
    pub expr: ScalarExpr,
    /// Descending?
    pub descending: bool,
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base table with a correlation alias (`"CUSTOMER" t1`).
    Table {
        /// Table name.
        name: String,
        /// Correlation alias (`t1`, `t2`, …).
        alias: String,
    },
    /// A join of two table refs.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Inner or left-outer.
        kind: JoinKind,
        /// The ON condition.
        on: ScalarExpr,
    },
    /// A parenthesized subquery with an alias (the nesting Table 2(i)'s
    /// Oracle ROWNUM pagination uses).
    Derived {
        /// The subquery.
        query: Box<Select>,
        /// Correlation alias.
        alias: String,
    },
}

impl TableRef {
    /// A base table reference.
    pub fn table(name: &str, alias: &str) -> TableRef {
        TableRef::Table {
            name: name.to_string(),
            alias: alias.to_string(),
        }
    }

    /// Join this ref with another.
    pub fn join(self, kind: JoinKind, right: TableRef, on: ScalarExpr) -> TableRef {
        TableRef::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind,
            on,
        }
    }

    /// All correlation aliases introduced by this ref.
    pub fn aliases(&self, out: &mut Vec<String>) {
        match self {
            TableRef::Table { alias, .. } | TableRef::Derived { alias, .. } => {
                out.push(alias.clone())
            }
            TableRef::Join { left, right, .. } => {
                left.aliases(out);
                right.aliases(out);
            }
        }
    }
}

/// Join kinds the pushdown framework emits (Tables 1(b), 1(c), 2(g)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `JOIN … ON`.
    Inner,
    /// `LEFT OUTER JOIN … ON`.
    LeftOuter,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A column reference `alias.column`.
    Column {
        /// Correlation alias of the owning table ref.
        table: String,
        /// Column name.
        column: String,
    },
    /// A literal value.
    Literal(SqlValue),
    /// A positional parameter (`?`) — bound per execution; the PP-k join
    /// rebinds these once per block (§4.2).
    Param(usize),
    /// A comparison.
    Compare {
        /// Operator.
        op: CompOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// `a AND b`.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// `a OR b`.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// `NOT a`.
    Not(Box<ScalarExpr>),
    /// `a IS NULL`.
    IsNull(Box<ScalarExpr>),
    /// Arithmetic.
    Arith {
        /// Operator (`div` renders `/`).
        op: aldsp_xdm::value::ArithOp,
        /// Left operand.
        lhs: Box<ScalarExpr>,
        /// Right operand.
        rhs: Box<ScalarExpr>,
    },
    /// `CASE WHEN … THEN … [ELSE …] END` (Table 1(d)).
    Case {
        /// `(condition, result)` arms.
        when: Vec<(ScalarExpr, ScalarExpr)>,
        /// ELSE result.
        els: Option<Box<ScalarExpr>>,
    },
    /// `EXISTS (subquery)` — semi-join (Table 2(h)). The subquery may
    /// reference outer aliases (correlated).
    Exists(Box<Select>),
    /// `expr IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// List members.
        list: Vec<ScalarExpr>,
    },
    /// A scalar function (`UPPER`, `LOWER`, `LENGTH`, `SUBSTR`, `CONCAT`,
    /// `ABS`, …) — the pushable function repertoire of §4.3.
    Func {
        /// Function name (uppercase).
        name: String,
        /// Arguments.
        args: Vec<ScalarExpr>,
    },
    /// An aggregate (`COUNT(*)`, `COUNT(x)`, `SUM`, `AVG`, `MIN`, `MAX`).
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` only for `COUNT(*)`.
        arg: Option<Box<ScalarExpr>>,
        /// `DISTINCT` aggregate?
        distinct: bool,
    },
}

impl ScalarExpr {
    /// Column shorthand.
    pub fn col(table: &str, column: &str) -> ScalarExpr {
        ScalarExpr::Column {
            table: table.to_string(),
            column: column.to_string(),
        }
    }

    /// Literal shorthand.
    pub fn lit(v: SqlValue) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    /// Equality comparison shorthand.
    pub fn eq(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Compare {
            op: CompOp::Eq,
            lhs: Box::new(self),
            rhs: Box::new(rhs),
        }
    }

    /// Conjunction shorthand.
    pub fn and(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction shorthand.
    pub fn or(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// `COUNT(*)`.
    pub fn count_star() -> ScalarExpr {
        ScalarExpr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }
    }

    /// Does this expression (outside subqueries) contain an aggregate?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ScalarExpr::Agg { .. } => true,
            ScalarExpr::Column { .. } | ScalarExpr::Literal(_) | ScalarExpr::Param(_) => false,
            ScalarExpr::Compare { lhs, rhs, .. } | ScalarExpr::Arith { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => {
                a.contains_aggregate() || b.contains_aggregate()
            }
            ScalarExpr::Not(a) | ScalarExpr::IsNull(a) => a.contains_aggregate(),
            ScalarExpr::Case { when, els } => {
                when.iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || els.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            ScalarExpr::Exists(_) => false,
            ScalarExpr::InList { expr, list } => {
                expr.contains_aggregate() || list.iter().any(ScalarExpr::contains_aggregate)
            }
            ScalarExpr::Func { args, .. } => args.iter().any(ScalarExpr::contains_aggregate),
        }
    }

    /// Highest `Param` index + 1 (the statement's parameter count).
    pub fn param_count(&self) -> usize {
        let mut max = 0;
        self.walk(&mut |e| {
            if let ScalarExpr::Param(i) = e {
                max = max.max(i + 1);
            }
        });
        max
    }

    /// Visit this expression tree (not descending into subqueries).
    pub fn walk(&self, f: &mut dyn FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Compare { lhs, rhs, .. } | ScalarExpr::Arith { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ScalarExpr::Not(a) | ScalarExpr::IsNull(a) => a.walk(f),
            ScalarExpr::Case { when, els } => {
                for (c, r) in when {
                    c.walk(f);
                    r.walk(f);
                }
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            ScalarExpr::InList { expr, list } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ScalarExpr::Agg { arg: Some(a), .. } => a.walk(f),
            _ => {}
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `AVG`.
    Avg,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
}

impl AggFunc {
    /// SQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Build the disjunctive PP-k block-fetch predicate (§4.2): for key
/// columns `cols` and a block of `k` outer tuples, produce
/// `(c1 = ?a1 AND c2 = ?b1) OR (c1 = ?a2 AND c2 = ?b2) OR …` with
/// sequentially numbered parameters starting at `first_param`.
pub fn ppk_block_predicate(cols: &[ScalarExpr], k: usize, first_param: usize) -> ScalarExpr {
    assert!(
        !cols.is_empty() && k > 0,
        "PP-k predicate needs keys and a block"
    );
    let mut disjuncts: Option<ScalarExpr> = None;
    let mut p = first_param;
    for _ in 0..k {
        let mut conj: Option<ScalarExpr> = None;
        for c in cols {
            let term = c.clone().eq(ScalarExpr::Param(p));
            p += 1;
            conj = Some(match conj {
                Some(prev) => prev.and(term),
                None => term,
            });
        }
        let conj = conj.expect("cols non-empty");
        disjuncts = Some(match disjuncts {
            Some(prev) => prev.or(conj),
            None => conj,
        });
    }
    disjuncts.expect("k > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let q = Select::new(TableRef::table("CUSTOMER", "t1"))
            .column(ScalarExpr::col("t1", "LAST_NAME"), "c1")
            .column(ScalarExpr::count_star(), "c2");
        assert!(q.is_aggregate());
        let plain = Select::new(TableRef::table("CUSTOMER", "t1"))
            .column(ScalarExpr::col("t1", "CID"), "c1");
        assert!(!plain.is_aggregate());
    }

    #[test]
    fn param_counting() {
        let e = ScalarExpr::col("t1", "CID")
            .eq(ScalarExpr::Param(0))
            .or(ScalarExpr::col("t1", "CID").eq(ScalarExpr::Param(1)));
        assert_eq!(e.param_count(), 2);
    }

    #[test]
    fn ppk_predicate_shape() {
        // single-column key, block of 3
        let p = ppk_block_predicate(&[ScalarExpr::col("t1", "CID")], 3, 0);
        assert_eq!(p.param_count(), 3);
        // composite key, block of 2 → 4 params, OR of ANDs
        let p = ppk_block_predicate(
            &[ScalarExpr::col("t1", "A"), ScalarExpr::col("t1", "B")],
            2,
            0,
        );
        assert_eq!(p.param_count(), 4);
        let ScalarExpr::Or(l, _) = &p else {
            panic!("expected OR at top")
        };
        assert!(matches!(**l, ScalarExpr::And(..)));
    }

    #[test]
    fn aliases_collected() {
        let t = TableRef::table("A", "t1").join(
            JoinKind::LeftOuter,
            TableRef::table("B", "t2"),
            ScalarExpr::col("t1", "X").eq(ScalarExpr::col("t2", "X")),
        );
        let mut a = Vec::new();
        t.aliases(&mut a);
        assert_eq!(a, vec!["t1", "t2"]);
    }
}
