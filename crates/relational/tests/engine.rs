//! Deeper SQL-engine tests: HAVING, derived tables, hash-join edge
//! cases (NULL keys, residual predicates), correlated EXISTS through
//! derived tables, and transaction isolation corners.

use aldsp_relational::{
    AggFunc, Catalog, Database, Dialect, Dml, JoinKind, OrderBy, RelationalServer, ScalarExpr,
    Select, SqlType, SqlValue, TableRef, TableSchema, Update,
};
use aldsp_xdm::item::CompOp;
use aldsp_xdm::value::Decimal;
use std::sync::Arc;

fn col(t: &str, c: &str) -> ScalarExpr {
    ScalarExpr::col(t, c)
}

fn db() -> Database {
    let mut cat = Catalog::new();
    cat.add(
        TableSchema::builder("EMP")
            .col("ID", SqlType::Integer)
            .col("DEPT", SqlType::Varchar)
            .col_null("SALARY", SqlType::Decimal)
            .col_null("MGR", SqlType::Integer)
            .pk(&["ID"])
            .build()
            .expect("schema"),
    )
    .expect("catalog");
    let mut d = Database::new();
    for t in cat.tables() {
        d.create_table(t.clone()).expect("fresh");
    }
    for (id, dept, sal, mgr) in [
        (1, "eng", Some("100"), None),
        (2, "eng", Some("80"), Some(1)),
        (3, "eng", None, Some(1)),
        (4, "sales", Some("90"), Some(1)),
        (5, "sales", Some("90"), Some(4)),
        (6, "hr", Some("50"), None),
    ] {
        d.insert(
            "EMP",
            vec![
                SqlValue::Int(id),
                SqlValue::str(dept),
                sal.map(|s| SqlValue::Dec(Decimal::parse(s).expect("lit")))
                    .unwrap_or(SqlValue::Null),
                mgr.map(SqlValue::Int).unwrap_or(SqlValue::Null),
            ],
        )
        .expect("row");
    }
    d
}

#[test]
fn having_filters_groups() {
    let d = db();
    let mut q = Select::new(TableRef::table("EMP", "t1"))
        .column(col("t1", "DEPT"), "c1")
        .column(ScalarExpr::count_star(), "c2");
    q.group_by = vec![col("t1", "DEPT")];
    q.having = Some(ScalarExpr::Compare {
        op: CompOp::Ge,
        lhs: Box::new(ScalarExpr::count_star()),
        rhs: Box::new(ScalarExpr::lit(SqlValue::Int(2))),
    });
    q.order_by = vec![OrderBy {
        expr: col("t1", "DEPT"),
        descending: false,
    }];
    let rs = d.execute_select(&q, &[]).expect("executes");
    assert_eq!(
        rs.rows,
        vec![
            vec![SqlValue::str("eng"), SqlValue::Int(3)],
            vec![SqlValue::str("sales"), SqlValue::Int(2)],
        ]
    );
}

#[test]
fn self_join_on_manager() {
    // hash-join path with NULL keys: employees with no manager don't
    // match; LEFT OUTER keeps them
    let d = db();
    let q = Select::new(TableRef::table("EMP", "e").join(
        JoinKind::LeftOuter,
        TableRef::table("EMP", "m"),
        col("e", "MGR").eq(col("m", "ID")),
    ))
    .column(col("e", "ID"), "c1")
    .column(col("m", "ID"), "c2");
    let rs = d.execute_select(&q, &[]).expect("executes");
    assert_eq!(rs.rows.len(), 6);
    let no_mgr: Vec<_> = rs.rows.iter().filter(|r| r[1].is_null()).collect();
    assert_eq!(no_mgr.len(), 2, "employees 1 and 6 have NULL managers");
}

#[test]
fn hash_join_with_residual_predicate() {
    // equi key plus a residual non-equi condition
    let d = db();
    let on = col("e", "MGR").eq(col("m", "ID")).and(ScalarExpr::Compare {
        op: CompOp::Gt,
        lhs: Box::new(col("m", "SALARY")),
        rhs: Box::new(col("e", "SALARY")),
    });
    let q = Select::new(TableRef::table("EMP", "e").join(
        JoinKind::Inner,
        TableRef::table("EMP", "m"),
        on,
    ))
    .column(col("e", "ID"), "c1");
    let rs = d.execute_select(&q, &[]).expect("executes");
    // only emp 2 has a manager (1: 100) strictly richer than them (80);
    // emp 3's NULL salary compares UNKNOWN; 4's mgr earns 100 > 90 ✓;
    // 5's mgr earns 90 = 90 ✗
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn derived_table_feeding_aggregate() {
    // SELECT AVG(c) FROM (SELECT COUNT(*) c FROM EMP GROUP BY DEPT) t
    let d = db();
    let mut inner = Select::new(TableRef::table("EMP", "t1")).column(ScalarExpr::count_star(), "c");
    inner.group_by = vec![col("t1", "DEPT")];
    let outer = Select::new(TableRef::Derived {
        query: Box::new(inner),
        alias: "t".into(),
    })
    .column(
        ScalarExpr::Agg {
            func: AggFunc::Avg,
            arg: Some(Box::new(col("t", "c"))),
            distinct: false,
        },
        "c1",
    );
    let rs = d.execute_select(&outer, &[]).expect("executes");
    assert_eq!(rs.rows[0][0].to_string(), "2"); // (3+2+1)/3
}

#[test]
fn distinct_aggregate() {
    let d = db();
    let q = Select::new(TableRef::table("EMP", "t1")).column(
        ScalarExpr::Agg {
            func: AggFunc::Count,
            arg: Some(Box::new(col("t1", "SALARY"))),
            distinct: true,
        },
        "c1",
    );
    let rs = d.execute_select(&q, &[]).expect("executes");
    // distinct non-null salaries: 100, 80, 90, 50
    assert_eq!(rs.rows[0][0], SqlValue::Int(4));
}

#[test]
fn update_set_from_other_column_and_rollback_path() {
    let d = db();
    let server = Arc::new(RelationalServer::new("hr", Dialect::Sql92, d));
    // prepared-but-rolled-back work leaves no trace
    let raise = Dml::Update(Update {
        table: "EMP".into(),
        alias: "t1".into(),
        set: vec![(
            "SALARY".into(),
            ScalarExpr::Arith {
                op: aldsp_xdm::value::ArithOp::Mul,
                lhs: Box::new(col("t1", "SALARY")),
                rhs: Box::new(ScalarExpr::lit(SqlValue::Int(2))),
            },
        )],
        where_: Some(col("t1", "DEPT").eq(ScalarExpr::lit(SqlValue::str("hr")))),
    });
    let tx = server
        .prepare(vec![(raise.clone(), vec![])])
        .expect("prepares");
    server.rollback(tx);
    let hr_salary = server.with_db(|d| d.table("EMP").expect("t").rows()[5][2].clone());
    assert_eq!(hr_salary.to_string(), "50");
    // committed work applies
    let tx = server.prepare(vec![(raise, vec![])]).expect("prepares");
    assert_eq!(server.commit(tx).expect("commits"), 1);
    let hr_salary = server.with_db(|d| d.table("EMP").expect("t").rows()[5][2].clone());
    assert_eq!(hr_salary.to_string(), "100");
}

#[test]
fn pagination_offset_beyond_end() {
    let d = db();
    let mut q = Select::new(TableRef::table("EMP", "t1")).column(col("t1", "ID"), "c1");
    q.order_by = vec![OrderBy {
        expr: col("t1", "ID"),
        descending: false,
    }];
    q.offset = Some(100);
    q.fetch = Some(5);
    let rs = d.execute_select(&q, &[]).expect("executes");
    assert!(rs.rows.is_empty());
    q.offset = Some(4);
    q.fetch = Some(10);
    let rs = d.execute_select(&q, &[]).expect("executes");
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn in_list_and_case_in_where() {
    let d = db();
    let mut q = Select::new(TableRef::table("EMP", "t1")).column(col("t1", "ID"), "c1");
    q.where_ = Some(ScalarExpr::InList {
        expr: Box::new(col("t1", "DEPT")),
        list: vec![
            ScalarExpr::lit(SqlValue::str("eng")),
            ScalarExpr::lit(SqlValue::str("hr")),
        ],
    });
    let rs = d.execute_select(&q, &[]).expect("executes");
    assert_eq!(rs.rows.len(), 4);
}
