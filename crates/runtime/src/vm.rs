//! The expression VM: a zero-recursion executor for the compiler's
//! bytecode [`Program`]s (the execute-many half of compile-once /
//! execute-many).
//!
//! A [`Program`] is compiled once per cached plan; an [`ExprVM`] is a
//! reusable operand stack that runs it against one tuple frame per
//! call. The hot path allocates nothing per tuple: the stack is
//! pre-sized from the program's simulated peak depth, frame reads
//! share the slot's sequence (`Arc` bump or inline-item clone, never an
//! item copy of a `Many` cell), and every op that merely inspects its
//! operand — comparisons, EBV, casts of singletons — works on borrowed
//! slices via [`Val::as_slice`].
//!
//! Every op mirrors the corresponding tree-walker arm in
//! [`crate::eval`] exactly (builtins go through the *shared*
//! `apply_builtin` kernel), so a compiled subtree and its interpreted
//! fallback are byte-identical by construction — the property the
//! differential oracle's `vm {on,off}` axis checks.

use crate::env::{Env, SlotValue};
use crate::eval::{apply_builtin, descend, pick_const_positional, RtError, RtResult};
use aldsp_compiler::program::{Op, Program};
use aldsp_xdm::item::{
    arithmetic, atomize, effective_boolean_value, general_compare, value_compare, Item, Sequence,
};
use aldsp_xdm::value::{AtomicType, AtomicValue};
use aldsp_xdm::XdmError;
use std::sync::Arc;

/// A VM operand: a sequence that is empty, a single inline item, a
/// slot's sequence shared by refcount, or owned by this stack entry.
#[derive(Clone, Debug)]
pub enum Val {
    Empty,
    One(Item),
    Shared(Arc<Sequence>),
    Owned(Sequence),
}

impl Val {
    /// Wrap an owned sequence, collapsing the cheap cardinalities.
    pub fn of(mut s: Sequence) -> Val {
        match s.len() {
            0 => Val::Empty,
            1 => Val::One(s.pop().expect("len 1")),
            _ => Val::Owned(s),
        }
    }

    /// A singleton boolean (the commonest op result).
    pub fn bool(b: bool) -> Val {
        Val::One(Item::Atomic(AtomicValue::Boolean(b)))
    }

    /// Borrow the underlying items.
    #[inline]
    pub fn as_slice(&self) -> &[Item] {
        match self {
            Val::Empty => &[],
            Val::One(item) => std::slice::from_ref(item),
            Val::Shared(s) => s.as_slice(),
            Val::Owned(s) => s.as_slice(),
        }
    }

    /// Convert to an owned sequence; shared values clone their items
    /// only when another reference is still alive.
    pub fn into_sequence(self) -> Sequence {
        match self {
            Val::Empty => Vec::new(),
            Val::One(item) => vec![item],
            Val::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
            Val::Owned(s) => s,
        }
    }
}

impl From<SlotValue> for Val {
    fn from(s: SlotValue) -> Val {
        match s {
            SlotValue::Empty => Val::Empty,
            SlotValue::One(item) => Val::One(item),
            SlotValue::Many(a) => Val::Shared(a),
        }
    }
}

/// [`crate::eval`]'s `atomize_first` on an already-computed value — the
/// order-by / group-by key shape.
pub(crate) fn atomize_first_val(v: &Val) -> Option<AtomicValue> {
    match v.as_slice() {
        [] => None,
        [Item::Atomic(a)] => Some(a.clone()),
        [Item::Node(n)] => n.typed_value(),
        s => atomize(s).into_iter().next(),
    }
}

/// `single_integer` on an already-computed value (the `Range` bounds).
fn single_integer_val(v: &Val) -> RtResult<Option<i64>> {
    let a = atomize(v.as_slice());
    match a.as_slice() {
        [] => Ok(None),
        [one] => match one.cast_to(AtomicType::Integer)? {
            AtomicValue::Integer(i) => Ok(Some(i)),
            _ => unreachable!("cast to integer"),
        },
        _ => Err(XdmError::NotSingleton(a.len()).into()),
    }
}

/// A reusable operand stack. One per hot call site (clause closures own
/// theirs; the generic `eval` probe uses a thread-local).
#[derive(Default)]
pub struct ExprVM {
    stack: Vec<Val>,
}

impl ExprVM {
    pub fn new() -> ExprVM {
        ExprVM::default()
    }

    /// Execute `prog` against one tuple frame, leaving the expression's
    /// value. `ops` accumulates the executed-op count locally; callers
    /// flush it to stats at operator granularity, never per tuple.
    pub fn run(&mut self, prog: &Program, env: &Env, ops: &mut u64) -> RtResult<Val> {
        self.stack.clear();
        self.stack.reserve(prog.max_stack as usize);
        let code = prog.ops.as_slice();
        let mut pc = 0usize;
        let mut executed = 0u64;
        let result = loop {
            if pc >= code.len() {
                break Ok(self.stack.pop().expect("program leaves one value"));
            }
            executed += 1;
            match code[pc] {
                Op::Const(i) => self
                    .stack
                    .push(Val::One(Item::Atomic(prog.consts[i as usize].clone()))),
                Op::Var { slot, name } => match env.slot_value(slot) {
                    Some(v) => self.stack.push(Val::from(v)),
                    None => {
                        break Err(RtError::Plan(format!(
                            "unbound variable ${}",
                            prog.names[name as usize]
                        )))
                    }
                },
                Op::Seq(n) => {
                    let start = self.stack.len() - n as usize;
                    let total: usize = self.stack[start..].iter().map(|v| v.as_slice().len()).sum();
                    let mut out: Sequence = Vec::with_capacity(total);
                    for v in self.stack.drain(start..) {
                        match v {
                            Val::Empty => {}
                            Val::One(item) => out.push(item),
                            Val::Shared(a) => out.extend_from_slice(&a),
                            Val::Owned(s) => out.extend(s),
                        }
                    }
                    self.stack.push(Val::of(out));
                }
                Op::Range => {
                    let hi = self.stack.pop().expect("range hi");
                    let lo = self.stack.pop().expect("range lo");
                    let bounds = single_integer_val(&lo)
                        .and_then(|lo| single_integer_val(&hi).map(|hi| (lo, hi)));
                    let v = match bounds {
                        Ok((Some(lo), Some(hi))) if lo <= hi => {
                            Val::of((lo..=hi).map(Item::int).collect())
                        }
                        Ok(_) => Val::Empty,
                        Err(e) => break Err(e),
                    };
                    self.stack.push(v);
                }
                Op::Ebv => {
                    let v = self.stack.pop().expect("ebv operand");
                    match effective_boolean_value(v.as_slice()) {
                        Ok(b) => self.stack.push(Val::bool(b)),
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::AndShort(target) => {
                    let v = self.stack.pop().expect("and operand");
                    match effective_boolean_value(v.as_slice()) {
                        Ok(false) => {
                            self.stack.push(Val::bool(false));
                            pc = target as usize;
                            continue;
                        }
                        Ok(true) => {}
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::OrShort(target) => {
                    let v = self.stack.pop().expect("or operand");
                    match effective_boolean_value(v.as_slice()) {
                        Ok(true) => {
                            self.stack.push(Val::bool(true));
                            pc = target as usize;
                            continue;
                        }
                        Ok(false) => {}
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::JumpIfFalse(target) => {
                    let v = self.stack.pop().expect("condition");
                    match effective_boolean_value(v.as_slice()) {
                        Ok(false) => {
                            pc = target as usize;
                            continue;
                        }
                        Ok(true) => {}
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::Jump(target) => {
                    pc = target as usize;
                    continue;
                }
                Op::Compare { op, general } => {
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    let v = if general {
                        match general_compare(l.as_slice(), op, r.as_slice()) {
                            Ok(b) => Val::bool(b),
                            Err(e) => break Err(e.into()),
                        }
                    } else {
                        match value_compare(l.as_slice(), op, r.as_slice()) {
                            Ok(Some(b)) => Val::bool(b),
                            Ok(None) => Val::Empty,
                            Err(e) => break Err(e.into()),
                        }
                    };
                    self.stack.push(v);
                }
                Op::Arith(op) => {
                    let r = self.stack.pop().expect("rhs");
                    let l = self.stack.pop().expect("lhs");
                    match arithmetic(l.as_slice(), op, r.as_slice()) {
                        Ok(Some(v)) => self.stack.push(Val::One(Item::Atomic(v))),
                        Ok(None) => self.stack.push(Val::Empty),
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::Data => {
                    let v = self.stack.pop().expect("data operand");
                    match v.as_slice() {
                        // the pipeline's hot shape: one node, one value
                        [Item::Node(n)] => self.stack.push(match n.typed_value() {
                            Some(a) => Val::One(Item::Atomic(a)),
                            None => Val::Empty,
                        }),
                        // atomization of an all-atomic sequence is itself
                        s if s.iter().all(|i| matches!(i, Item::Atomic(_))) => {
                            self.stack.push(v);
                        }
                        s => {
                            let out = atomize(s).into_iter().map(Item::Atomic).collect();
                            self.stack.push(Val::of(out));
                        }
                    }
                }
                Op::ChildStep(name) => {
                    let v = self.stack.pop().expect("step input");
                    // the pipeline's hot shape — one node, a named child
                    // that occurs 0 or 1 times — never touches the heap
                    if let ([Item::Node(n)], Some(q)) = (v.as_slice(), name) {
                        let mut it = n.child_elements(&prog.qnames[q as usize]);
                        let out = match it.next() {
                            None => Val::Empty,
                            Some(first) => match it.next() {
                                None => Val::One(Item::Node(first.clone())),
                                Some(second) => {
                                    let mut out =
                                        vec![Item::Node(first.clone()), Item::Node(second.clone())];
                                    out.extend(it.cloned().map(Item::Node));
                                    Val::Owned(out)
                                }
                            },
                        };
                        self.stack.push(out);
                        pc += 1;
                        continue;
                    }
                    let mut out = Vec::new();
                    for item in v.as_slice() {
                        if let Item::Node(n) = item {
                            match name {
                                Some(q) => out.extend(
                                    n.child_elements(&prog.qnames[q as usize])
                                        .cloned()
                                        .map(Item::Node),
                                ),
                                None => out.extend(n.all_child_elements().cloned().map(Item::Node)),
                            }
                        }
                    }
                    self.stack.push(Val::of(out));
                }
                Op::AttrStep(name) => {
                    let v = self.stack.pop().expect("step input");
                    let mut out = Vec::new();
                    for item in v.as_slice() {
                        if let Item::Node(n) = item {
                            match name {
                                Some(q) => {
                                    if let Some(a) = n.attribute_named(&prog.qnames[q as usize]) {
                                        out.push(Item::Node(a.clone()));
                                    }
                                }
                                None => out.extend(n.attributes().iter().cloned().map(Item::Node)),
                            }
                        }
                    }
                    self.stack.push(Val::of(out));
                }
                Op::DescendantStep => {
                    let v = self.stack.pop().expect("step input");
                    let mut out = Vec::new();
                    for item in v.as_slice() {
                        if let Item::Node(n) = item {
                            descend(n, &mut out);
                        }
                    }
                    self.stack.push(Val::of(out));
                }
                Op::Cast { target, optional } => {
                    let v = self.stack.pop().expect("cast input");
                    let r = match v.as_slice() {
                        // singleton-atomic fast path: atomization is identity
                        [Item::Atomic(a)] => a.cast_to(target).map(|c| Val::One(Item::Atomic(c))),
                        s => {
                            let av = atomize(s);
                            match av.as_slice() {
                                [] if optional => Ok(Val::Empty),
                                [] => Err(XdmError::Cast {
                                    value: "()".into(),
                                    target,
                                }),
                                [one] => one.cast_to(target).map(|c| Val::One(Item::Atomic(c))),
                                _ => Err(XdmError::NotSingleton(av.len())),
                            }
                        }
                    };
                    match r {
                        Ok(v) => self.stack.push(v),
                        Err(e) => break Err(e.into()),
                    }
                }
                Op::Castable(target) => {
                    let v = self.stack.pop().expect("castable input");
                    let ok = match v.as_slice() {
                        [Item::Atomic(a)] => a.cast_to(target).is_ok(),
                        s => {
                            let av = atomize(s);
                            match av.as_slice() {
                                [] => true,
                                [one] => one.cast_to(target).is_ok(),
                                _ => false,
                            }
                        }
                    };
                    self.stack.push(Val::bool(ok));
                }
                Op::InstanceOf(ti) => {
                    let v = self.stack.pop().expect("instance-of input");
                    let ok = prog.types[ti as usize].matches(v.as_slice());
                    self.stack.push(Val::bool(ok));
                }
                Op::TypeMatch(ti) => {
                    let v = self.stack.pop().expect("type-match input");
                    let ty = &prog.types[ti as usize];
                    if ty.matches(v.as_slice()) {
                        self.stack.push(v);
                    } else {
                        break Err(XdmError::TypeMatch {
                            expected: ty.to_string(),
                            actual: format!("a sequence of {} item(s)", v.as_slice().len()),
                        }
                        .into());
                    }
                }
                Op::Call { op, argc } => {
                    let start = self.stack.len() - argc as usize;
                    match apply_builtin(op, &self.stack[start..]) {
                        Ok(v) => {
                            self.stack.truncate(start);
                            self.stack.push(v);
                        }
                        Err(e) => break Err(e),
                    }
                }
                Op::PickConst(n) => {
                    let v = self.stack.pop().expect("filter input");
                    let picked = match pick_const_positional(v.as_slice(), n) {
                        Some(item) => Val::One(item),
                        None => Val::Empty,
                    };
                    self.stack.push(picked);
                }
            }
            pc += 1;
        };
        *ops += executed;
        if result.is_err() {
            self.stack.clear();
        }
        result
    }
}
