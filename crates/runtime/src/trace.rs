//! Per-query operator traces.
//!
//! Where [`crate::stats::ExecStats`] is the runtime's cheap *global*
//! aggregate (shared by every concurrent query), a [`QueryTrace`] is a
//! per-execution record: each plan node — addressed by the compiler's
//! `node_id`, with FLWOR clauses addressed as `(node_id, clause index)`
//! exactly as EXPLAIN prints them — accumulates rows in, rows out, wall
//! time and source roundtrips for one query run.
//!
//! Tracing is opt-in per request. The untraced hot path pays a single
//! branch on an `Option`; the traced path keeps plain `u64` counters in
//! the pipeline's wrapper iterators and flushes them into the shared
//! [`TraceCollector`] only on drop, so there is no per-row locking.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// How much per-query instrumentation to collect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No per-query trace (the default; hot path pays one branch).
    #[default]
    Off,
    /// Per-operator rows in/out, wall time and source roundtrips.
    Operators,
}

/// Addresses one traced operator: a plan node, or one clause of a FLWOR
/// node (`clause` = index in the clause list, matching the `#id.idx`
/// labels EXPLAIN prints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceKey {
    /// The plan node's `node_id`.
    pub node: u32,
    /// `Some(i)` for clause `i` of a FLWOR node, `None` for the node
    /// itself.
    pub clause: Option<u32>,
}

impl TraceKey {
    /// A whole plan node.
    pub fn node(node: u32) -> TraceKey {
        TraceKey { node, clause: None }
    }

    /// One clause of a FLWOR node.
    pub fn clause(node: u32, idx: usize) -> TraceKey {
        TraceKey {
            node,
            clause: Some(idx as u32),
        }
    }
}

impl std::fmt::Display for TraceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.clause {
            Some(i) => write!(f, "#{}.{i}", self.node),
            None => write!(f, "#{}", self.node),
        }
    }
}

/// Accumulated counters for one operator in one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeTrace {
    /// Tuples (or items) pulled from the operator's input.
    pub rows_in: u64,
    /// Tuples (or items) the operator produced.
    pub rows_out: u64,
    /// Wall time spent inside the operator, *inclusive* of its upstream
    /// (an operator's `next()` pulls through the operators below it).
    pub wall_ns: u64,
    /// Source roundtrips (SQL statements / adaptor calls) this operator
    /// issued.
    pub source_roundtrips: u64,
    /// Of `wall_ns`, the part spent inside the expression VM running
    /// compiled programs; the remainder is interpreted (tree-walker)
    /// plus operator-machinery time. Only measured when tracing is on.
    pub vm_ns: u64,
    /// Rows this operator buffered as a middleware join's build side
    /// (zero for everything but hash/merge join clauses).
    pub join_build_rows: u64,
}

impl NodeTrace {
    fn merge(&mut self, other: &NodeTrace) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.wall_ns += other.wall_ns;
        self.source_roundtrips += other.source_roundtrips;
        self.vm_ns += other.vm_ns;
        self.join_build_rows += other.join_build_rows;
    }
}

/// The finished per-execution trace.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Per-operator counters, ordered by plan position.
    pub nodes: BTreeMap<TraceKey, NodeTrace>,
}

impl QueryTrace {
    /// The counters for one operator, if it ran.
    pub fn node(&self, key: TraceKey) -> Option<&NodeTrace> {
        self.nodes.get(&key)
    }

    /// Render the trace as one line per operator (debugging aid).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (key, t) in &self.nodes {
            let _ = writeln!(
                out,
                "{key} rows_in={} rows_out={} wall_us={} roundtrips={} vm_us={}",
                t.rows_in,
                t.rows_out,
                t.wall_ns / 1_000,
                t.source_roundtrips,
                t.vm_ns / 1_000
            );
        }
        out
    }
}

/// Shared sink the pipeline's wrapper iterators flush into. One per
/// traced execution; concurrent operators (async parts, prefetch
/// threads) may flush from different threads, hence the mutex — but
/// only at operator granularity, never per row.
#[derive(Debug, Default)]
pub struct TraceCollector {
    nodes: Mutex<BTreeMap<TraceKey, NodeTrace>>,
}

impl TraceCollector {
    /// Merge one operator's accumulated counters.
    pub fn record(&self, key: TraceKey, delta: NodeTrace) {
        let mut nodes = self.nodes.lock().expect("trace collector poisoned");
        nodes.entry(key).or_default().merge(&delta);
    }

    /// Take the finished trace.
    pub fn finish(&self) -> QueryTrace {
        QueryTrace {
            nodes: std::mem::take(&mut *self.nodes.lock().expect("trace collector poisoned")),
        }
    }
}
