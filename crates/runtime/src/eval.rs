//! The plan interpreter (§5).
//!
//! Evaluates the compiler's optimized expression tree. FLWOR clause
//! lists run as a *streaming tuple pipeline* (iterators of environments
//! — the token-iterator discipline of §5.2 at IR granularity), with the
//! operators the paper adds for data-centric use:
//!
//! * [`Clause::SqlFor`] — executes generated SQL through the adaptor
//!   layer; with a [`PpkSpec`] it runs the **PP-k** distributed join
//!   (§4.2): k outer tuples per block, one disjunctive parameterized
//!   fetch per block, local nested-loop or index-nested-loop join;
//! * the single **group operator** (§5.2): streaming over pre-clustered
//!   input, sorting first otherwise;
//! * `fn-bea:async` (§5.4) — sibling async calls evaluate concurrently;
//! * `fn-bea:timeout` / `fn-bea:fail-over` (§5.6);
//! * the function cache (§5.5) wraps physical calls.

use crate::cache::FunctionCache;
use crate::env::Env;
use crate::stats::ExecStats;
use crate::trace::{NodeTrace, TraceCollector, TraceKey};
use crate::vm::{atomize_first_val, ExprVM, Val};
use aldsp_adaptors::{AdaptorError, AdaptorRegistry};
use aldsp_compiler::frames::FrameLayout;
use aldsp_compiler::ir::{Builtin, CExpr, CKind, Clause, LocalJoinMethod, OrderSpec, PpkSpec};
use aldsp_compiler::joins::{JoinMark, JoinPlan, JoinStrategy};
use aldsp_compiler::parallel::{ParTail, ParallelMark, ParallelPlan};
use aldsp_compiler::program::{Program, ProgramSet};
use aldsp_metadata::Registry;
use aldsp_relational::{ppk_block_predicate, ResultSet, Select, SqlType, SqlValue};
use aldsp_workload::{QueryBudget, WorkloadError};
use aldsp_xdm::item::{
    arithmetic, atomize, effective_boolean_value, general_compare, value_compare, Item, Sequence,
};
use aldsp_xdm::node::{Node, NodeKind, NodeRef};
use aldsp_xdm::value::{AtomicType, AtomicValue};
use aldsp_xdm::{QName, XdmError};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Runtime errors.
#[derive(Debug, Clone)]
pub enum RtError {
    /// A data-model error (type match, cast, comparison…).
    Xdm(XdmError),
    /// A source-access error.
    Adaptor(AdaptorError),
    /// A malformed or unexecutable plan.
    Plan(String),
    /// A workload-governance limit was hit (deadline, memory budget).
    Workload(WorkloadError),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Xdm(e) => write!(f, "{e}"),
            RtError::Adaptor(e) => write!(f, "{e}"),
            RtError::Plan(s) => write!(f, "plan error: {s}"),
            RtError::Workload(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<XdmError> for RtError {
    fn from(e: XdmError) -> RtError {
        RtError::Xdm(e)
    }
}

impl From<AdaptorError> for RtError {
    fn from(e: AdaptorError) -> RtError {
        RtError::Adaptor(e)
    }
}

impl From<WorkloadError> for RtError {
    fn from(e: WorkloadError) -> RtError {
        RtError::Workload(e)
    }
}

/// Result alias.
pub type RtResult<T> = Result<T, RtError>;

/// Shared runtime state (wrapped in `Arc` so async/timeout evaluation
/// can move to detached threads).
pub struct RuntimeInner {
    /// Source metadata.
    pub metadata: Arc<Registry>,
    /// Live adaptors.
    pub adaptors: Arc<AdaptorRegistry>,
    /// The mid-tier function cache (§5.5).
    pub cache: FunctionCache,
    /// Execution counters.
    pub stats: ExecStats,
    /// The shared morsel worker pool (threads spawn on first parallel
    /// execution; a single-threaded server never starts any).
    pub pool: crate::parallel::WorkerPool,
}

/// Per-execution context threaded through the interpreter: the shared
/// runtime plus this execution's own stat counters and (optional) trace
/// sink. Cloning is cheap (three `Arc`s), which is how async / timeout /
/// prefetch threads carry the context with them.
#[derive(Clone)]
pub struct ExecCtx {
    /// Shared runtime state.
    pub rt: Arc<RuntimeInner>,
    /// Per-execution counters: every event lands here *and* in the
    /// global `rt.stats` aggregate, so a snapshot of `local` is this
    /// query's exact delta regardless of concurrent queries.
    pub local: Arc<ExecStats>,
    /// Per-operator trace sink; `None` when tracing is off (the
    /// untraced path pays only this branch).
    pub trace: Option<Arc<TraceCollector>>,
    /// Workload budget (deadline, memory cap); `None` for ungoverned
    /// executions. Shared by every thread of the query, so PP-k prefetch
    /// and async threads observe cancellation and charge the same caps.
    pub budget: Option<Arc<QueryBudget>>,
    /// The executing plan's slot assignment: binder names resolve to
    /// frame slots once, when a pipeline is constructed — never per
    /// tuple.
    pub frame: Arc<FrameLayout>,
    /// The executing plan's compiled expression programs, keyed by
    /// subtree-root `node_id` (empty when the plan was compiled with
    /// the VM disabled).
    pub programs: Arc<ProgramSet>,
    /// The executing plan's parallel-eligibility marks (empty when the
    /// plan predates the analysis or was built by hand).
    pub parallel: Arc<ParallelPlan>,
    /// The executing plan's middleware-join decisions (empty when the
    /// plan predates the join-planning pass or was built by hand; every
    /// unmarked `SqlFor` runs as a nested-loop probe).
    pub joins: Arc<JoinPlan>,
    /// Worker count for morsel-driven regions; 1 executes everything on
    /// the calling thread (the default, and the behavior every
    /// stats/trace assertion in the test suite pins).
    pub workers: usize,
    /// Rows per morsel when a region fans out.
    pub morsel_size: usize,
    /// Per-buffered-tuple memory charge, precomputed from the frame
    /// width (a wider tuple frame holds more state per buffered row).
    tuple_mem: u64,
}

impl ExecCtx {
    /// A fresh per-execution context over shared runtime state.
    pub fn new(rt: Arc<RuntimeInner>, trace: Option<Arc<TraceCollector>>) -> ExecCtx {
        ExecCtx {
            rt,
            local: Arc::new(ExecStats::default()),
            trace,
            budget: None,
            frame: Arc::new(FrameLayout::default()),
            programs: Arc::new(ProgramSet::default()),
            parallel: Arc::new(ParallelPlan::default()),
            joins: Arc::new(JoinPlan::default()),
            workers: 1,
            morsel_size: 1024,
            tuple_mem: TUPLE_MEM_BYTES,
        }
    }

    /// Attach the executing plan's parallel marks and this execution's
    /// worker/morsel tuning. Zeros are normalized to the sequential
    /// minimum so callers can pass knobs straight through.
    pub fn with_parallel(
        mut self,
        parallel: Arc<ParallelPlan>,
        workers: usize,
        morsel_size: usize,
    ) -> ExecCtx {
        self.parallel = parallel;
        self.workers = workers.max(1);
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// Attach the executing plan's middleware-join decisions.
    pub fn with_joins(mut self, joins: Arc<JoinPlan>) -> ExecCtx {
        self.joins = joins;
        self
    }

    /// Attach a workload budget to this execution.
    pub fn with_budget(mut self, budget: Option<Arc<QueryBudget>>) -> ExecCtx {
        self.budget = budget;
        self
    }

    /// Attach the executing plan's frame layout.
    pub fn with_frame(mut self, frame: Arc<FrameLayout>) -> ExecCtx {
        self.tuple_mem = TUPLE_MEM_BYTES + 8 * u64::from(frame.width());
        self.frame = frame;
        self
    }

    /// Attach the executing plan's compiled programs. The plan's
    /// fallback-subtree count is a static property, so it is recorded
    /// here once per execution rather than re-counted while running.
    pub fn with_programs(self, programs: Arc<ProgramSet>) -> ExecCtx {
        if programs.fallback_subtrees > 0 {
            self.add(
                |s| &s.vm_fallback_subtrees,
                u64::from(programs.fallback_subtrees),
            );
        }
        ExecCtx { programs, ..self }
    }

    /// Resolve a clause binder to its frame slot. Binders always have a
    /// slot when the plan went through the frame-layout pass; a miss
    /// means the plan was built by hand or predates the pass.
    fn slot_of(&self, name: &str) -> RtResult<u32> {
        self.frame
            .slot(name)
            .ok_or_else(|| RtError::Plan(format!("no frame slot for binder ${name}")))
    }

    /// Cooperative budget check (row boundaries, before roundtrips).
    fn check_budget(&self) -> RtResult<()> {
        if let Some(b) = &self.budget {
            b.check()?;
        }
        Ok(())
    }

    /// Charge buffered-operator memory against the budget.
    fn charge_mem(&self, bytes: u64) -> RtResult<()> {
        if let Some(b) = &self.budget {
            b.charge(bytes)?;
        }
        Ok(())
    }

    /// Return memory previously charged with [`Self::charge_mem`].
    fn release_mem(&self, bytes: u64) {
        if let Some(b) = &self.budget {
            b.release(bytes);
        }
    }

    /// Bump a counter on both the global aggregate and this execution.
    fn inc(&self, f: impl Fn(&ExecStats) -> &std::sync::atomic::AtomicU64) {
        self.rt.stats.inc(f(&self.rt.stats));
        self.local.inc(f(&self.local));
    }

    /// Add to a counter on both the global aggregate and this execution.
    fn add(&self, f: impl Fn(&ExecStats) -> &std::sync::atomic::AtomicU64, n: u64) {
        f(&self.rt.stats).fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        f(&self.local).fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// Raise a high-water mark on both scopes.
    fn peak(&self, f: impl Fn(&ExecStats) -> &std::sync::atomic::AtomicU64, v: u64) {
        self.rt.stats.peak(f(&self.rt.stats), v);
        self.local.peak(f(&self.local), v);
    }

    /// Merge a trace delta for `key`, when tracing is on.
    fn trace_record(&self, key: Option<TraceKey>, delta: NodeTrace) {
        if let (Some(sink), Some(key)) = (&self.trace, key) {
            sink.record(key, delta);
        }
    }

    /// Count one source roundtrip against a traced operator.
    fn trace_roundtrip(&self, key: Option<TraceKey>) {
        self.trace_record(
            key,
            NodeTrace {
                source_roundtrips: 1,
                ..Default::default()
            },
        );
    }
}

type TupleIter<'a> = Box<dyn Iterator<Item = RtResult<Env>> + 'a>;

/// A comparison/arithmetic operand that avoids materializing a fresh
/// `Vec` when the expression is a variable (borrow the frame's
/// sequence) or a constant (a stack-held singleton).
enum Operand<'a> {
    Borrowed(&'a [Item]),
    One([Item; 1]),
    Owned(Sequence),
}

impl Operand<'_> {
    #[inline]
    fn as_slice(&self) -> &[Item] {
        match self {
            Operand::Borrowed(s) => s,
            Operand::One(one) => one,
            Operand::Owned(v) => v,
        }
    }
}

/// Evaluate an operand position without allocating for the two
/// hot-path kinds: `Const` never touches the heap, `Var` borrows the
/// bound sequence straight out of the tuple frame.
fn eval_operand<'a>(cx: &ExecCtx, e: &'a CExpr, env: &'a Env) -> RtResult<Operand<'a>> {
    match &e.kind {
        CKind::Const(v) => Ok(Operand::One([Item::Atomic(v.clone())])),
        CKind::Var { name, slot } => env
            .get_slot(*slot)
            .map(Operand::Borrowed)
            .ok_or_else(|| RtError::Plan(format!("unbound variable ${name}"))),
        _ => eval(cx, e, env).map(Operand::Owned),
    }
}

/// `fn:data` is idempotent, so `data(data(x))` ≡ `data(x)`: helpers that
/// atomize their operand anyway can skip interposed `Data` nodes (and
/// their per-call result vectors) entirely.
fn skip_data(mut e: &CExpr) -> &CExpr {
    while let CKind::Data(inner) = &e.kind {
        e = inner;
    }
    e
}

/// [`eval_operand`], atomized to its first value — the common shape of
/// order-by / group-by / PP-k key extraction.
fn atomize_first(cx: &ExecCtx, e: &CExpr, env: &Env) -> RtResult<Option<AtomicValue>> {
    let v = eval_operand(cx, skip_data(e), env)?;
    let s = v.as_slice();
    match s {
        [] => Ok(None),
        [Item::Atomic(v)] => Ok(Some(v.clone())),
        [Item::Node(n)] => Ok(n.typed_value()),
        _ => Ok(atomize(s).into_iter().next()),
    }
}

std::thread_local! {
    /// The generic `eval` probe's VM. Program ops never re-enter
    /// `eval` (uncovered shapes are not lowered), so the borrow is
    /// never already held when a probe fires.
    static PROBE_VM: std::cell::RefCell<ExprVM> = std::cell::RefCell::new(ExprVM::new());
}

/// Run a compiled program from the generic `eval` probe. Hot clause
/// sites (where/let/keys) own their VM and batch their op counts; this
/// path serves the long tail (return expressions, SQL parameters,
/// quantifier bodies), so a per-call stats flush is acceptable.
fn run_probe(cx: &ExecCtx, prog: &Program, env: &Env) -> RtResult<Val> {
    PROBE_VM.with(|vm| {
        let mut ops = 0u64;
        let r = vm.borrow_mut().run(prog, env, &mut ops);
        cx.add(|s| &s.vm_ops_executed, ops);
        r
    })
}

/// A hot call site's VM handle: owns the reusable stack, accumulates
/// the executed-op count and (only when traced) VM wall time, and
/// flushes both once on drop — never per tuple. The untraced path pays
/// a single `tkey.is_some()` branch per run.
struct VmState<'a> {
    cx: &'a ExecCtx,
    tkey: Option<TraceKey>,
    vm: ExprVM,
    ops: u64,
    ns: u64,
}

impl<'a> VmState<'a> {
    fn new(cx: &'a ExecCtx, tkey: Option<TraceKey>) -> VmState<'a> {
        VmState {
            cx,
            tkey,
            vm: ExprVM::new(),
            ops: 0,
            ns: 0,
        }
    }

    #[inline]
    fn run(&mut self, prog: &Program, env: &Env) -> RtResult<Val> {
        if self.tkey.is_some() {
            let t0 = std::time::Instant::now();
            let r = self.vm.run(prog, env, &mut self.ops);
            self.ns += t0.elapsed().as_nanos() as u64;
            r
        } else {
            self.vm.run(prog, env, &mut self.ops)
        }
    }
}

impl Drop for VmState<'_> {
    fn drop(&mut self) {
        if self.ops > 0 {
            self.cx.add(|s| &s.vm_ops_executed, self.ops);
        }
        if self.ns > 0 {
            self.cx.trace_record(
                self.tkey,
                NodeTrace {
                    vm_ns: self.ns,
                    ..Default::default()
                },
            );
        }
    }
}

/// The compiled program (if any) behind a key-position expression.
/// Keys run through atomizing helpers that skip `Data` wrappers; a
/// compiled program includes the `Data` op, which is idempotent under
/// first-value atomization, so running the full program is equivalent.
fn key_prog(cx: &ExecCtx, e: &CExpr) -> Option<Arc<Program>> {
    cx.programs.lookup(e.node_id).cloned()
}

/// `atomize_first` through the VM when the key compiled, else the
/// walker.
fn key_first(
    cx: &ExecCtx,
    vm: &mut VmState<'_>,
    prog: &Option<Arc<Program>>,
    kexpr: &CExpr,
    env: &Env,
) -> RtResult<Option<AtomicValue>> {
    match prog {
        Some(p) => vm.run(p, env).map(|v| atomize_first_val(&v)),
        None => atomize_first(cx, kexpr, env),
    }
}

/// A constant positional predicate (`$x[3]`) is a direct index: item
/// `n` (1-based) or nothing. Shared by the tree-walker's `Filter` arm
/// and the VM's `PickConst` op, so both paths are one code path.
pub(crate) fn pick_const_positional(v: &[Item], n: i64) -> Option<Item> {
    usize::try_from(n)
        .ok()
        .filter(|&n| n >= 1)
        .and_then(|n| v.get(n - 1))
        .cloned()
}

/// Evaluate an expression to a sequence.
pub fn eval(cx: &ExecCtx, e: &CExpr, env: &Env) -> RtResult<Sequence> {
    // the compile-once/execute-many fast path: subtrees the program
    // lowering covered run on the VM, everything else walks the tree
    if let Some(prog) = cx.programs.lookup(e.node_id) {
        return run_probe(cx, prog, env).map(Val::into_sequence);
    }
    match &e.kind {
        CKind::Const(v) => Ok(vec![Item::Atomic(v.clone())]),
        CKind::Var { name, slot } => env
            .get_slot(*slot)
            .map(<[Item]>::to_vec)
            .ok_or_else(|| RtError::Plan(format!("unbound variable ${name}"))),
        CKind::Seq(parts) => eval_sequence(cx, parts, env),
        CKind::Range(a, b) => {
            let lo = single_integer(cx, a, env)?;
            let hi = single_integer(cx, b, env)?;
            match (lo, hi) {
                (Some(lo), Some(hi)) if lo <= hi => Ok((lo..=hi).map(Item::int).collect()),
                _ => Ok(vec![]),
            }
        }
        CKind::Flwor { clauses, ret } => {
            let mut out = Vec::new();
            for tuple in flwor_tuples(cx, e.node_id, clauses, env) {
                let tenv = tuple?;
                out.extend(eval(cx, ret, &tenv)?);
            }
            Ok(out)
        }
        CKind::If { cond, then, els } => {
            let c = eval_operand(cx, cond, env)?;
            if effective_boolean_value(c.as_slice())? {
                eval(cx, then, env)
            } else {
                eval(cx, els, env)
            }
        }
        CKind::Quantified {
            every,
            var,
            source,
            satisfies,
        } => {
            let domain = eval(cx, source, env)?;
            let slot = cx.slot_of(var)?;
            for item in domain {
                let benv = env.bind_one(slot, item);
                let holds = effective_boolean_value(&eval(cx, satisfies, &benv)?)?;
                if *every && !holds {
                    return Ok(vec![Item::Atomic(AtomicValue::Boolean(false))]);
                }
                if !*every && holds {
                    return Ok(vec![Item::Atomic(AtomicValue::Boolean(true))]);
                }
            }
            Ok(vec![Item::Atomic(AtomicValue::Boolean(*every))])
        }
        CKind::Typeswitch {
            operand,
            cases,
            default,
        } => {
            let value = eval(cx, operand, env)?;
            for (ty, var, body) in cases {
                if ty.matches(&value) {
                    let benv = env.bind_slot(cx.slot_of(var)?, value);
                    return eval(cx, body, &benv);
                }
            }
            let benv = env.bind_slot(cx.slot_of(&default.0)?, value);
            eval(cx, &default.1, &benv)
        }
        CKind::And(a, b) => {
            let la = effective_boolean_value(&eval(cx, a, env)?)?;
            if !la {
                return Ok(vec![Item::Atomic(AtomicValue::Boolean(false))]);
            }
            let lb = effective_boolean_value(&eval(cx, b, env)?)?;
            Ok(vec![Item::Atomic(AtomicValue::Boolean(lb))])
        }
        CKind::Or(a, b) => {
            let la = effective_boolean_value(&eval(cx, a, env)?)?;
            if la {
                return Ok(vec![Item::Atomic(AtomicValue::Boolean(true))]);
            }
            let lb = effective_boolean_value(&eval(cx, b, env)?)?;
            Ok(vec![Item::Atomic(AtomicValue::Boolean(lb))])
        }
        CKind::Compare {
            op,
            general,
            lhs,
            rhs,
        } => {
            let l = eval_operand(cx, lhs, env)?;
            let r = eval_operand(cx, rhs, env)?;
            if *general {
                Ok(vec![Item::Atomic(AtomicValue::Boolean(general_compare(
                    l.as_slice(),
                    *op,
                    r.as_slice(),
                )?))])
            } else {
                Ok(match value_compare(l.as_slice(), *op, r.as_slice())? {
                    Some(b) => vec![Item::Atomic(AtomicValue::Boolean(b))],
                    None => vec![],
                })
            }
        }
        CKind::Arith { op, lhs, rhs } => {
            let l = eval_operand(cx, lhs, env)?;
            let r = eval_operand(cx, rhs, env)?;
            Ok(match arithmetic(l.as_slice(), *op, r.as_slice())? {
                Some(v) => vec![Item::Atomic(v)],
                None => vec![],
            })
        }
        CKind::Data(inner) => {
            let v = eval_operand(cx, inner, env)?;
            Ok(atomize(v.as_slice())
                .into_iter()
                .map(Item::Atomic)
                .collect())
        }
        CKind::ChildStep { input, name } => {
            let v = eval(cx, input, env)?;
            let mut out = Vec::new();
            for item in &v {
                if let Item::Node(n) = item {
                    match name {
                        Some(q) => out.extend(n.child_elements(q).cloned().map(Item::Node)),
                        None => out.extend(n.all_child_elements().cloned().map(Item::Node)),
                    }
                }
            }
            Ok(out)
        }
        CKind::AttrStep { input, name } => {
            let v = eval(cx, input, env)?;
            let mut out = Vec::new();
            for item in &v {
                if let Item::Node(n) = item {
                    match name {
                        Some(q) => {
                            if let Some(a) = n.attribute_named(q) {
                                out.push(Item::Node(a.clone()));
                            }
                        }
                        None => out.extend(n.attributes().iter().cloned().map(Item::Node)),
                    }
                }
            }
            Ok(out)
        }
        CKind::DescendantStep { input } => {
            let v = eval(cx, input, env)?;
            let mut out = Vec::new();
            for item in &v {
                if let Item::Node(n) = item {
                    descend(n, &mut out);
                }
            }
            Ok(out)
        }
        CKind::Filter {
            input,
            predicate,
            ctx_var,
            positional,
        } => {
            let v = eval(cx, input, env)?;
            // a constant positional predicate (`$x[3]`) is a direct
            // index — no per-item context binding or predicate eval;
            // same helper the VM's PickConst op lowers to
            if *positional {
                if let CKind::Const(c) = &predicate.kind {
                    if let Ok(AtomicValue::Integer(n)) = c.cast_to(AtomicType::Integer) {
                        return Ok(pick_const_positional(&v, n).into_iter().collect());
                    }
                }
            }
            let mut out = Vec::new();
            let slot = cx.slot_of(ctx_var)?;
            for (i, item) in v.iter().enumerate() {
                let benv = env.bind_one(slot, item.clone());
                let p = eval(cx, predicate, &benv)?;
                if *positional {
                    let pos = atomize(&p);
                    if let Some(v) = pos.first() {
                        if let Ok(AtomicValue::Integer(n)) = v.cast_to(AtomicType::Integer) {
                            if n == (i + 1) as i64 {
                                out.push(item.clone());
                            }
                        }
                    }
                } else if effective_boolean_value(&p)? {
                    out.push(item.clone());
                }
            }
            Ok(out)
        }
        CKind::ElementCtor {
            name,
            conditional,
            attributes,
            content,
        } => construct_element(cx, name, *conditional, attributes, content, env),
        CKind::Builtin { op, args } => eval_builtin(cx, *op, args, env),
        CKind::PhysicalCall { name, args } => {
            let mut arg_vals = Vec::with_capacity(args.len());
            for a in args {
                arg_vals.push(eval(cx, a, env)?);
            }
            call_physical(cx, name, &arg_vals, e.node_id)
        }
        CKind::UserCall { name, .. } => Err(RtError::Plan(format!(
            "call to {name} was not unfolded (recursive data-service functions are not executable)"
        ))),
        CKind::TypeMatch { input, ty } => {
            let v = eval(cx, input, env)?;
            if ty.matches(&v) {
                Ok(v)
            } else {
                Err(XdmError::TypeMatch {
                    expected: ty.to_string(),
                    actual: format!("a sequence of {} item(s)", v.len()),
                }
                .into())
            }
        }
        CKind::Cast {
            input,
            target,
            optional,
        } => {
            let v = atomize(&eval(cx, input, env)?);
            match v.as_slice() {
                [] if *optional => Ok(vec![]),
                [] => Err(XdmError::Cast {
                    value: "()".into(),
                    target: *target,
                }
                .into()),
                [one] => Ok(vec![Item::Atomic(one.cast_to(*target)?)]),
                _ => Err(XdmError::NotSingleton(v.len()).into()),
            }
        }
        CKind::Castable { input, target } => {
            let v = atomize(&eval(cx, input, env)?);
            let ok = match v.as_slice() {
                [] => true,
                [one] => one.cast_to(*target).is_ok(),
                _ => false,
            };
            Ok(vec![Item::Atomic(AtomicValue::Boolean(ok))])
        }
        CKind::InstanceOf { input, ty } => {
            let v = eval(cx, input, env)?;
            Ok(vec![Item::Atomic(AtomicValue::Boolean(ty.matches(&v)))])
        }
        CKind::Error(_) => Err(RtError::Plan(
            "the query contains compile-time errors and cannot be executed".into(),
        )),
    }
}

/// Evaluate a sequence of parts; immediate `fn-bea:async(...)` parts run
/// concurrently on scoped threads (§5.4), overlapping their latencies.
fn eval_sequence(cx: &ExecCtx, parts: &[CExpr], env: &Env) -> RtResult<Sequence> {
    let any_async = parts.iter().any(|p| {
        matches!(
            &p.kind,
            CKind::Builtin {
                op: Builtin::Async,
                ..
            }
        )
    });
    if !any_async {
        let mut out = Vec::new();
        for p in parts {
            out.extend(eval(cx, p, env)?);
        }
        return Ok(out);
    }
    let mut slots: Vec<Option<RtResult<Sequence>>> = (0..parts.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            if let CKind::Builtin {
                op: Builtin::Async,
                args,
            } = &p.kind
            {
                cx.inc(|s| &s.async_spawns);
                let arg = &args[0];
                let env = env.clone();
                let cx2 = cx.clone();
                handles.push((i, scope.spawn(move || eval(&cx2, arg, &env))));
            }
        }
        for (i, p) in parts.iter().enumerate() {
            if !matches!(
                &p.kind,
                CKind::Builtin {
                    op: Builtin::Async,
                    ..
                }
            ) {
                slots[i] = Some(eval(cx, p, env));
            }
        }
        for (i, h) in handles {
            slots[i] =
                Some(h.join().unwrap_or_else(|_| {
                    Err(RtError::Plan("async evaluation thread panicked".into()))
                }));
        }
    });
    let mut out = Vec::new();
    for s in slots {
        out.extend(s.expect("every slot filled")?);
    }
    Ok(out)
}

pub(crate) fn descend(n: &NodeRef, out: &mut Vec<Item>) {
    for c in n.children() {
        if matches!(c.kind(), NodeKind::Element { .. }) {
            out.push(Item::Node(c.clone()));
            descend(c, out);
        }
    }
}

fn single_integer(cx: &ExecCtx, e: &CExpr, env: &Env) -> RtResult<Option<i64>> {
    let v = atomize(&eval(cx, e, env)?);
    match v.as_slice() {
        [] => Ok(None),
        [one] => match one.cast_to(AtomicType::Integer)? {
            AtomicValue::Integer(i) => Ok(Some(i)),
            _ => unreachable!("cast to integer"),
        },
        _ => Err(XdmError::NotSingleton(v.len()).into()),
    }
}

// ---- element construction -----------------------------------------------------

fn construct_element(
    cx: &ExecCtx,
    name: &QName,
    conditional: bool,
    attributes: &[(QName, bool, CExpr)],
    content: &CExpr,
    env: &Env,
) -> RtResult<Sequence> {
    let mut attr_nodes: Vec<NodeRef> = Vec::new();
    for (aname, acond, value) in attributes {
        match attr_string(cx, value, env)? {
            Some(s) => attr_nodes.push(Node::attribute(aname.clone(), AtomicValue::str(&s))),
            None if *acond => {} // conditional attribute omitted (§3.1)
            None => attr_nodes.push(Node::attribute(aname.clone(), AtomicValue::str(""))),
        }
    }
    let items = eval_operand(cx, content, env)?;
    let items = items.as_slice();
    if conditional && items.is_empty() {
        // <E?> with empty content constructs nothing (§3.1)
        return Ok(vec![]);
    }
    let mut children: Vec<NodeRef> = Vec::new();
    let mut prev_atomic = false;
    for item in items {
        match item.clone() {
            Item::Atomic(v) => {
                // adjacent atomics join with a single space (XQuery
                // constructor semantics); a *single* atomic keeps its
                // type annotation so annotations survive construction —
                // and pays no string conversion until a neighbour forces
                // the join
                if prev_atomic {
                    let prev = children.pop().expect("text node just pushed");
                    let prev = match prev.kind() {
                        NodeKind::Text { value } => value.string_value(),
                        _ => unreachable!("prev_atomic marks a text node"),
                    };
                    // the merged text is untyped
                    children.push(Node::text(AtomicValue::untyped(&format!(
                        "{prev} {}",
                        v.string_value()
                    ))));
                } else {
                    children.push(Node::text(v));
                }
                prev_atomic = true;
            }
            Item::Node(n) => {
                prev_atomic = false;
                match n.kind() {
                    NodeKind::Attribute { name, value } => {
                        attr_nodes.push(Node::attribute(name.clone(), value.clone()))
                    }
                    NodeKind::Document { .. } => children.extend(n.children().iter().cloned()),
                    _ => children.push(n),
                }
            }
        }
    }
    Ok(vec![Item::Node(Node::element(
        name.clone(),
        attr_nodes,
        children,
    ))])
}

/// Evaluate an attribute-value template; `None` when every dynamic part
/// evaluated to the empty sequence and there is no literal text (the
/// `a?=` conditional-omission trigger).
fn attr_string(cx: &ExecCtx, value: &CExpr, env: &Env) -> RtResult<Option<String>> {
    let parts: Vec<&CExpr> = match &value.kind {
        CKind::Seq(parts) => parts.iter().collect(),
        _ => vec![value],
    };
    let mut s = String::new();
    let mut any = false;
    for p in parts {
        match &p.kind {
            CKind::Const(v) => {
                s.push_str(&v.string_value());
                any = true;
            }
            _ => {
                let items = atomize(&eval(cx, p, env)?);
                if !items.is_empty() {
                    any = true;
                }
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(' ');
                    }
                    s.push_str(&v.string_value());
                }
            }
        }
    }
    Ok(if any { Some(s) } else { None })
}

// ---- builtins -------------------------------------------------------------------

fn eval_builtin(cx: &ExecCtx, op: Builtin, args: &[CExpr], env: &Env) -> RtResult<Sequence> {
    use Builtin as B;
    match op {
        // a lone async (not in sequence position) evaluates inline — the
        // concurrency win comes from sibling asyncs (see eval_sequence)
        B::Async => eval(cx, &args[0], env),
        B::FailOver => match eval(cx, &args[0], env) {
            Ok(v) => Ok(v),
            Err(_) => {
                cx.inc(|s| &s.failovers_taken);
                eval(cx, &args[1], env)
            }
        },
        B::Timeout => {
            let millis = single_number(cx, &args[1], env)?.unwrap_or(0.0) as u64;
            let (tx, rx) = std::sync::mpsc::channel();
            let prim = args[0].clone();
            let env2 = env.clone();
            let cx2 = cx.clone();
            // a detached worker: if it outlives the timeout we abandon it
            // (the paper's semantics: "when the time is up, the system
            // fails over to the alternate expression")
            std::thread::spawn(move || {
                let _ = tx.send(eval(&cx2, &prim, &env2));
            });
            match rx.recv_timeout(Duration::from_millis(millis)) {
                Ok(Ok(v)) => Ok(v),
                Ok(Err(_)) | Err(_) => {
                    cx.inc(|s| &s.timeouts_fired);
                    eval(cx, &args[2], env)
                }
            }
        }
        // every other builtin is strict: evaluate the arguments, then
        // hand them to the same kernel the VM's `call` op uses, so the
        // walker and compiled programs agree by construction
        _ => {
            if args.len() <= 4 {
                let mut buf = [Val::Empty, Val::Empty, Val::Empty, Val::Empty];
                for (slot, a) in buf.iter_mut().zip(args) {
                    *slot = eval_val(cx, a, env)?;
                }
                apply_builtin(op, &buf[..args.len()]).map(Val::into_sequence)
            } else {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval_val(cx, a, env)?);
                }
                apply_builtin(op, &vals).map(Val::into_sequence)
            }
        }
    }
}

fn aggregate(op: Builtin, vals: &[AtomicValue]) -> RtResult<Sequence> {
    if vals.is_empty() {
        return Ok(vec![]);
    }
    match op {
        Builtin::Min | Builtin::Max => {
            let mut best = &vals[0];
            for v in &vals[1..] {
                let ord = v
                    .compare(best)
                    .ok_or(XdmError::Comparison(v.type_of(), best.type_of()))?;
                if (op == Builtin::Min && ord == Ordering::Less)
                    || (op == Builtin::Max && ord == Ordering::Greater)
                {
                    best = v;
                }
            }
            Ok(vec![Item::Atomic(best.clone())])
        }
        Builtin::Sum | Builtin::Avg => {
            let mut acc = AtomicValue::Integer(0);
            for v in vals {
                acc = acc.arithmetic(aldsp_xdm::value::ArithOp::Add, v)?;
            }
            if op == Builtin::Avg {
                acc = acc.arithmetic(
                    aldsp_xdm::value::ArithOp::Div,
                    &AtomicValue::Integer(vals.len() as i64),
                )?;
            }
            Ok(vec![Item::Atomic(acc)])
        }
        _ => unreachable!("aggregate() called with non-aggregate builtin"),
    }
}

/// Evaluate one builtin argument into a [`Val`], with the same cheap
/// paths [`eval_operand`] gives the walker: constants and variable
/// reads never materialise a fresh sequence.
fn eval_val(cx: &ExecCtx, e: &CExpr, env: &Env) -> RtResult<Val> {
    match &e.kind {
        CKind::Const(v) => Ok(Val::One(Item::Atomic(v.clone()))),
        CKind::Var { name, slot } => env
            .slot_value(*slot)
            .map(Val::from)
            .ok_or_else(|| RtError::Plan(format!("unbound variable ${name}"))),
        _ => eval(cx, e, env).map(Val::of),
    }
}

/// Apply a strict builtin to already-evaluated arguments.
///
/// This is the single kernel behind both the tree-walker
/// ([`eval_builtin`]) and the expression VM's `call` op, so the two
/// evaluation regimes cannot drift. Lazy builtins (`Async`, `FailOver`,
/// `Timeout`) never reach here: the walker keeps dedicated arms for
/// them and program lowering declines them.
pub(crate) fn apply_builtin(op: Builtin, args: &[Val]) -> RtResult<Val> {
    use Builtin as B;
    Ok(match op {
        B::Count => Val::One(Item::int(args[0].as_slice().len() as i64)),
        B::Sum | B::Avg | B::Min | B::Max => {
            let vals = atomize(args[0].as_slice());
            return aggregate(op, &vals).map(Val::of);
        }
        B::Exists => Val::One(Item::Atomic(AtomicValue::Boolean(
            !args[0].as_slice().is_empty(),
        ))),
        B::Empty => Val::One(Item::Atomic(AtomicValue::Boolean(
            args[0].as_slice().is_empty(),
        ))),
        B::Not => {
            let v = effective_boolean_value(args[0].as_slice())?;
            Val::One(Item::Atomic(AtomicValue::Boolean(!v)))
        }
        B::Boolean => {
            let v = effective_boolean_value(args[0].as_slice())?;
            Val::One(Item::Atomic(AtomicValue::Boolean(v)))
        }
        B::True => Val::One(Item::Atomic(AtomicValue::Boolean(true))),
        B::False => Val::One(Item::Atomic(AtomicValue::Boolean(false))),
        B::String => match args[0].as_slice() {
            [] => Val::One(Item::str("")),
            // xs:string of a string is identity: reuse the Arc payload
            [Item::Atomic(AtomicValue::String(s) | AtomicValue::Untyped(s))] => {
                Val::One(Item::Atomic(AtomicValue::String(Arc::clone(s))))
            }
            [one] => Val::One(Item::str(&one.string_value())),
            s => return Err(XdmError::NotSingleton(s.len()).into()),
        },
        B::Concat => {
            let mut s = String::new();
            for a in args {
                for item in atomize(a.as_slice()) {
                    s.push_str(&item.string_value());
                }
            }
            Val::One(Item::str(&s))
        }
        B::StringLength => {
            let v = str_arg(&args[0])?;
            Val::One(Item::int(v.chars().count() as i64))
        }
        B::UpperCase => {
            let v = str_arg(&args[0])?;
            Val::One(Item::str(&v.to_uppercase()))
        }
        B::LowerCase => {
            let v = str_arg(&args[0])?;
            Val::One(Item::str(&v.to_lowercase()))
        }
        B::Substring => {
            let sarg = str_arg(&args[0])?;
            let s: &str = &sarg;
            let start = single_number_arg(&args[1])?.unwrap_or(f64::NAN);
            let len = match args.get(2) {
                Some(a) => single_number_arg(a)?.unwrap_or(f64::NAN),
                None => f64::INFINITY,
            };
            if start.is_nan() || len.is_nan() {
                return Ok(Val::One(Item::str("")));
            }
            let n_chars = s.chars().count();
            let from = ((start.round() as i64 - 1).max(0) as usize).min(n_chars);
            let to = if len.is_infinite() {
                n_chars
            } else {
                ((start.round() + len.round() - 1.0).max(0.0) as usize).min(n_chars)
            }
            .max(from);
            // slice by byte offsets of the char range — no Vec<char>
            let mut idx = s.char_indices().map(|(i, _)| i).skip(from);
            let b0 = idx.next().unwrap_or(s.len());
            let b1 = if to > from {
                s[b0..]
                    .char_indices()
                    .nth(to - from)
                    .map(|(i, _)| b0 + i)
                    .unwrap_or(s.len())
            } else {
                b0
            };
            Val::One(Item::str(&s[b0..b1]))
        }
        B::Contains => {
            let a = str_arg(&args[0])?;
            let b = str_arg(&args[1])?;
            Val::One(Item::Atomic(AtomicValue::Boolean(a.contains(&*b))))
        }
        B::StartsWith => {
            let a = str_arg(&args[0])?;
            let b = str_arg(&args[1])?;
            Val::One(Item::Atomic(AtomicValue::Boolean(a.starts_with(&*b))))
        }
        B::Subsequence => {
            let start = single_number_arg(&args[1])?.unwrap_or(f64::NAN);
            let len = match args.get(2) {
                Some(a) => single_number_arg(a)?.unwrap_or(f64::NAN),
                None => f64::INFINITY,
            };
            if start.is_nan() || len.is_nan() {
                return Ok(Val::Empty);
            }
            let s = start.round();
            let e = s + if len.is_infinite() {
                f64::INFINITY
            } else {
                len.round()
            };
            Val::of(
                args[0]
                    .as_slice()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        let p = (*i + 1) as f64;
                        p >= s && p < e
                    })
                    .map(|(_, item)| item.clone())
                    .collect(),
            )
        }
        B::DistinctValues => {
            let vals = atomize(args[0].as_slice());
            let mut out: Vec<AtomicValue> = Vec::new();
            for v in vals {
                if !out.iter().any(|w| w.compare(&v) == Some(Ordering::Equal)) {
                    out.push(v);
                }
            }
            Val::of(out.into_iter().map(Item::Atomic).collect())
        }
        B::Abs => {
            let vals = atomize(args[0].as_slice());
            match vals.as_slice() {
                [] => Val::Empty,
                [v] => Val::One(Item::Atomic(match v {
                    AtomicValue::Integer(i) => AtomicValue::Integer(i.abs()),
                    AtomicValue::Decimal(d) => {
                        AtomicValue::Decimal(aldsp_xdm::value::Decimal(d.0.abs()))
                    }
                    AtomicValue::Double(d) => AtomicValue::Double(d.abs()),
                    other => {
                        return Err(XdmError::Arithmetic(other.type_of(), other.type_of()).into())
                    }
                })),
                _ => return Err(XdmError::NotSingleton(vals.len()).into()),
            }
        }
        B::Async | B::FailOver | B::Timeout => {
            unreachable!("lazy builtin reached the strict kernel")
        }
    })
}

/// A singleton string argument without forcing an owned `String`:
/// borrows the payload when the argument is already a string-ish atomic
/// (the common shape on the VM hot path, where a `data` op precedes the
/// call), keeps the `Arc` when a node's typed value is string-ish, and
/// only otherwise falls back to the owned conversion. An empty argument
/// reads as `""`, matching the `unwrap_or_default` the owned path used.
enum StrArg<'a> {
    Borrowed(&'a str),
    Shared(Arc<str>),
    Owned(String),
}

impl std::ops::Deref for StrArg<'_> {
    type Target = str;
    fn deref(&self) -> &str {
        match self {
            StrArg::Borrowed(s) => s,
            StrArg::Shared(s) => s,
            StrArg::Owned(s) => s,
        }
    }
}

fn str_arg(v: &Val) -> RtResult<StrArg<'_>> {
    match v.as_slice() {
        [Item::Atomic(AtomicValue::String(s) | AtomicValue::Untyped(s))] => Ok(StrArg::Borrowed(s)),
        [Item::Node(n)] => Ok(match n.typed_value() {
            Some(AtomicValue::String(s) | AtomicValue::Untyped(s)) => StrArg::Shared(s),
            Some(other) => StrArg::Owned(other.string_value()),
            None => StrArg::Borrowed(""),
        }),
        _ => Ok(match single_string_arg(v)? {
            Some(s) => StrArg::Owned(s),
            None => StrArg::Borrowed(""),
        }),
    }
}

/// Singleton string extraction from an evaluated argument (the slice
/// twin of the walker's old expression-taking helper).
fn single_string_arg(v: &Val) -> RtResult<Option<String>> {
    match v.as_slice() {
        [] => Ok(None),
        // singleton fast path: no atomized intermediate vector
        [Item::Atomic(one)] => Ok(Some(one.string_value())),
        [Item::Node(n)] => Ok(n.typed_value().map(|v| v.string_value())),
        s => {
            let v = atomize(s);
            match v.as_slice() {
                [] => Ok(None),
                [one] => Ok(Some(one.string_value())),
                _ => Err(XdmError::NotSingleton(v.len()).into()),
            }
        }
    }
}

/// Singleton numeric extraction (cast to double) from an evaluated
/// argument.
fn single_number_arg(v: &Val) -> RtResult<Option<f64>> {
    let one = match v.as_slice() {
        [] => return Ok(None),
        // singleton fast path: no atomized intermediate vector
        [Item::Atomic(a)] => a.clone(),
        [Item::Node(n)] => match n.typed_value() {
            Some(a) => a,
            None => return Ok(None),
        },
        s => {
            let all = atomize(s);
            match all.len() {
                0 => return Ok(None),
                1 => all.into_iter().next().expect("len 1"),
                n => return Err(XdmError::NotSingleton(n).into()),
            }
        }
    };
    match one.cast_to(AtomicType::Double)? {
        AtomicValue::Double(d) => Ok(Some(d)),
        _ => unreachable!("cast to double"),
    }
}

fn single_number(cx: &ExecCtx, e: &CExpr, env: &Env) -> RtResult<Option<f64>> {
    let v = eval_operand(cx, skip_data(e), env)?;
    let one = match v.as_slice() {
        [] => return Ok(None),
        // singleton fast path: no atomized intermediate vector
        [Item::Atomic(a)] => a.clone(),
        [Item::Node(n)] => match n.typed_value() {
            Some(a) => a,
            None => return Ok(None),
        },
        s => {
            let all = atomize(s);
            match all.len() {
                0 => return Ok(None),
                1 => all.into_iter().next().expect("len 1"),
                n => return Err(XdmError::NotSingleton(n).into()),
            }
        }
    };
    match one.cast_to(AtomicType::Double)? {
        AtomicValue::Double(d) => Ok(Some(d)),
        _ => unreachable!("cast to double"),
    }
}

// ---- physical calls with the function cache (§5.5) ---------------------------

fn call_physical(cx: &ExecCtx, name: &QName, args: &[Sequence], node: u32) -> RtResult<Sequence> {
    let t0 = cx.trace.as_ref().map(|_| std::time::Instant::now());
    let record = |cx: &ExecCtx, rows: u64, roundtrips: u64| {
        cx.trace_record(
            t0.map(|_| TraceKey::node(node)),
            NodeTrace {
                rows_out: rows,
                source_roundtrips: roundtrips,
                wall_ns: t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
                ..Default::default()
            },
        );
    };
    if cx.rt.cache.enabled(name) {
        if let Some(hit) = cx.rt.cache.get(name, args) {
            cx.inc(|s| &s.cache_hits);
            record(cx, hit.len() as u64, 0);
            return Ok(hit);
        }
        cx.inc(|s| &s.cache_misses);
    }
    cx.check_budget()?;
    cx.inc(|s| &s.source_calls);
    let call =
        cx.rt
            .adaptors
            .call_physical_governed(&cx.rt.metadata, name, args, cx.budget.as_deref());
    let result = match call {
        Ok(r) => r,
        Err(e) => {
            // A roundtrip interrupted by cancellation surfaces as the
            // precise deadline error, not the adaptor's wrapped message.
            cx.check_budget()?;
            return Err(e.into());
        }
    };
    cx.rt.cache.put(name, args, result.clone());
    record(cx, result.len() as u64, 1);
    Ok(result)
}

// ---- the FLWOR tuple pipeline -------------------------------------------------

/// Run a clause list as a streaming tuple pipeline rooted at `base`.
///
/// When the clause list contains two or more *independent* source scans
/// — `SqlFor` clauses with no correlation parameters and no PP-k spec,
/// whose statements therefore don't depend on any outer tuple — their
/// first executions are issued concurrently here instead of strictly
/// left-to-right, so the scans' source latencies overlap. Each scan's
/// prefetched result seeds its first execution; any re-execution for
/// later outer tuples takes the normal lazy path.
pub fn flwor_tuples<'a>(
    cx: &'a ExecCtx,
    flwor_id: u32,
    clauses: &'a [Clause],
    base: &Env,
) -> TupleIter<'a> {
    // Morsel-driven path: the compiler marked this FLWOR's leading
    // clauses as a partitionable region and the execution asked for
    // more than one worker. Tracing forces the sequential path — its
    // per-clause row/wall accounting is defined over one stream.
    if cx.workers > 1 && cx.trace.is_none() {
        if let Some(mark) = cx.parallel.mark(flwor_id) {
            return flwor_parallel(cx, flwor_id, clauses, mark, base);
        }
    }
    let mut prefetched: HashMap<usize, RtResult<ResultSet>> = HashMap::new();
    let independent: Vec<usize> = clauses
        .iter()
        .enumerate()
        .filter(|(_, c)| {
            matches!(c, Clause::SqlFor { params, ppk, .. }
                if params.is_empty() && ppk.is_none())
        })
        .map(|(i, _)| i)
        .collect();
    if independent.len() >= 2 {
        cx.inc(|s| &s.parallel_scans);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = independent
                .iter()
                .map(|&i| {
                    let Clause::SqlFor {
                        connection, select, ..
                    } = &clauses[i]
                    else {
                        unreachable!("filtered to SqlFor above")
                    };
                    s.spawn(move || exec_sql(cx, connection, select, &[]))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        });
        for (&i, res) in independent.iter().zip(results) {
            // a panicked scan thread falls back to lazy re-execution
            if let Ok(r) = res {
                // the prefetch issued this clause's first roundtrip
                cx.trace_roundtrip(cx.trace.as_ref().map(|_| TraceKey::clause(flwor_id, i)));
                prefetched.insert(i, r);
            }
        }
    }
    let mut it: TupleIter<'a> = Box::new(std::iter::once(Ok(base.clone())));
    for (i, c) in clauses.iter().enumerate() {
        it = apply_clause(cx, flwor_id, i, c, it, base.clone(), prefetched.remove(&i));
    }
    if cx.budget.is_some() {
        // Cooperative deadline check at every tuple boundary, so a
        // timed-out query stops mid-stream instead of running dry.
        it = Box::new(it.map(move |t| {
            cx.check_budget()?;
            t
        }));
    }
    it
}

// ---- morsel-driven parallel execution ---------------------------------------------
//
// The compiler marked a leading region of this FLWOR — an uncorrelated
// scan, per-tuple maps, and optionally a sorting group-by or order-by —
// as partitionable (`compiler::parallel`). The scan executes once; its
// rows split into fixed-size morsels that workers claim from a shared
// queue and push through their own copy of the map pipeline, with the
// tail operator run per partition and merged deterministically. Every
// merge reproduces what the sequential operator would have produced
// over the concatenated input, so results are byte-identical to
// single-threaded execution; clauses after the region, and the FLWOR's
// return expression, run sequentially downstream as always.

/// Run a marked FLWOR: parallel region, then the remaining clauses
/// sequentially, then the usual per-tuple budget check.
fn flwor_parallel<'a>(
    cx: &'a ExecCtx,
    flwor_id: u32,
    clauses: &'a [Clause],
    mark: ParallelMark,
    base: &Env,
) -> TupleIter<'a> {
    let mut it = parallel_region(cx, clauses, mark, base);
    for (i, c) in clauses.iter().enumerate().skip(mark.clauses) {
        it = apply_clause(cx, flwor_id, i, c, it, base.clone(), None);
    }
    if cx.budget.is_some() {
        it = Box::new(it.map(move |t| {
            cx.check_budget()?;
            t
        }));
    }
    it
}

fn parallel_region<'a>(
    cx: &'a ExecCtx,
    clauses: &'a [Clause],
    mark: ParallelMark,
    base: &Env,
) -> TupleIter<'a> {
    let Clause::SqlFor {
        connection,
        select,
        binds,
        ..
    } = &clauses[0]
    else {
        return one_err(RtError::Plan("parallel region not rooted at a scan".into()));
    };
    let bind_slots: Arc<[u32]> = match binds
        .iter()
        .map(|(v, _)| cx.slot_of(v))
        .collect::<RtResult<Vec<u32>>>()
    {
        Ok(s) => s.into(),
        Err(e) => return one_err(e),
    };
    // the uncorrelated scan executes exactly once, up front
    let rows = match exec_sql(cx, connection, select, &[]) {
        Ok(rs) => Arc::new(rs.rows),
        Err(e) => return one_err(e),
    };
    // per-tuple map clauses between the scan and the tail operator
    let maps_end = match mark.tail {
        ParTail::Map => mark.clauses,
        ParTail::Group | ParTail::Sort => mark.clauses - 1,
    };
    let maps = &clauses[1..maps_end];
    let ranges = crate::parallel::morsel_ranges(rows.len(), cx.morsel_size);
    let extra_workers = cx.workers.min(ranges.len()).saturating_sub(1);
    // one pipeline per morsel: bind the morsel's rows under the FLWOR's
    // base tuple, then apply the map clauses (each morsel owns its
    // iterators and VM state; the row buffer is shared read-only)
    let pipeline = move |range: std::ops::Range<usize>| -> TupleIter<'a> {
        let rows = Arc::clone(&rows);
        let slots = Arc::clone(&bind_slots);
        let env = base.clone();
        let mut it: TupleIter<'a> =
            Box::new(range.map(move |i| Ok(bind_row(&env, &slots, &rows[i]))));
        for c in maps {
            // morsel pipelines address no real (flwor, clause) key: no
            // trace key, and join marks never target parallel map clauses
            it = build_clause(cx, 0, 0, None, c, it, base.clone(), None);
        }
        it
    };
    if extra_workers == 0 {
        // nothing to fan out (empty scan, one morsel, or one worker):
        // run the whole region sequentially over the fetched rows
        let it = pipeline(0..ranges.last().map(|r| r.end).unwrap_or(0));
        return match mark.tail {
            ParTail::Map => it,
            ParTail::Group | ParTail::Sort => build_clause(
                cx,
                0,
                0,
                None,
                &clauses[mark.clauses - 1],
                it,
                base.clone(),
                None,
            ),
        };
    }
    match mark.tail {
        ParTail::Map => parallel_map(cx, &ranges, extra_workers, &pipeline),
        ParTail::Group => {
            let Clause::GroupBy {
                bindings,
                keys,
                carry,
                ..
            } = &clauses[mark.clauses - 1]
            else {
                return one_err(RtError::Plan(
                    "parallel group tail is not a group-by".into(),
                ));
            };
            parallel_group(
                cx,
                &ranges,
                extra_workers,
                &pipeline,
                bindings,
                keys,
                carry,
                base,
            )
        }
        ParTail::Sort => {
            let Clause::OrderBy(specs) = &clauses[mark.clauses - 1] else {
                return one_err(RtError::Plan(
                    "parallel sort tail is not an order-by".into(),
                ));
            };
            parallel_sort(cx, &ranges, extra_workers, &pipeline, specs)
        }
    }
}

/// Evaluate one closure per morsel across the worker pool (the caller
/// participates as a worker) and return the results in morsel order.
fn run_morsels<T, F>(
    cx: &ExecCtx,
    ranges: &[std::ops::Range<usize>],
    extra_workers: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    use std::sync::Mutex;
    let queue = crate::parallel::MorselQueue::new(ranges.len());
    let outs: Vec<Mutex<Option<T>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
    let work = || {
        let t0 = std::time::Instant::now();
        let mut claimed = false;
        while let Some(m) = queue.claim() {
            claimed = true;
            let r = f(ranges[m].clone());
            *outs[m].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            cx.inc(|s| &s.morsels_executed);
        }
        if claimed {
            cx.add(|s| &s.worker_busy_ns, t0.elapsed().as_nanos() as u64);
        }
    };
    cx.rt.pool.run(extra_workers, &work);
    outs.into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every morsel is claimed before the pool job completes")
        })
        .collect()
}

/// All partition results, or — when any partition failed — the earliest
/// partition's error (the first error sequential execution would have
/// hit), with every successful partition's memory charge released.
fn collect_parts<P>(
    cx: &ExecCtx,
    results: Vec<RtResult<P>>,
    charged: impl Fn(&P) -> u64,
) -> RtResult<Vec<P>> {
    let mut first_err: Option<RtError> = None;
    let mut parts = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(p) => parts.push(p),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        for p in &parts {
            cx.release_mem(charged(p));
        }
        return Err(e);
    }
    Ok(parts)
}

/// Map tail: morsel outputs concatenate in input order. Each morsel
/// stops at its own first error; the earliest erroring morsel ends the
/// merged stream exactly where the sequential pipeline's consumer
/// (which stops at the first error) would have stopped.
fn parallel_map<'a, F>(
    cx: &'a ExecCtx,
    ranges: &[std::ops::Range<usize>],
    extra_workers: usize,
    pipeline: &F,
) -> TupleIter<'a>
where
    F: Fn(std::ops::Range<usize>) -> TupleIter<'a> + Sync,
{
    let parts: Vec<Vec<RtResult<Env>>> = run_morsels(cx, ranges, extra_workers, |range| {
        if let Err(e) = cx.check_budget() {
            return vec![Err(e)];
        }
        let mut out = Vec::new();
        for t in pipeline(range) {
            let bad = t.is_err();
            out.push(t);
            if bad {
                break;
            }
        }
        out
    });
    let mut merged: Vec<RtResult<Env>> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    'outer: for part in parts {
        for t in part {
            let bad = t.is_err();
            merged.push(t);
            if bad {
                break 'outer;
            }
        }
    }
    Box::new(merged.into_iter())
}

/// Group tail: each partition groups independently ([`group_partition`],
/// the very code the sequential operator runs), partitions merge
/// pairwise by key, and the merged groups emit in key order.
#[allow(clippy::too_many_arguments)]
fn parallel_group<'a, F>(
    cx: &'a ExecCtx,
    ranges: &[std::ops::Range<usize>],
    extra_workers: usize,
    pipeline: &F,
    bindings: &'a [(String, String)],
    keys: &'a [(CExpr, String)],
    carry: &'a [(String, String)],
    base: &Env,
) -> TupleIter<'a>
where
    F: Fn(std::ops::Range<usize>) -> TupleIter<'a> + Sync,
{
    let slots = match GroupSlots::resolve(cx, bindings, keys, carry) {
        Ok(s) => s,
        Err(e) => return one_err(e),
    };
    // one *operator* ran, however many partitions it fanned out to
    cx.inc(|s| &s.sorted_groups);
    let results: Vec<RtResult<GroupedPart>> = run_morsels(cx, ranges, extra_workers, |range| {
        cx.check_budget()?;
        group_partition(cx, None, &slots, keys, pipeline(range))
    });
    let parts = match collect_parts(cx, results, |p: &GroupedPart| p.charged) {
        Ok(p) => p,
        Err(e) => return one_err(e),
    };
    let nk = keys.len();
    let merged = parts
        .into_iter()
        .reduce(|l, r| merge_grouped_parts(nk, l, r))
        .expect("at least one morsel");
    cx.peak(|s| &s.peak_grouped_tuples, merged.rows);
    emit_grouped_part(cx, &slots, merged, base)
}

/// Sort tail: each partition sorts stably ([`sort_partition`], the
/// sequential operator's code), then partitions merge with ties going
/// to the earlier partition — a global stable sort.
fn parallel_sort<'a, F>(
    cx: &'a ExecCtx,
    ranges: &[std::ops::Range<usize>],
    extra_workers: usize,
    pipeline: &F,
    specs: &'a [OrderSpec],
) -> TupleIter<'a>
where
    F: Fn(std::ops::Range<usize>) -> TupleIter<'a> + Sync,
{
    let results: Vec<RtResult<SortedPart>> = run_morsels(cx, ranges, extra_workers, |range| {
        cx.check_budget()?;
        sort_partition(cx, None, specs, pipeline(range))
    });
    let parts = match collect_parts(cx, results, |p: &SortedPart| p.charged) {
        Ok(p) => p,
        Err(e) => return one_err(e),
    };
    let merged = parts
        .into_iter()
        .reduce(|l, r| merge_sorted_parts(specs, l, r))
        .expect("at least one morsel");
    Box::new(Charged {
        cx,
        bytes: merged.charged,
        inner: Box::new(merged.rows.into_iter().map(|(_, e)| Ok(e))),
    })
}

/// Counts tuples flowing *into* a traced clause; the plain `u64` is
/// flushed to the collector once, on drop — no per-row locking.
struct CountIn<'a> {
    inner: TupleIter<'a>,
    n: u64,
    sink: Arc<TraceCollector>,
    key: TraceKey,
}

impl Iterator for CountIn<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next();
        if x.is_some() {
            self.n += 1;
        }
        x
    }
}

impl Drop for CountIn<'_> {
    fn drop(&mut self) {
        self.sink.record(
            self.key,
            NodeTrace {
                rows_in: self.n,
                ..Default::default()
            },
        );
    }
}

/// Counts tuples a traced clause emits and the wall time spent inside
/// its `next()` (inclusive of upstream pulls); flushed on drop.
struct CountOut<'a> {
    inner: TupleIter<'a>,
    n: u64,
    wall_ns: u64,
    sink: Arc<TraceCollector>,
    key: TraceKey,
}

impl Iterator for CountOut<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        let t0 = std::time::Instant::now();
        let x = self.inner.next();
        self.wall_ns += t0.elapsed().as_nanos() as u64;
        if x.is_some() {
            self.n += 1;
        }
        x
    }
}

impl Drop for CountOut<'_> {
    fn drop(&mut self) {
        self.sink.record(
            self.key,
            NodeTrace {
                rows_out: self.n,
                wall_ns: self.wall_ns,
                ..Default::default()
            },
        );
    }
}

fn apply_clause<'a>(
    cx: &'a ExecCtx,
    flwor_id: u32,
    idx: usize,
    clause: &'a Clause,
    input: TupleIter<'a>,
    flwor_base: Env,
    scan_seed: Option<RtResult<ResultSet>>,
) -> TupleIter<'a> {
    // Tracing wraps the clause between two counting iterators: rows in
    // below, rows out + wall time above. Eager operators (order by,
    // sorted group) do their work during construction, so that time is
    // measured here and credited to the clause as well.
    let tkey = cx.trace.as_ref().map(|_| TraceKey::clause(flwor_id, idx));
    let input = match (&cx.trace, tkey) {
        (Some(sink), Some(key)) => Box::new(CountIn {
            inner: input,
            n: 0,
            sink: Arc::clone(sink),
            key,
        }) as TupleIter<'a>,
        _ => input,
    };
    let t0 = tkey.map(|_| std::time::Instant::now());
    let out = build_clause(
        cx, flwor_id, idx, tkey, clause, input, flwor_base, scan_seed,
    );
    match (&cx.trace, tkey) {
        (Some(sink), Some(key)) => Box::new(CountOut {
            inner: out,
            n: 0,
            wall_ns: t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0),
            sink: Arc::clone(sink),
            key,
        }) as TupleIter<'a>,
        _ => out,
    }
}

#[allow(clippy::too_many_arguments)]
fn build_clause<'a>(
    cx: &'a ExecCtx,
    flwor_id: u32,
    idx: usize,
    tkey: Option<TraceKey>,
    clause: &'a Clause,
    input: TupleIter<'a>,
    flwor_base: Env,
    scan_seed: Option<RtResult<ResultSet>>,
) -> TupleIter<'a> {
    match clause {
        Clause::For { var, pos, source } => {
            let (var_slot, pos_slot) = match (cx.slot_of(var), pos.as_ref().map(|p| cx.slot_of(p)))
            {
                (Ok(v), Some(Ok(p))) => (v, Some(p)),
                (Ok(v), None) => (v, None),
                (Err(e), _) | (_, Some(Err(e))) => return one_err(e),
            };
            Box::new(input.flat_map(move |tuple| {
                let env = match tuple {
                    Ok(e) => e,
                    Err(e) => return one_err(e),
                };
                match eval(cx, source, &env) {
                    Ok(seq) => Box::new(seq.into_iter().enumerate().map(move |(i, item)| {
                        Ok(match pos_slot {
                            None => env.bind_one(var_slot, item),
                            Some(p) => {
                                let mut w = env.writer();
                                w.set_item(var_slot, item);
                                w.set_item(p, Item::int((i + 1) as i64));
                                w.finish()
                            }
                        })
                    })) as TupleIter<'a>,
                    Err(e) => one_err(e),
                }
            }))
        }
        Clause::Let { var, value } => {
            let slot = match cx.slot_of(var) {
                Ok(s) => s,
                Err(e) => return one_err(e),
            };
            // compiled let values run on a clause-owned VM: no probe
            // lookup per tuple, stats flushed once on drop
            match cx.programs.lookup(value.node_id) {
                Some(prog) => {
                    let prog = Arc::clone(prog);
                    let mut vm = VmState::new(cx, tkey);
                    Box::new(input.map(move |tuple| {
                        let env = tuple?;
                        let v = vm.run(&prog, &env)?;
                        Ok(env.bind_val_owned(slot, v))
                    }))
                }
                None => Box::new(input.map(move |tuple| {
                    let env = tuple?;
                    let v = eval(cx, value, &env)?;
                    Ok(env.bind_seq_owned(slot, v))
                })),
            }
        }
        Clause::Where(cond) => {
            match cx.programs.lookup(cond.node_id) {
                Some(prog) => {
                    let prog = Arc::clone(prog);
                    let mut vm = VmState::new(cx, tkey);
                    Box::new(input.filter_map(move |tuple| match tuple {
                        Err(e) => Some(Err(e)),
                        Ok(env) => match vm.run(&prog, &env).and_then(|v| {
                            effective_boolean_value(v.as_slice()).map_err(RtError::from)
                        }) {
                            Ok(true) => Some(Ok(env)),
                            Ok(false) => None,
                            Err(e) => Some(Err(e)),
                        },
                    }))
                }
                None => {
                    Box::new(input.filter_map(move |tuple| match tuple {
                        Err(e) => Some(Err(e)),
                        Ok(env) => match eval_operand(cx, cond, &env).and_then(|v| {
                            effective_boolean_value(v.as_slice()).map_err(RtError::from)
                        }) {
                            Ok(true) => Some(Ok(env)),
                            Ok(false) => None,
                            Err(e) => Some(Err(e)),
                        },
                    }))
                }
            }
        }
        Clause::OrderBy(specs) => order_by(cx, tkey, specs, input),
        Clause::GroupBy {
            bindings,
            keys,
            carry,
            pre_clustered,
        } => {
            let slots = match GroupSlots::resolve(cx, bindings, keys, carry) {
                Ok(s) => s,
                Err(e) => return one_err(e),
            };
            if *pre_clustered {
                cx.inc(|s| &s.streaming_groups);
                Box::new(StreamingGroups {
                    cx,
                    vm: VmState::new(cx, tkey),
                    input,
                    keys,
                    slots,
                    base: flwor_base,
                    current: None,
                    done: false,
                })
            } else {
                sorted_group_by(cx, tkey, &slots, keys, input, flwor_base)
            }
        }
        Clause::SqlFor {
            connection,
            select,
            params,
            binds,
            ppk,
        } => {
            let bind_slots: Vec<u32> = match binds
                .iter()
                .map(|(var, _)| cx.slot_of(var))
                .collect::<RtResult<_>>()
            {
                Ok(s) => s,
                Err(e) => return one_err(e),
            };
            match ppk {
                Some(spec) => Box::new(PpkIter {
                    cx,
                    tkey,
                    input,
                    connection,
                    select,
                    base_params: params,
                    bind_slots,
                    spec,
                    buffer: std::collections::VecDeque::new(),
                    pending: std::collections::VecDeque::new(),
                    staging_err: None,
                    tid: 0,
                    input_done: false,
                    exhausted: false,
                    key_buf: String::new(),
                    buffered_charge: 0,
                }),
                None => match cx.joins.mark(flwor_id, idx) {
                    Some(mark)
                        if matches!(mark.strategy, JoinStrategy::Hash | JoinStrategy::Merge) =>
                    {
                        Box::new(HashJoinIter::new(
                            cx, tkey, connection, mark, params, bind_slots, input,
                        ))
                    }
                    _ => sql_for_plain(
                        cx,
                        tkey,
                        connection,
                        select,
                        params,
                        bind_slots.into(),
                        input,
                        scan_seed,
                    ),
                },
            }
        }
    }
}

fn one_err<'a>(e: RtError) -> TupleIter<'a> {
    Box::new(std::iter::once(Err(e)))
}

/// Coarse deterministic per-buffered-tuple estimate used by the memory
/// budget. The point is not byte-accurate accounting but a reproducible
/// measure of how much state a blocking operator holds, so caps behave
/// identically across runs and platforms.
pub(crate) const TUPLE_MEM_BYTES: u64 = 256;

/// Streams a materialized buffer while holding its memory charge against
/// the query budget; the charge is released when the stream is dropped
/// (fully drained or abandoned early).
struct Charged<'a> {
    cx: &'a ExecCtx,
    bytes: u64,
    inner: TupleIter<'a>,
}

impl Iterator for Charged<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl Drop for Charged<'_> {
    fn drop(&mut self) {
        self.cx.release_mem(self.bytes);
    }
}

// ---- order by -------------------------------------------------------------------

/// One sorted partition: rows with their evaluated sort keys, plus the
/// buffered-tuple memory the partition holds charged against the budget
/// (released by whoever ends up owning the rows).
struct SortedPart {
    rows: Vec<(Vec<Option<AtomicValue>>, Env)>,
    charged: u64,
}

/// The full `order by` comparator over evaluated key tuples.
fn cmp_spec_keys(
    specs: &[OrderSpec],
    a: &[Option<AtomicValue>],
    b: &[Option<AtomicValue>],
) -> Ordering {
    for (i, s) in specs.iter().enumerate() {
        let mut ord = cmp_keys(&a[i], &b[i], s.empty_least);
        if s.descending {
            ord = ord.reverse();
        }
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Materialize and stably sort one partition of the input. On error the
/// partition's own charges are released before returning.
fn sort_partition(
    cx: &ExecCtx,
    tkey: Option<TraceKey>,
    specs: &[OrderSpec],
    input: TupleIter<'_>,
) -> RtResult<SortedPart> {
    // compiled sort keys run on one partition-owned VM across all rows
    let progs: Vec<Option<Arc<Program>>> = specs.iter().map(|s| key_prog(cx, &s.expr)).collect();
    let mut vm = VmState::new(cx, tkey);
    let mut rows: Vec<(Vec<Option<AtomicValue>>, Env)> = Vec::new();
    let mut charged = 0u64;
    let fail = |cx: &ExecCtx, charged: u64, e: RtError| {
        cx.release_mem(charged);
        Err(e)
    };
    for tuple in input {
        let env = match tuple {
            Ok(e) => e,
            Err(e) => return fail(cx, charged, e),
        };
        // the sort buffer is blocking state: charge it against the budget
        if let Err(e) = cx.charge_mem(cx.tuple_mem) {
            return fail(cx, charged, e);
        }
        charged += cx.tuple_mem;
        let mut key = Vec::with_capacity(specs.len());
        for (s, prog) in specs.iter().zip(&progs) {
            match key_first(cx, &mut vm, prog, &s.expr, &env) {
                Ok(k) => key.push(k),
                Err(e) => return fail(cx, charged, e),
            }
        }
        rows.push((key, env));
    }
    rows.sort_by(|(a, _), (b, _)| cmp_spec_keys(specs, a, b));
    Ok(SortedPart { rows, charged })
}

/// Merge two sorted partitions where `left` holds the earlier input
/// rows: ties go left, which is exactly what one stable sort over the
/// concatenated input would have produced.
fn merge_sorted_parts(specs: &[OrderSpec], left: SortedPart, right: SortedPart) -> SortedPart {
    let mut rows = Vec::with_capacity(left.rows.len() + right.rows.len());
    let mut li = left.rows.into_iter().peekable();
    let mut ri = right.rows.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some((lk, _)), Some((rk, _))) => {
                if cmp_spec_keys(specs, lk, rk) == Ordering::Greater {
                    rows.push(ri.next().expect("peeked"));
                } else {
                    rows.push(li.next().expect("peeked"));
                }
            }
            (Some(_), None) => rows.push(li.next().expect("peeked")),
            (None, Some(_)) => rows.push(ri.next().expect("peeked")),
            (None, None) => break,
        }
    }
    SortedPart {
        rows,
        charged: left.charged + right.charged,
    }
}

fn order_by<'a>(
    cx: &'a ExecCtx,
    tkey: Option<TraceKey>,
    specs: &'a [OrderSpec],
    input: TupleIter<'a>,
) -> TupleIter<'a> {
    match sort_partition(cx, tkey, specs, input) {
        Ok(part) => Box::new(Charged {
            cx,
            bytes: part.charged,
            inner: Box::new(part.rows.into_iter().map(|(_, e)| Ok(e))),
        }),
        Err(e) => one_err(e),
    }
}

fn cmp_keys(a: &Option<AtomicValue>, b: &Option<AtomicValue>, empty_least: bool) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => {
            if empty_least {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (Some(_), None) => {
            if empty_least {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (Some(x), Some(y)) => x.compare(y).unwrap_or(Ordering::Equal),
    }
}

// ---- the group operator (§5.2) ---------------------------------------------------

/// Frame slots a group operator touches, resolved once per pipeline so
/// the per-tuple work is all indexed loads/stores.
struct GroupSlots {
    /// Key alias slots, parallel to the key expressions.
    aliases: Vec<u32>,
    /// (source slot, destination slot) per regrouped binding.
    bind_from: Vec<u32>,
    bind_to: Vec<u32>,
    /// (source slot, destination slot) per carried binding.
    carry_from: Vec<u32>,
    carry_to: Vec<u32>,
    /// Compiled programs behind the key expressions (parallel to
    /// `aliases`); `None` falls back to the tree-walker per key.
    key_progs: Vec<Option<Arc<Program>>>,
}

impl GroupSlots {
    fn resolve(
        cx: &ExecCtx,
        bindings: &[(String, String)],
        keys: &[(CExpr, String)],
        carry: &[(String, String)],
    ) -> RtResult<GroupSlots> {
        let slot = |n: &String| cx.slot_of(n);
        Ok(GroupSlots {
            aliases: keys.iter().map(|(_, a)| slot(a)).collect::<RtResult<_>>()?,
            bind_from: bindings
                .iter()
                .map(|(f, _)| slot(f))
                .collect::<RtResult<_>>()?,
            bind_to: bindings
                .iter()
                .map(|(_, t)| slot(t))
                .collect::<RtResult<_>>()?,
            carry_from: carry
                .iter()
                .map(|(f, _)| slot(f))
                .collect::<RtResult<_>>()?,
            carry_to: carry
                .iter()
                .map(|(_, t)| slot(t))
                .collect::<RtResult<_>>()?,
            key_progs: keys.iter().map(|(k, _)| key_prog(cx, k)).collect(),
        })
    }
}

/// The streaming group operator: "relies on input that is pre-clustered
/// with respect to the grouping expressions. Its job is thus to simply
/// form groups while watching for the grouping expressions to change."
/// Memory is bounded by the largest single group.
struct StreamingGroups<'a> {
    cx: &'a ExecCtx,
    vm: VmState<'a>,
    input: TupleIter<'a>,
    keys: &'a [(CExpr, String)],
    slots: GroupSlots,
    base: Env,
    current: Option<GroupAccum>,
    done: bool,
}

/// One in-progress group: key values, per-binding accumulators, carried
/// first-tuple values, and size (for the memory high-water mark).
struct GroupAccum {
    key: Vec<Option<AtomicValue>>,
    accums: Vec<Sequence>,
    carried: Vec<Sequence>,
    size: u64,
}

impl StreamingGroups<'_> {
    fn emit(&mut self, g: GroupAccum) -> Env {
        let mut w = self.base.writer();
        for (&slot, k) in self.slots.aliases.iter().zip(&g.key) {
            w.set(
                slot,
                k.clone().map(|v| vec![Item::Atomic(v)]).unwrap_or_default(),
            );
        }
        for (&slot, acc) in self.slots.bind_to.iter().zip(g.accums) {
            w.set(slot, acc);
        }
        for (&slot, v) in self.slots.carry_to.iter().zip(g.carried) {
            w.set(slot, v);
        }
        w.finish()
    }
}

impl Iterator for StreamingGroups<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.input.next() {
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Some(Ok(env)) => {
                    // evaluate the grouping keys on this tuple
                    let mut key = Vec::with_capacity(self.keys.len());
                    for ((kexpr, _), prog) in self.keys.iter().zip(&self.slots.key_progs) {
                        match key_first(self.cx, &mut self.vm, prog, kexpr, &env) {
                            Ok(k) => key.push(k),
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    let values: Vec<Sequence> = self
                        .slots
                        .bind_from
                        .iter()
                        .map(|&from| env.get_slot(from).map(<[Item]>::to_vec).unwrap_or_default())
                        .collect();
                    let carried: Vec<Sequence> = self
                        .slots
                        .carry_from
                        .iter()
                        .map(|&from| env.get_slot(from).map(<[Item]>::to_vec).unwrap_or_default())
                        .collect();
                    // every accumulated tuple is blocking state: charge it
                    if let Err(e) = self.cx.charge_mem(self.cx.tuple_mem) {
                        self.done = true;
                        return Some(Err(e));
                    }
                    match &mut self.current {
                        Some(g)
                            if g.key.len() == key.len()
                                && g.key
                                    .iter()
                                    .zip(&key)
                                    .all(|(a, b)| cmp_keys(a, b, true) == Ordering::Equal) =>
                        {
                            for (acc, v) in g.accums.iter_mut().zip(values) {
                                acc.extend(v);
                            }
                            g.size += 1;
                            self.cx.peak(|s| &s.peak_grouped_tuples, g.size);
                        }
                        Some(_) => {
                            // group boundary: emit the finished group and
                            // return its buffered-tuple charge
                            let g = self.current.take().expect("matched Some");
                            self.current = Some(GroupAccum {
                                key,
                                accums: values,
                                carried,
                                size: 1,
                            });
                            let released = g.size * self.cx.tuple_mem;
                            let env = self.emit(g);
                            self.cx.release_mem(released);
                            return Some(Ok(env));
                        }
                        None => {
                            self.cx.peak(|s| &s.peak_grouped_tuples, 1);
                            self.current = Some(GroupAccum {
                                key,
                                accums: values,
                                carried,
                                size: 1,
                            });
                        }
                    }
                }
                None => {
                    self.done = true;
                    let last = self.current.take();
                    return last.map(|g| {
                        let released = g.size * self.cx.tuple_mem;
                        let env = self.emit(g);
                        self.cx.release_mem(released);
                        Ok(env)
                    });
                }
            }
        }
    }
}

impl Drop for StreamingGroups<'_> {
    fn drop(&mut self) {
        // return the in-progress group's charge when the stream is
        // abandoned before the group was emitted
        if let Some(g) = self.current.take() {
            self.cx.release_mem(g.size * self.cx.tuple_mem);
        }
    }
}

/// The fallback: materialize, sort by the keys, then stream-group —
/// "in the worst case, ALDSP falls back on sorting for grouping" (§4.2).
/// One grouped partition, ready to emit or merge: the kept first-row
/// key cells (`nk` per group), the groups in **key-sorted order** with
/// their accumulators and carried first-row values, the input row count
/// (for the memory high-water mark), and the buffered-tuple charge the
/// partition holds.
struct GroupedPart {
    flat_keys: Vec<Option<AtomicValue>>,
    /// `(index into flat_keys rows, group)`, sorted by key.
    entries: Vec<(u32, SortedGroupAcc)>,
    rows: u64,
    charged: u64,
}

/// Per-group accumulated state for the sorting group operator.
struct SortedGroupAcc {
    accums: Vec<Sequence>,
    carried: Vec<Sequence>,
}

/// Compare two groups' key rows across (possibly different) partitions.
fn cmp_group_keys(
    nk: usize,
    a_keys: &[Option<AtomicValue>],
    a: usize,
    b_keys: &[Option<AtomicValue>],
    b: usize,
) -> Ordering {
    for (x, y) in a_keys[a * nk..(a + 1) * nk]
        .iter()
        .zip(&b_keys[b * nk..(b + 1) * nk])
    {
        let ord = cmp_keys(x, y, true);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Merge two grouped partitions where `left` holds the earlier input
/// rows. Equal keys combine into one group: accumulators concatenate
/// left-then-right (partitions are contiguous input ranges, so that is
/// input order), and the kept key cells and carried values come from
/// the left — the group's overall first row. The result is exactly the
/// partition [`group_partition`] would have built over the concatenated
/// input.
fn merge_grouped_parts(nk: usize, left: GroupedPart, right: GroupedPart) -> GroupedPart {
    let mut flat_keys: Vec<Option<AtomicValue>> = Vec::new();
    let mut entries: Vec<(u32, SortedGroupAcc)> = Vec::new();
    let mut li = left.entries.into_iter().peekable();
    let mut ri = right.entries.into_iter().peekable();
    let push = |flat_keys: &mut Vec<Option<AtomicValue>>,
                entries: &mut Vec<(u32, SortedGroupAcc)>,
                src: &[Option<AtomicValue>],
                first: u32,
                acc: SortedGroupAcc| {
        let row = (flat_keys.len() / nk.max(1)) as u32;
        flat_keys.extend_from_slice(&src[first as usize * nk..(first as usize + 1) * nk]);
        entries.push((row, acc));
    };
    loop {
        let ord = match (li.peek(), ri.peek()) {
            (Some(&(lf, _)), Some(&(rf, _))) => cmp_group_keys(
                nk,
                &left.flat_keys,
                lf as usize,
                &right.flat_keys,
                rf as usize,
            ),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => break,
        };
        match ord {
            Ordering::Less => {
                let (f, acc) = li.next().expect("peeked");
                push(&mut flat_keys, &mut entries, &left.flat_keys, f, acc);
            }
            Ordering::Greater => {
                let (f, acc) = ri.next().expect("peeked");
                push(&mut flat_keys, &mut entries, &right.flat_keys, f, acc);
            }
            Ordering::Equal => {
                let (lf, mut lacc) = li.next().expect("peeked");
                let (_, racc) = ri.next().expect("peeked");
                for (a, r) in lacc.accums.iter_mut().zip(racc.accums) {
                    a.extend(r);
                }
                push(&mut flat_keys, &mut entries, &left.flat_keys, lf, lacc);
            }
        }
    }
    GroupedPart {
        flat_keys,
        entries,
        rows: left.rows + right.rows,
        charged: left.charged + right.charged,
    }
}

/// Emit a grouped partition's groups in key order over `base`, holding
/// its memory charge until the stream is dropped.
fn emit_grouped_part<'a>(
    cx: &'a ExecCtx,
    slots: &GroupSlots,
    part: GroupedPart,
    base: &Env,
) -> TupleIter<'a> {
    let nk = slots.aliases.len();
    let mut out: Vec<Env> = Vec::with_capacity(part.entries.len());
    for (first, acc) in part.entries {
        let mut w = base.writer();
        for (&slot, k) in slots
            .aliases
            .iter()
            .zip(&part.flat_keys[first as usize * nk..(first as usize + 1) * nk])
        {
            w.set(
                slot,
                k.clone().map(|v| vec![Item::Atomic(v)]).unwrap_or_default(),
            );
        }
        for (&slot, a) in slots.bind_to.iter().zip(acc.accums) {
            w.set(slot, a);
        }
        for (&slot, v) in slots.carry_to.iter().zip(acc.carried) {
            w.set(slot, v);
        }
        out.push(w.finish());
    }
    Box::new(Charged {
        cx,
        bytes: part.charged,
        inner: Box::new(out.into_iter().map(Ok)),
    })
}

fn sorted_group_by<'a>(
    cx: &'a ExecCtx,
    tkey: Option<TraceKey>,
    slots: &GroupSlots,
    keys: &'a [(CExpr, String)],
    input: TupleIter<'a>,
    base: Env,
) -> TupleIter<'a> {
    cx.inc(|s| &s.sorted_groups);
    let part = match group_partition(cx, tkey, slots, keys, input) {
        Ok(p) => p,
        Err(e) => return one_err(e),
    };
    cx.peak(|s| &s.peak_grouped_tuples, part.rows);
    emit_grouped_part(cx, slots, part, &base)
}

/// Group one partition of the input into a [`GroupedPart`]. On error
/// the partition's own charges are released before returning.
fn group_partition(
    cx: &ExecCtx,
    tkey: Option<TraceKey>,
    slots: &GroupSlots,
    keys: &[(CExpr, String)],
    input: TupleIter<'_>,
) -> RtResult<GroupedPart> {
    let mut vm = VmState::new(cx, tkey);
    // Incremental grouping instead of buffer-sort-scan: each row's key
    // is compared against the previous row's key first (clustered
    // inputs — the common shape from an ordered scan — group in O(1)
    // per row), and only a key *change* binary-searches the sorted
    // unique-key list. The row's grouped and carried slot values are
    // folded into per-group accumulators immediately, so the tuple env
    // (and the node tree it pins) drops while still cache-hot — live
    // state is O(groups + keys), not O(rows). Equal keys land in one
    // group and groups emit in key order, so the output is exactly
    // what sort-then-scan produced.
    let nk = keys.len();
    // group keys, `nk` cells per *group first-row*, kept for comparison
    let mut flat_keys: Vec<Option<AtomicValue>> = Vec::new();
    let mut groups: Vec<SortedGroupAcc> = Vec::new();
    // gid → index into flat_keys of that group's kept key cells
    let mut group_first: Vec<u32> = Vec::new();
    // (index into flat_keys of the group's key, group id), key-sorted
    let mut uniq: Vec<(u32, u32)> = Vec::new();
    let mut prev_gid: Option<u32> = None;
    let mut rows = 0u64;
    let mut charged = 0u64;
    let fail = |cx: &ExecCtx, charged: u64, e: RtError| {
        cx.release_mem(charged);
        Err(e)
    };
    let cmp_key_rows =
        |fk: &[Option<AtomicValue>], a: usize, b: usize| cmp_group_keys(nk, fk, a, fk, b);
    for tuple in input {
        let env = match tuple {
            Ok(e) => e,
            Err(e) => return fail(cx, charged, e),
        };
        // grouped accumulators are blocking state: charge per input row
        if let Err(e) = cx.charge_mem(cx.tuple_mem) {
            return fail(cx, charged, e);
        }
        charged += cx.tuple_mem;
        rows += 1;
        // stage this row's key after the kept group keys…
        let staged = flat_keys.len() / nk;
        for ((kexpr, _), prog) in keys.iter().zip(&slots.key_progs) {
            match key_first(cx, &mut vm, prog, kexpr, &env) {
                Ok(k) => flat_keys.push(k),
                Err(e) => return fail(cx, charged, e),
            }
        }
        let gid = match prev_gid {
            Some(g)
                if cmp_key_rows(&flat_keys, staged, group_first[g as usize] as usize)
                    == Ordering::Equal =>
            {
                g
            }
            _ => {
                match uniq.binary_search_by(|&(first, _)| {
                    cmp_key_rows(&flat_keys, first as usize, staged)
                }) {
                    Ok(pos) => uniq[pos].1,
                    Err(pos) => {
                        // …a new key keeps its staged cells and becomes
                        // a group, capturing the carried slots from
                        // this (its first) row
                        let g = groups.len() as u32;
                        groups.push(SortedGroupAcc {
                            accums: vec![Vec::new(); slots.bind_from.len()],
                            carried: slots
                                .carry_from
                                .iter()
                                .map(|&from| {
                                    env.get_slot(from).map(<[Item]>::to_vec).unwrap_or_default()
                                })
                                .collect(),
                        });
                        group_first.push(staged as u32);
                        uniq.insert(pos, (staged as u32, g));
                        g
                    }
                }
            }
        };
        // …a seen key discards its staged cells
        if group_first[gid as usize] as usize != staged {
            flat_keys.truncate(staged * nk);
        }
        let acc = &mut groups[gid as usize];
        for (&from, acc) in slots.bind_from.iter().zip(acc.accums.iter_mut()) {
            if let Some(v) = env.get_slot(from) {
                acc.extend_from_slice(v);
            }
        }
        prev_gid = Some(gid);
    }
    // hand the groups over in key order (what `uniq` maintained)
    let entries: Vec<(u32, SortedGroupAcc)> = uniq
        .into_iter()
        .map(|(first, gid)| {
            let acc = std::mem::replace(
                &mut groups[gid as usize],
                SortedGroupAcc {
                    accums: Vec::new(),
                    carried: Vec::new(),
                },
            );
            (first, acc)
        })
        .collect();
    Ok(GroupedPart {
        flat_keys,
        entries,
        rows,
        charged,
    })
}

// ---- SQL clauses ------------------------------------------------------------------

fn eval_sql_params(cx: &ExecCtx, params: &[CExpr], env: &Env) -> RtResult<Vec<SqlValue>> {
    let mut out = Vec::with_capacity(params.len());
    for p in params {
        let v = atomize(&eval(cx, p, env)?);
        let first = v.first();
        let ty = first
            .and_then(|f| SqlType::from_xml_type(f.type_of()))
            .unwrap_or(SqlType::Varchar);
        out.push(SqlValue::from_xml(first, ty).map_err(RtError::Plan)?);
    }
    Ok(out)
}

fn exec_sql(
    cx: &ExecCtx,
    connection: &str,
    select: &Select,
    params: &[SqlValue],
) -> RtResult<ResultSet> {
    // budget check before every roundtrip: a timed-out query (including
    // its PP-k prefetch threads, which share the budget through their
    // cloned context) stops issuing statements
    cx.check_budget()?;
    cx.inc(|s| &s.sql_statements);
    let r = cx
        .rt
        .adaptors
        .execute_sql_governed(connection, select, params, cx.budget.as_deref());
    match r {
        Ok(rs) => Ok(rs),
        Err(e) => {
            // a roundtrip interrupted by cancellation surfaces as the
            // precise deadline error, not the adaptor's wrapped message
            cx.check_budget()?;
            Err(e.into())
        }
    }
}

fn bind_row(env: &Env, slots: &[u32], row: &[SqlValue]) -> Env {
    // zip semantics: bind only the columns both sides have
    let n = slots.len().min(row.len());
    env.bind_indexed(&slots[..n], |k| row[k].to_xml().map(Item::Atomic))
}

/// A `SqlFor` without PP-k: uncorrelated statements execute once;
/// correlated ones execute per outer tuple (block size 1).
#[allow(clippy::too_many_arguments)]
fn sql_for_plain<'a>(
    cx: &'a ExecCtx,
    tkey: Option<TraceKey>,
    connection: &'a str,
    select: &'a Select,
    params: &'a [CExpr],
    bind_slots: Arc<[u32]>,
    input: TupleIter<'a>,
    mut scan_seed: Option<RtResult<ResultSet>>,
) -> TupleIter<'a> {
    Box::new(input.flat_map(move |tuple| {
        let env = match tuple {
            Ok(e) => e,
            Err(e) => return one_err(e),
        };
        let slots = Arc::clone(&bind_slots);
        // an independent scan prefetched by flwor_tuples seeds the
        // first execution (statement + roundtrip already counted there)
        if let Some(pre) = scan_seed.take() {
            return match pre {
                Ok(rs) => Box::new(
                    rs.rows
                        .into_iter()
                        .map(move |row| Ok(bind_row(&env, &slots, &row))),
                ) as TupleIter<'a>,
                Err(e) => one_err(e),
            };
        }
        let param_vals = match eval_sql_params(cx, params, &env) {
            Ok(v) => v,
            Err(e) => return one_err(e),
        };
        cx.trace_roundtrip(tkey);
        match exec_sql(cx, connection, select, &param_vals) {
            Ok(rs) => Box::new(
                rs.rows
                    .into_iter()
                    .map(move |row| Ok(bind_row(&env, &slots, &row))),
            ) as TupleIter<'a>,
            Err(e) => one_err(e),
        }
    }))
}

// ---- middleware hash / merge join (cost-based join planning) ----------------------

/// A correlated `SqlFor` the join planner marked for middleware
/// execution: instead of one parameterized roundtrip per outer tuple
/// (the nested-loop probe of [`sql_for_plain`]), fetch the decorrelated
/// bulk statement **once**, build an equality index over it in the
/// middleware, and probe locally.
///
/// Output order is exactly the nested-loop order — per outer tuple, in
/// the bulk statement's scan order — so every strategy is byte-identical
/// to the naive plan. Three physical shapes:
///
/// * build-inner hash (default): hash all bulk rows by join key, probe
///   per outer tuple;
/// * build-outer hash (`mark.build_outer`, the planner's cardinality
///   reorder): buffer the estimated-smaller *outer* side instead, stream
///   the bulk scan against it keeping only matching rows, then emit
///   outer-major;
/// * sort-merge (forced via [`JoinStrategy::Merge`]): stable-sort the
///   bulk rows by key and binary-search each probe — same output, a
///   comparison-based local method for the differential harness.
///
/// Every buffered row — bulk rows, and buffered outers under reorder —
/// is charged to the query's memory budget and released on drop, so a
/// tight [`QueryBudget`] surfaces the build's footprint as a typed
/// `BudgetExceeded` error.
struct HashJoinIter<'a> {
    cx: &'a ExecCtx,
    tkey: Option<TraceKey>,
    connection: &'a str,
    mark: &'a JoinMark,
    params: &'a [CExpr],
    bind_slots: Vec<u32>,
    input: TupleIter<'a>,
    built: bool,
    /// Terminal failure already emitted: stop producing.
    failed: bool,
    /// Buffered rows (all bulk rows when building inner; matched bulk
    /// rows only when building outer).
    rows: Vec<Vec<SqlValue>>,
    /// Hash: key literal → `rows` indices in scan order.
    lookup: HashMap<String, Vec<usize>>,
    /// Merge: `(key literal, rows index)` stably sorted.
    sorted: Vec<(String, usize)>,
    /// Staged output (whole result under build-outer; the current outer
    /// tuple's matches otherwise).
    pending: std::collections::VecDeque<RtResult<Env>>,
    charged: u64,
    key_buf: String,
}

impl<'a> HashJoinIter<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        cx: &'a ExecCtx,
        tkey: Option<TraceKey>,
        connection: &'a str,
        mark: &'a JoinMark,
        params: &'a [CExpr],
        bind_slots: Vec<u32>,
        input: TupleIter<'a>,
    ) -> HashJoinIter<'a> {
        HashJoinIter {
            cx,
            tkey,
            connection,
            mark,
            params,
            bind_slots,
            input,
            built: false,
            failed: false,
            rows: Vec::new(),
            lookup: HashMap::new(),
            sorted: Vec::new(),
            pending: std::collections::VecDeque::new(),
            charged: 0,
            key_buf: String::new(),
        }
    }

    /// Charge one buffered row against the memory budget.
    fn charge_row(&mut self) -> RtResult<()> {
        self.cx.charge_mem(self.cx.tuple_mem)?;
        self.charged += self.cx.tuple_mem;
        Ok(())
    }

    /// The probe key for one outer tuple: `None` when the param is SQL
    /// NULL (which never equi-joins).
    fn probe_key(&mut self, env: &Env) -> RtResult<Option<String>> {
        let vals = eval_sql_params(self.cx, self.params, env)?;
        if vals.iter().any(|v| matches!(v, SqlValue::Null)) {
            return Ok(None);
        }
        self.key_buf.clear();
        values_key_into(&mut self.key_buf, &vals);
        Ok(Some(self.key_buf.clone()))
    }

    /// Fetch the decorrelated bulk statement (one roundtrip).
    fn fetch_bulk(&mut self) -> RtResult<ResultSet> {
        self.cx.trace_roundtrip(self.tkey);
        exec_sql(self.cx, self.connection, &self.mark.bulk, &[])
    }

    /// The key literal of one bulk row; `None` for NULL keys, which can
    /// never match and are left out of the index.
    fn row_key(buf: &mut String, row: &[SqlValue], k: usize) -> Option<String> {
        let v = row.get(k)?;
        if matches!(v, SqlValue::Null) {
            return None;
        }
        buf.clear();
        values_key_into(buf, std::slice::from_ref(v));
        Some(buf.clone())
    }

    /// Build-inner (and merge): fetch all bulk rows up front and index
    /// them by key; probing streams the outer side.
    fn build_inner(&mut self) -> RtResult<()> {
        let merge = self.mark.strategy == JoinStrategy::Merge;
        if !merge {
            self.cx.inc(|s| &s.hash_joins);
        }
        let rs = self.fetch_bulk()?;
        let k = self.mark.key_row_index;
        for row in rs.rows {
            self.charge_row()?;
            let i = self.rows.len();
            if let Some(key) = Self::row_key(&mut self.key_buf, &row, k) {
                if merge {
                    self.sorted.push((key, i));
                } else {
                    self.lookup.entry(key).or_default().push(i);
                }
            }
            self.rows.push(row);
        }
        if merge {
            // stable by construction: ties keep ascending scan order
            self.sorted.sort();
        }
        let n = self.rows.len() as u64;
        self.cx.add(|s| &s.join_build_rows, n);
        self.cx.trace_record(
            self.tkey,
            NodeTrace {
                join_build_rows: n,
                ..Default::default()
            },
        );
        Ok(())
    }

    /// Build-outer (the planner's reorder): buffer the outer side and
    /// its probe keys, stream the bulk scan keeping only matching rows,
    /// then stage the whole outer-major output.
    fn build_outer(&mut self) -> RtResult<()> {
        self.cx.inc(|s| &s.hash_joins);
        self.cx.inc(|s| &s.join_reorders);
        // 1. drain + hash the outer side (errors keep their stream slot)
        let mut outers: Vec<RtResult<(Env, Option<String>)>> = Vec::new();
        while let Some(tuple) = self.input.next() {
            self.charge_row()?;
            outers.push(tuple.and_then(|env| {
                let key = self.probe_key(&env)?;
                Ok((env, key))
            }));
            if let Ok((_, Some(key))) = outers.last().expect("just pushed") {
                self.lookup
                    .entry(key.clone())
                    .or_default()
                    .push(outers.len() - 1);
            }
        }
        let n = outers.len() as u64;
        self.cx.add(|s| &s.join_build_rows, n);
        self.cx.trace_record(
            self.tkey,
            NodeTrace {
                join_build_rows: n,
                ..Default::default()
            },
        );
        // 2. stream the bulk scan, keeping matching rows only
        let rs = self.fetch_bulk()?;
        let k = self.mark.key_row_index;
        let mut matches: Vec<Vec<usize>> = vec![Vec::new(); outers.len()];
        for row in rs.rows {
            let Some(key) = Self::row_key(&mut self.key_buf, &row, k) else {
                continue;
            };
            if !self.lookup.contains_key(&key) {
                continue;
            }
            self.charge_row()?;
            let ri = self.rows.len();
            self.rows.push(row);
            for &oi in &self.lookup[&key] {
                matches[oi].push(ri);
            }
        }
        // 3. stage nested-loop order: per outer, bulk scan order
        for (oi, entry) in outers.into_iter().enumerate() {
            match entry {
                Err(e) => self.pending.push_back(Err(e)),
                Ok((_, None)) => {}
                Ok((env, Some(_))) => {
                    for &ri in &matches[oi] {
                        self.pending.push_back(Ok(bind_row(
                            &env,
                            &self.bind_slots,
                            &self.rows[ri],
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Iterator for HashJoinIter<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        if !self.built {
            self.built = true;
            let r = if self.mark.build_outer {
                self.build_outer()
            } else {
                self.build_inner()
            };
            if let Err(e) = r {
                self.failed = true;
                return Some(Err(e));
            }
        }
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Some(out);
            }
            if self.failed || self.mark.build_outer {
                return None;
            }
            // probe phase: one outer tuple at a time
            let env = match self.input.next()? {
                Ok(env) => env,
                Err(e) => return Some(Err(e)),
            };
            let key = match self.probe_key(&env) {
                Ok(Some(k)) => k,
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            };
            if self.mark.strategy == JoinStrategy::Merge {
                let start = self
                    .sorted
                    .partition_point(|(k, _)| k.as_str() < key.as_str());
                for (_, ri) in self.sorted[start..].iter().take_while(|(k, _)| *k == key) {
                    self.pending
                        .push_back(Ok(bind_row(&env, &self.bind_slots, &self.rows[*ri])));
                }
            } else if let Some(idxs) = self.lookup.get(&key) {
                for &ri in idxs {
                    self.pending
                        .push_back(Ok(bind_row(&env, &self.bind_slots, &self.rows[ri])));
                }
            }
        }
    }
}

impl Drop for HashJoinIter<'_> {
    fn drop(&mut self) {
        self.cx.release_mem(self.charged);
    }
}

// ---- the PP-k distributed join (§4.2, §5.2) ---------------------------------------

/// PP-k: pull up to `k` outer tuples, fetch all joining inner rows with
/// one disjunctive parameterized query, join locally (nested loop or
/// index nested loop), repeat. "This method provides an excellent
/// tradeoff between the required middleware join memory footprint …
/// and the latency imposed by roundtrips to the source" — the
/// `ppk_sweep` bench measures exactly that.
struct PpkIter<'a> {
    cx: &'a ExecCtx,
    /// This clause's trace key, when tracing is on.
    tkey: Option<TraceKey>,
    input: TupleIter<'a>,
    connection: &'a str,
    select: &'a Select,
    base_params: &'a [CExpr],
    /// Frame slots of the bound result columns (last is the tuple id
    /// when `spec.outer_join` is set).
    bind_slots: Vec<u32>,
    spec: &'a PpkSpec,
    buffer: std::collections::VecDeque<RtResult<Env>>,
    /// Blocks whose fetch has been issued but not yet joined, oldest
    /// first; never longer than `spec.prefetch_depth.max(1)`.
    pending: std::collections::VecDeque<PendingBlock>,
    /// An error hit while staging a later block. It is emitted only
    /// after every earlier pending block has drained, so the output
    /// stream is identical to the synchronous (depth 0) execution.
    staging_err: Option<RtError>,
    tid: u64,
    input_done: bool,
    exhausted: bool,
    /// Scratch for local-join key building (reused across rows/blocks).
    key_buf: String,
    /// Bytes currently charged against the budget for `buffer` contents
    /// (the materialized array-tuples of the block join, §4.2).
    buffered_charge: u64,
}

/// One block of outer tuples with their evaluated key values.
type OuterBlock = Vec<(Env, Vec<Option<AtomicValue>>)>;

/// A staged block awaiting its local join.
struct PendingBlock {
    block: OuterBlock,
    fetch: BlockFetch,
}

enum BlockFetch {
    /// Rows already in hand (nothing was fetchable, or prefetch is off).
    Ready(Vec<Vec<SqlValue>>),
    /// A parameterized block fetch running on a background thread.
    InFlight(std::thread::JoinHandle<RtResult<ResultSet>>),
}

impl PpkIter<'_> {
    /// Abort the block join: emit `e` after already-buffered tuples and
    /// stop staging further fetches.
    fn fail_buffer(&mut self, e: RtError) {
        self.buffer.push_back(Err(e));
        self.pending.clear();
        self.staging_err = None;
        self.exhausted = true;
    }

    /// Pull up to `k` outer tuples and evaluate their key expressions.
    /// `None` means the input is done — either exhausted or errored (the
    /// error lands in `staging_err` and the partial block is dropped).
    fn read_block(&mut self) -> Option<OuterBlock> {
        // per-tuple base params force block size 1 (they may vary)
        let k = if self.base_params.is_empty() {
            self.spec.k.max(1)
        } else {
            1
        };
        let mut block: OuterBlock = Vec::with_capacity(k);
        while block.len() < k {
            match self.input.next() {
                Some(Ok(env)) => {
                    let mut keys = Vec::with_capacity(self.spec.outer_keys.len());
                    for kexpr in &self.spec.outer_keys {
                        match atomize_first(self.cx, kexpr, &env) {
                            Ok(k) => keys.push(k),
                            Err(e) => {
                                self.staging_err = Some(e);
                                self.input_done = true;
                                return None;
                            }
                        }
                    }
                    block.push((env, keys));
                }
                Some(Err(e)) => {
                    self.staging_err = Some(e);
                    self.input_done = true;
                    return None;
                }
                None => {
                    self.input_done = true;
                    break;
                }
            }
        }
        if block.is_empty() {
            None
        } else {
            Some(block)
        }
    }

    /// Issue the block's disjunctive parameterized fetch — inline when
    /// prefetch is off, on a background thread otherwise.
    fn start_fetch(&mut self, block: &OuterBlock) -> RtResult<BlockFetch> {
        self.cx.add(|s| &s.ppk_outer_tuples, block.len() as u64);
        // tuples whose keys contain an empty value can't join
        let fetchable: Vec<usize> = block
            .iter()
            .enumerate()
            .filter(|(_, (_, keys))| keys.iter().all(Option::is_some))
            .map(|(i, _)| i)
            .collect();
        if fetchable.is_empty() {
            return Ok(BlockFetch::Ready(Vec::new()));
        }
        // build the disjunctive block predicate and parameter list
        let mut select = self.select.clone();
        let base = eval_sql_params(self.cx, self.base_params, &block[fetchable[0]].0)?;
        let pred = ppk_block_predicate(&self.spec.key_columns, fetchable.len(), base.len());
        select.where_ = Some(match select.where_.take() {
            Some(w) => w.and(pred),
            None => pred,
        });
        let mut params = base;
        for &i in &fetchable {
            for key in &block[i].1 {
                let v = key.as_ref().expect("fetchable keys are non-empty");
                let ty = SqlType::from_xml_type(v.type_of()).unwrap_or(SqlType::Varchar);
                params.push(SqlValue::from_xml(Some(v), ty).map_err(RtError::Plan)?);
            }
        }
        self.cx.inc(|s| &s.ppk_blocks);
        self.cx.trace_roundtrip(self.tkey);
        if self.spec.prefetch_depth == 0 {
            return Ok(BlockFetch::Ready(
                exec_sql(self.cx, self.connection, &select, &params)?.rows,
            ));
        }
        self.cx.inc(|s| &s.ppk_prefetched_blocks);
        let cx = self.cx.clone();
        let connection = self.connection.to_string();
        Ok(BlockFetch::InFlight(std::thread::spawn(move || {
            exec_sql(&cx, &connection, &select, &params)
        })))
    }

    /// Keep up to `target` block fetches staged ahead of the consumer.
    fn stage_blocks(&mut self, target: usize) {
        while self.pending.len() < target && !self.input_done && self.staging_err.is_none() {
            let Some(block) = self.read_block() else {
                break;
            };
            match self.start_fetch(&block) {
                Ok(fetch) => self.pending.push_back(PendingBlock { block, fetch }),
                Err(e) => {
                    // drop the block; the error surfaces once earlier
                    // blocks drain, preserving depth-0 output order
                    self.staging_err = Some(e);
                    self.input_done = true;
                }
            }
        }
    }

    /// Wait for a fetch's rows, timing how long the consumer blocked.
    fn resolve_fetch(&mut self, fetch: BlockFetch) -> RtResult<Vec<Vec<SqlValue>>> {
        match fetch {
            BlockFetch::Ready(rows) => Ok(rows),
            BlockFetch::InFlight(handle) => {
                let t0 = std::time::Instant::now();
                let joined = handle.join();
                self.cx
                    .add(|s| &s.ppk_prefetch_wait_ns, t0.elapsed().as_nanos() as u64);
                match joined {
                    Ok(r) => Ok(r?.rows),
                    Err(_) => Err(RtError::Plan("PP-k prefetch thread panicked".into())),
                }
            }
        }
    }

    fn fill_block(&mut self) {
        let depth = self.spec.prefetch_depth;
        self.stage_blocks(depth.max(1));
        let Some(PendingBlock { block, fetch }) = self.pending.pop_front() else {
            if let Some(e) = self.staging_err.take() {
                self.buffer.push_back(Err(e));
            }
            self.exhausted = true;
            return;
        };
        // top the window back up *before* joining, so the next fetches
        // overlap this block's local join and downstream consumption
        self.stage_blocks(depth);
        match self.resolve_fetch(fetch) {
            Ok(rows) => self.join_block(block, rows),
            Err(e) => {
                self.buffer.push_back(Err(e));
                // drop later blocks: in-flight threads detach and finish
                self.pending.clear();
                self.staging_err = None;
                self.exhausted = true;
            }
        }
    }

    /// The middleware-side join of one fetched block (§5.2).
    fn join_block(&mut self, block: OuterBlock, rows: Vec<Vec<SqlValue>>) {
        // local join: index nested loop builds a hash on the block's rows
        let index: Option<HashMap<String, Vec<usize>>> = match self.spec.local_method {
            LocalJoinMethod::IndexNestedLoop => {
                let mut idx: HashMap<String, Vec<usize>> = HashMap::new();
                for (ri, row) in rows.iter().enumerate() {
                    row_key_into(&mut self.key_buf, row, &self.spec.bind_key_indices);
                    // only allocate an owned key for first occurrences
                    match idx.get_mut(self.key_buf.as_str()) {
                        Some(v) => v.push(ri),
                        None => {
                            idx.insert(self.key_buf.clone(), vec![ri]);
                        }
                    }
                }
                Some(idx)
            }
            LocalJoinMethod::NestedLoop => None,
        };
        // copied out so the loop below can mutate self (key_buf, buffer)
        let (field_slots, tid_slot): (Vec<u32>, Option<u32>) = if self.spec.outer_join {
            // last bind is the tuple id
            let (last, rest) = self.bind_slots.split_last().expect("outer join binds");
            (rest.to_vec(), Some(*last))
        } else {
            (self.bind_slots.clone(), None)
        };
        for (env, keys) in block {
            let tid = self.tid;
            self.tid += 1;
            let joinable = keys.iter().all(Option::is_some);
            let matches: Vec<usize> = if !joinable {
                Vec::new()
            } else {
                let key_vals: Vec<SqlValue> = keys
                    .iter()
                    .map(|k| {
                        let v = k.as_ref().expect("joinable");
                        let ty = SqlType::from_xml_type(v.type_of()).unwrap_or(SqlType::Varchar);
                        SqlValue::from_xml(Some(v), ty).unwrap_or(SqlValue::Null)
                    })
                    .collect();
                match &index {
                    Some(idx) => {
                        values_key_into(&mut self.key_buf, &key_vals);
                        idx.get(self.key_buf.as_str()).cloned().unwrap_or_default()
                    }
                    None => rows
                        .iter()
                        .enumerate()
                        .filter(|(_, row)| {
                            self.spec
                                .bind_key_indices
                                .iter()
                                .zip(&key_vals)
                                .all(|(&ci, kv)| row[ci].group_eq(kv))
                        })
                        .map(|(i, _)| i)
                        .collect(),
                }
            };
            if matches.is_empty() && self.spec.outer_join {
                // unmatched outer tuple: empty fields + tuple id
                let mut w = env.writer();
                for &slot in &field_slots {
                    w.set_empty(slot);
                }
                w.set_item(tid_slot.expect("outer join"), Item::int(tid as i64));
                if let Err(e) = self.cx.charge_mem(self.cx.tuple_mem) {
                    self.fail_buffer(e);
                    return;
                }
                self.buffered_charge += self.cx.tuple_mem;
                self.buffer.push_back(Ok(w.finish()));
            } else {
                for ri in matches {
                    let mut w = env.writer();
                    for (&slot, v) in field_slots.iter().zip(&rows[ri]) {
                        match v.to_xml() {
                            Some(x) => w.set_item(slot, Item::Atomic(x)),
                            None => w.set_empty(slot),
                        }
                    }
                    if let Some(ts) = tid_slot {
                        w.set_item(ts, Item::int(tid as i64));
                    }
                    if let Err(e) = self.cx.charge_mem(self.cx.tuple_mem) {
                        self.fail_buffer(e);
                        return;
                    }
                    self.buffered_charge += self.cx.tuple_mem;
                    self.buffer.push_back(Ok(w.finish()));
                }
            }
        }
    }
}

impl Iterator for PpkIter<'_> {
    type Item = RtResult<Env>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(x) = self.buffer.pop_front() {
                // the consumer took a buffered tuple: return its charge
                if x.is_ok() && self.buffered_charge >= self.cx.tuple_mem {
                    self.buffered_charge -= self.cx.tuple_mem;
                    self.cx.release_mem(self.cx.tuple_mem);
                }
                return Some(x);
            }
            if self.exhausted {
                return None;
            }
            self.fill_block();
            if self.buffer.is_empty() && self.exhausted {
                return None;
            }
        }
    }
}

impl Drop for PpkIter<'_> {
    fn drop(&mut self) {
        // return the charge for tuples still buffered at early stop
        self.cx.release_mem(self.buffered_charge);
    }
}

fn row_key_into(buf: &mut String, row: &[SqlValue], indices: &[usize]) {
    buf.clear();
    for &i in indices {
        row[i].sql_literal_into(buf);
        buf.push('\u{1}');
    }
}

fn values_key_into(buf: &mut String, vals: &[SqlValue]) {
    buf.clear();
    for v in vals {
        v.sql_literal_into(buf);
        buf.push('\u{1}');
    }
}
