//! The mid-tier function cache (§5.5).
//!
//! "The ALDSP mid-tier cache can be thought of as a persistent,
//! distributed map that maps a function and a set of argument values to
//! the corresponding function result." Caching is opt-in per data-service
//! function (the designer allows it; an administrator enables it with a
//! TTL). On a hit the cached result is returned; on a miss the call runs
//! and its result is cached. It is a *function* cache, not a queryable
//! materialized view — appropriate for turning high-latency service
//! calls into lookups.
//!
//! The paper's implementation persists the map in a relational database
//! shared by an ALDSP cluster; this reproduction keeps the same
//! map-with-TTL semantics in process memory (the distribution mechanics
//! are orthogonal to query processing — see DESIGN.md).
//!
//! Internally the map is **sharded**: entries are spread over
//! [`SHARD_COUNT`] independently locked shards selected by a 64-bit hash
//! of the function name and argument values, so concurrent queries
//! hitting different cache keys don't serialize on one global lock. The
//! hash is computed structurally (without serializing the arguments);
//! the full serialized key is built only when a shard bucket must be
//! checked for hash collisions. Each shard is capacity-bounded with
//! stale-first eviction.

use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::xml::serialize_sequence;
use aldsp_xdm::QName;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Number of independently locked shards (a power of two).
const SHARD_COUNT: usize = 16;

/// Default total capacity (entries across all shards).
const DEFAULT_CAPACITY: usize = 4096;

/// One cached function result.
struct Entry {
    /// Full serialized key — verified on lookup so hash collisions can
    /// never alias two different calls.
    key: String,
    value: Sequence,
    /// Insertion time, compared against the function's *current* TTL on
    /// lookup (so an administrator shortening a TTL takes effect on
    /// existing entries immediately).
    at: Instant,
    /// Expiry under the TTL in force at insertion; used for stale-first
    /// eviction when a shard fills.
    expires: Instant,
}

#[derive(Default)]
struct Shard {
    /// Hash → collision chain.
    entries: HashMap<u64, Vec<Entry>>,
    len: usize,
}

impl Shard {
    /// Bring the shard back within `capacity`: drop expired entries
    /// first, then the oldest live ones.
    fn evict(&mut self, now: Instant, capacity: usize) {
        self.entries.retain(|_, bucket| {
            bucket.retain(|e| e.expires > now);
            !bucket.is_empty()
        });
        self.len = self.entries.values().map(Vec::len).sum();
        while self.len > capacity {
            let oldest = self
                .entries
                .iter()
                .flat_map(|(&h, bucket)| bucket.iter().enumerate().map(move |(i, e)| (h, i, e.at)))
                .min_by_key(|&(_, _, at)| at)
                .map(|(h, i, _)| (h, i));
            let Some((h, i)) = oldest else { break };
            let bucket = self.entries.get_mut(&h).expect("bucket of found entry");
            bucket.swap_remove(i);
            if bucket.is_empty() {
                self.entries.remove(&h);
            }
            self.len -= 1;
        }
    }
}

/// TTL-based, sharded cache of data-service function results.
pub struct FunctionCache {
    policies: RwLock<HashMap<QName, Duration>>,
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
}

impl Default for FunctionCache {
    fn default() -> FunctionCache {
        FunctionCache::new()
    }
}

impl FunctionCache {
    /// An empty cache with no functions enabled.
    pub fn new() -> FunctionCache {
        FunctionCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to roughly `capacity` total entries.
    pub fn with_capacity(capacity: usize) -> FunctionCache {
        FunctionCache {
            policies: RwLock::new(HashMap::new()),
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: (capacity / SHARD_COUNT).max(1),
        }
    }

    /// Administratively enable caching for `function` with the given TTL
    /// (the designer-permits / admin-enables split of §5.5 is collapsed
    /// into this one call).
    pub fn enable(&self, function: QName, ttl: Duration) {
        self.policies.write().insert(function, ttl);
    }

    /// Disable caching for a function (existing entries lapse naturally).
    pub fn disable(&self, function: &QName) {
        self.policies.write().remove(function);
    }

    /// Drop every cached entry for one function across all shards,
    /// returning how many were removed. Unlike [`FunctionCache::disable`]
    /// this evicts eagerly — the next call recomputes even if the policy
    /// stays enabled.
    pub fn purge(&self, function: &QName) -> usize {
        let lexical = function.lexical();
        let prefix = format!("{lexical}\u{1}");
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut s = shard.lock();
            s.entries.retain(|_, bucket| {
                bucket.retain(|e| {
                    let gone = e.key == lexical || e.key.starts_with(&prefix);
                    removed += gone as usize;
                    !gone
                });
                !bucket.is_empty()
            });
            s.len = s.entries.values().map(Vec::len).sum();
        }
        removed
    }

    /// Is caching enabled for this function?
    pub fn enabled(&self, function: &QName) -> bool {
        self.policies.read().contains_key(function)
    }

    /// The shard-selection / bucket hash: function name plus a
    /// structural hash of the argument values. No serialization happens
    /// here — item content is streamed into the hasher.
    fn hash_key(function: &QName, args: &[Sequence]) -> u64 {
        let mut h = DefaultHasher::new();
        function.hash(&mut h);
        for a in args {
            0xF1u8.hash(&mut h); // argument separator
            for item in a {
                match item {
                    Item::Atomic(v) => {
                        1u8.hash(&mut h);
                        v.type_of().hash(&mut h);
                        v.string_value().hash(&mut h);
                    }
                    Item::Node(n) => {
                        2u8.hash(&mut h);
                        use std::fmt::Write as _;
                        let _ = write!(HashWriter(&mut h), "{}", &**n);
                    }
                }
            }
        }
        h.finish()
    }

    /// The full cache key: function name plus serialized argument
    /// values. Built only for collision verification on a hash match.
    fn key(function: &QName, args: &[Sequence]) -> String {
        let mut k = function.lexical();
        for a in args {
            k.push('\u{1}');
            k.push_str(&serialize_sequence(a));
        }
        k
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % SHARD_COUNT]
    }

    /// Look up a non-stale entry (one shard lock acquisition).
    pub fn get(&self, function: &QName, args: &[Sequence]) -> Option<Sequence> {
        let ttl = *self.policies.read().get(function)?;
        let hash = Self::hash_key(function, args);
        let mut shard = self.shard(hash).lock();
        let bucket = shard.entries.get_mut(&hash)?;
        // a populated bucket exists: now (and only now) serialize the
        // arguments to rule out a hash collision
        let key = Self::key(function, args);
        let idx = bucket.iter().position(|e| e.key == key)?;
        if bucket[idx].at.elapsed() < ttl {
            return Some(bucket[idx].value.clone());
        }
        // stale: evict on lookup
        bucket.swap_remove(idx);
        let empty = bucket.is_empty();
        if empty {
            shard.entries.remove(&hash);
        }
        shard.len -= 1;
        None
    }

    /// Store a result (no-op when the function isn't cache-enabled).
    /// Reads the TTL once and inserts under the owning shard's lock in a
    /// single pass; when no policy exists, no key is ever constructed.
    pub fn put(&self, function: &QName, args: &[Sequence], value: Sequence) {
        let Some(ttl) = self.policies.read().get(function).copied() else {
            return;
        };
        let hash = Self::hash_key(function, args);
        let key = Self::key(function, args);
        let now = Instant::now();
        let mut shard = self.shard(hash).lock();
        let bucket = shard.entries.entry(hash).or_default();
        if let Some(e) = bucket.iter_mut().find(|e| e.key == key) {
            e.value = value;
            e.at = now;
            e.expires = now + ttl;
            return;
        }
        bucket.push(Entry {
            key,
            value,
            at: now,
            expires: now + ttl,
        });
        shard.len += 1;
        if shard.len > self.shard_capacity {
            shard.evict(now, self.shard_capacity);
        }
    }

    /// Drop every entry (administrative flush).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock();
            s.entries.clear();
            s.len = 0;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Streams `Display` output into a [`Hasher`] without allocating.
struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> std::fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::item::Item;

    fn f() -> QName {
        QName::new("urn:ws", "getRating")
    }

    #[test]
    fn miss_put_hit() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        let args = vec![vec![Item::str("Jones")]];
        assert!(c.get(&f(), &args).is_none());
        c.put(&f(), &args, vec![Item::int(700)]);
        assert_eq!(c.get(&f(), &args), Some(vec![Item::int(700)]));
        // different args are a different entry
        assert!(c.get(&f(), &[vec![Item::str("Smith")]]).is_none());
    }

    #[test]
    fn disabled_functions_never_cache() {
        let c = FunctionCache::new();
        let args = vec![vec![Item::int(1)]];
        c.put(&f(), &args, vec![Item::int(2)]);
        assert!(c.get(&f(), &args).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_expiry() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_millis(10));
        let args = vec![vec![Item::int(1)]];
        c.put(&f(), &args, vec![Item::int(2)]);
        assert!(c.get(&f(), &args).is_some());
        std::thread::sleep(Duration::from_millis(15));
        assert!(c.get(&f(), &args).is_none(), "stale entry must miss");
        assert!(c.is_empty(), "stale entry evicted on lookup");
    }

    #[test]
    fn clear_and_disable() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        c.put(&f(), &[], vec![Item::int(1)]);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        c.disable(&f());
        assert!(!c.enabled(&f()));
    }

    #[test]
    fn purge_drops_only_the_named_function() {
        let c = FunctionCache::new();
        let g = QName::new("urn:ws", "getRatingHistory");
        c.enable(f(), Duration::from_secs(60));
        c.enable(g.clone(), Duration::from_secs(60));
        c.put(&f(), &[], vec![Item::int(1)]);
        c.put(&f(), &[vec![Item::str("Jones")]], vec![Item::int(2)]);
        // a name sharing `f`'s lexical form as a prefix must survive
        c.put(&g, &[vec![Item::str("Jones")]], vec![Item::int(3)]);
        assert_eq!(c.purge(&f()), 2);
        assert!(c.get(&f(), &[]).is_none());
        assert!(c.get(&f(), &[vec![Item::str("Jones")]]).is_none());
        assert_eq!(
            c.get(&g, &[vec![Item::str("Jones")]]),
            Some(vec![Item::int(3)])
        );
        // the policy survives a purge: the next call re-caches
        assert!(c.enabled(&f()));
        c.put(&f(), &[], vec![Item::int(9)]);
        assert_eq!(c.get(&f(), &[]), Some(vec![Item::int(9)]));
    }

    #[test]
    fn purge_of_unknown_function_is_a_noop() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        c.put(&f(), &[], vec![Item::int(1)]);
        assert_eq!(c.purge(&QName::new("urn:ws", "other")), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn put_replaces_existing_entry() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        let args = vec![vec![Item::int(9)]];
        c.put(&f(), &args, vec![Item::int(1)]);
        c.put(&f(), &args, vec![Item::int(2)]);
        assert_eq!(c.len(), 1, "same key must replace, not duplicate");
        assert_eq!(c.get(&f(), &args), Some(vec![Item::int(2)]));
    }

    #[test]
    fn capacity_bound_evicts_stale_then_oldest() {
        let c = FunctionCache::with_capacity(SHARD_COUNT); // 1 per shard
        c.enable(f(), Duration::from_secs(60));
        // overfill: every insert beyond a shard's capacity evicts that
        // shard's oldest entry, so the total stays bounded
        for i in 0..200 {
            c.put(&f(), &[vec![Item::int(i)]], vec![Item::int(i)]);
        }
        assert!(
            c.len() <= SHARD_COUNT,
            "capacity bound exceeded: {}",
            c.len()
        );
    }

    #[test]
    fn distinct_args_spread_over_shards() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        for i in 0..64 {
            c.put(&f(), &[vec![Item::int(i)]], vec![Item::int(i * 10)]);
        }
        assert_eq!(c.len(), 64);
        for i in 0..64 {
            assert_eq!(
                c.get(&f(), &[vec![Item::int(i)]]),
                Some(vec![Item::int(i * 10)]),
                "entry {i} lost or aliased"
            );
        }
    }
}
