//! The mid-tier function cache (§5.5).
//!
//! "The ALDSP mid-tier cache can be thought of as a persistent,
//! distributed map that maps a function and a set of argument values to
//! the corresponding function result." Caching is opt-in per data-service
//! function (the designer allows it; an administrator enables it with a
//! TTL). On a hit the cached result is returned; on a miss the call runs
//! and its result is cached. It is a *function* cache, not a queryable
//! materialized view — appropriate for turning high-latency service
//! calls into lookups.
//!
//! The paper's implementation persists the map in a relational database
//! shared by an ALDSP cluster; this reproduction keeps the same
//! map-with-TTL semantics in process memory (the distribution mechanics
//! are orthogonal to query processing — see DESIGN.md).

use aldsp_xdm::item::Sequence;
use aldsp_xdm::xml::serialize_sequence;
use aldsp_xdm::QName;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// TTL-based cache of data-service function results.
#[derive(Default)]
pub struct FunctionCache {
    policies: Mutex<HashMap<QName, Duration>>,
    entries: Mutex<HashMap<String, (Sequence, Instant)>>,
}

impl FunctionCache {
    /// An empty cache with no functions enabled.
    pub fn new() -> FunctionCache {
        FunctionCache::default()
    }

    /// Administratively enable caching for `function` with the given TTL
    /// (the designer-permits / admin-enables split of §5.5 is collapsed
    /// into this one call).
    pub fn enable(&self, function: QName, ttl: Duration) {
        self.policies.lock().insert(function, ttl);
    }

    /// Disable caching for a function (existing entries lapse naturally).
    pub fn disable(&self, function: &QName) {
        self.policies.lock().remove(function);
    }

    /// Is caching enabled for this function?
    pub fn enabled(&self, function: &QName) -> bool {
        self.policies.lock().contains_key(function)
    }

    /// The cache key: function name plus serialized argument values.
    fn key(function: &QName, args: &[Sequence]) -> String {
        let mut k = function.lexical();
        for a in args {
            k.push('\u{1}');
            k.push_str(&serialize_sequence(a));
        }
        k
    }

    /// Look up a non-stale entry.
    pub fn get(&self, function: &QName, args: &[Sequence]) -> Option<Sequence> {
        let ttl = *self.policies.lock().get(function)?;
        let key = Self::key(function, args);
        let mut entries = self.entries.lock();
        match entries.get(&key) {
            Some((value, at)) if at.elapsed() < ttl => Some(value.clone()),
            Some(_) => {
                entries.remove(&key); // stale
                None
            }
            None => None,
        }
    }

    /// Store a result (no-op when the function isn't cache-enabled).
    pub fn put(&self, function: &QName, args: &[Sequence], value: Sequence) {
        if !self.enabled(function) {
            return;
        }
        let key = Self::key(function, args);
        self.entries.lock().insert(key, (value, Instant::now()));
    }

    /// Drop every entry (administrative flush).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::item::Item;

    fn f() -> QName {
        QName::new("urn:ws", "getRating")
    }

    #[test]
    fn miss_put_hit() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        let args = vec![vec![Item::str("Jones")]];
        assert!(c.get(&f(), &args).is_none());
        c.put(&f(), &args, vec![Item::int(700)]);
        assert_eq!(c.get(&f(), &args), Some(vec![Item::int(700)]));
        // different args are a different entry
        assert!(c.get(&f(), &[vec![Item::str("Smith")]]).is_none());
    }

    #[test]
    fn disabled_functions_never_cache() {
        let c = FunctionCache::new();
        let args = vec![vec![Item::int(1)]];
        c.put(&f(), &args, vec![Item::int(2)]);
        assert!(c.get(&f(), &args).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn ttl_expiry() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_millis(10));
        let args = vec![vec![Item::int(1)]];
        c.put(&f(), &args, vec![Item::int(2)]);
        assert!(c.get(&f(), &args).is_some());
        std::thread::sleep(Duration::from_millis(15));
        assert!(c.get(&f(), &args).is_none(), "stale entry must miss");
        assert!(c.is_empty(), "stale entry evicted on lookup");
    }

    #[test]
    fn clear_and_disable() {
        let c = FunctionCache::new();
        c.enable(f(), Duration::from_secs(60));
        c.put(&f(), &[], vec![Item::int(1)]);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        c.disable(&f());
        assert!(!c.enabled(&f()));
    }
}
