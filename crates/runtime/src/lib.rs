//! # aldsp-runtime — the ALDSP query execution engine (§5)
//!
//! Interprets plans produced by `aldsp-compiler`: a streaming FLWOR
//! tuple pipeline with the paper's data-centric operators — pushed-SQL
//! scans, the PP-k distributed join (§4.2), the single clustered group
//! operator with sort fallback (§5.2) — plus the ALDSP runtime
//! extensions: asynchronous evaluation (`fn-bea:async`, §5.4), the
//! mid-tier function cache (§5.5), and failover/timeout handling
//! (`fn-bea:fail-over` / `fn-bea:timeout`, §5.6). Execution statistics
//! expose the observable behavior the paper's design claims are about.

pub mod cache;
pub mod env;
pub mod eval;
pub mod parallel;
pub mod stats;
pub mod trace;
pub mod vm;

pub use cache::FunctionCache;
pub use env::{Env, EnvWriter, NamedEnv};
pub use eval::{ExecCtx, RtError, RtResult, RuntimeInner};
pub use parallel::{morsel_ranges, MorselQueue, WorkerPool};
pub use stats::{ExecStats, StatsSnapshot};
pub use trace::{NodeTrace, QueryTrace, TraceCollector, TraceKey, TraceLevel};
pub use vm::ExprVM;

pub use aldsp_workload::{QueryBudget, WorkloadError};

use aldsp_adaptors::AdaptorRegistry;
use aldsp_compiler::CompiledQuery;
use aldsp_metadata::Registry;
use aldsp_xdm::item::Sequence;
use std::sync::Arc;

/// The outcome of one (optionally traced) execution: the items (empty
/// for streaming runs, which deliver through the sink instead), the
/// number of items produced, this execution's exact stat deltas, and
/// the per-operator trace when one was requested.
#[derive(Debug)]
pub struct Execution {
    /// Materialized result items (empty for streaming executions).
    pub items: Sequence,
    /// Items produced (= `items.len()` for materialized executions).
    pub delivered: u64,
    /// This execution's stat deltas, unpolluted by concurrent queries.
    pub per_query_stats: StatsSnapshot,
    /// The per-operator trace, when tracing was requested.
    pub trace: Option<QueryTrace>,
}

/// Per-execution tuning knobs the server threads down from its typed
/// `ExecutionOptions` surface: how many workers a query may engage and
/// how many scan rows form one morsel. The default is single-threaded
/// execution — parallelism is strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecTuning {
    /// Workers a query may occupy, including the calling thread
    /// (`1` = sequential; values are clamped to at least 1).
    pub workers: usize,
    /// Scan rows per morsel for parallel execution.
    pub morsel_size: usize,
}

impl Default for ExecTuning {
    fn default() -> ExecTuning {
        ExecTuning {
            workers: 1,
            morsel_size: 1024,
        }
    }
}

/// The query execution engine.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Create a runtime over metadata and live adaptors.
    pub fn new(metadata: Arc<Registry>, adaptors: Arc<AdaptorRegistry>) -> Runtime {
        Runtime {
            inner: Arc::new(RuntimeInner {
                metadata,
                adaptors,
                cache: FunctionCache::new(),
                stats: ExecStats::default(),
                pool: parallel::WorkerPool::new(),
            }),
        }
    }

    /// Execute a compiled plan with external-variable bindings
    /// (unbound externals default to the empty sequence).
    pub fn execute(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
    ) -> RtResult<Sequence> {
        Ok(self.execute_traced(query, bindings, TraceLevel::Off)?.items)
    }

    /// Execute a compiled plan, collecting this execution's exact stat
    /// deltas and — at [`TraceLevel::Operators`] — a per-operator
    /// [`QueryTrace`] keyed by the plan's node ids.
    pub fn execute_traced(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
    ) -> RtResult<Execution> {
        self.execute_traced_budgeted(query, bindings, level, None)
    }

    /// [`Runtime::execute_traced`] under a workload budget: the deadline
    /// is checked at tuple boundaries and before source roundtrips, and
    /// blocking operators charge their buffered state against the
    /// budget's memory cap. The budget's permit-wait and peak-memory
    /// counters are folded into the returned stats.
    pub fn execute_traced_budgeted(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
        budget: Option<Arc<QueryBudget>>,
    ) -> RtResult<Execution> {
        self.execute_tuned(query, bindings, level, budget, ExecTuning::default())
    }

    /// [`Runtime::execute_traced_budgeted`] with explicit [`ExecTuning`]:
    /// `workers > 1` lets plan regions the compiler marked partitionable
    /// run morsel-parallel across the shared worker pool. Results are
    /// byte-identical to sequential execution regardless of tuning.
    pub fn execute_tuned(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
        budget: Option<Arc<QueryBudget>>,
        tuning: ExecTuning,
    ) -> RtResult<Execution> {
        let env = self.bind_env(query, bindings);
        let (cx, collector) = self.exec_ctx(level);
        let cx = cx
            .with_frame(Arc::clone(&query.frame))
            .with_programs(Arc::clone(&query.programs))
            .with_joins(Arc::clone(&query.joins))
            .with_parallel(
                Arc::clone(&query.parallel),
                tuning.workers,
                tuning.morsel_size,
            )
            .with_budget(budget);
        let t0 = std::time::Instant::now();
        let result = eval::eval(&cx, &query.plan, &env);
        merge_budget_counters(&cx);
        let items = result?;
        if let Some(c) = &collector {
            // the plan root's row count = the result item count, so a
            // trace always sums consistently with what was returned
            c.record(
                TraceKey::node(query.plan.node_id),
                NodeTrace {
                    rows_out: items.len() as u64,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    ..Default::default()
                },
            );
        }
        let delivered = items.len() as u64;
        Ok(Execution {
            items,
            delivered,
            per_query_stats: cx.local.snapshot(),
            trace: collector.map(|c| c.finish()),
        })
    }

    /// Execute a plan *incrementally*: result items are handed to
    /// `on_item` as the tuple pipeline produces them, without
    /// materializing the full sequence first (§2.2's server-side
    /// streaming consumption). Returning `false` from the sink stops
    /// execution early. Returns the number of items delivered.
    pub fn execute_streaming(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        on_item: &mut dyn FnMut(aldsp_xdm::item::Item) -> bool,
    ) -> RtResult<u64> {
        Ok(self
            .execute_streaming_traced(query, bindings, TraceLevel::Off, on_item)?
            .delivered)
    }

    /// [`Runtime::execute_streaming`] with per-execution stats and an
    /// optional operator trace (items go to the sink; `Execution::items`
    /// stays empty).
    pub fn execute_streaming_traced(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
        on_item: &mut dyn FnMut(aldsp_xdm::item::Item) -> bool,
    ) -> RtResult<Execution> {
        self.execute_streaming_traced_budgeted(query, bindings, level, None, on_item)
    }

    /// [`Runtime::execute_streaming_traced`] under a workload budget —
    /// the streaming twin of [`Runtime::execute_traced_budgeted`]. A
    /// deadline hit mid-stream ends the result stream with the typed
    /// error after whatever prefix was already delivered.
    pub fn execute_streaming_traced_budgeted(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
        budget: Option<Arc<QueryBudget>>,
        on_item: &mut dyn FnMut(aldsp_xdm::item::Item) -> bool,
    ) -> RtResult<Execution> {
        self.execute_streaming_tuned(
            query,
            bindings,
            level,
            budget,
            ExecTuning::default(),
            on_item,
        )
    }

    /// [`Runtime::execute_streaming_traced_budgeted`] with explicit
    /// [`ExecTuning`] — the streaming twin of [`Runtime::execute_tuned`].
    /// The parallel region (when one engages) materializes its own
    /// output, but clauses past it and the return expression still
    /// stream to the sink tuple by tuple.
    pub fn execute_streaming_tuned(
        &self,
        query: &CompiledQuery,
        bindings: &[(&str, Sequence)],
        level: TraceLevel,
        budget: Option<Arc<QueryBudget>>,
        tuning: ExecTuning,
        on_item: &mut dyn FnMut(aldsp_xdm::item::Item) -> bool,
    ) -> RtResult<Execution> {
        let env = self.bind_env(query, bindings);
        let (cx, collector) = self.exec_ctx(level);
        let cx = cx
            .with_frame(Arc::clone(&query.frame))
            .with_programs(Arc::clone(&query.programs))
            .with_joins(Arc::clone(&query.joins))
            .with_parallel(
                Arc::clone(&query.parallel),
                tuning.workers,
                tuning.morsel_size,
            )
            .with_budget(budget);
        let t0 = std::time::Instant::now();
        let mut delivered = 0u64;
        let result = (|| -> RtResult<()> {
            match &query.plan.kind {
                aldsp_compiler::CKind::Flwor { clauses, ret } => {
                    'outer: for tuple in eval::flwor_tuples(&cx, query.plan.node_id, clauses, &env)
                    {
                        let tenv = tuple?;
                        for item in eval::eval(&cx, ret, &tenv)? {
                            delivered += 1;
                            if !on_item(item) {
                                break 'outer;
                            }
                        }
                    }
                }
                _ => {
                    for item in eval::eval(&cx, &query.plan, &env)? {
                        delivered += 1;
                        if !on_item(item) {
                            break;
                        }
                    }
                }
            }
            Ok(())
        })();
        merge_budget_counters(&cx);
        result?;
        if let Some(c) = &collector {
            c.record(
                TraceKey::node(query.plan.node_id),
                NodeTrace {
                    rows_out: delivered,
                    wall_ns: t0.elapsed().as_nanos() as u64,
                    ..Default::default()
                },
            );
        }
        Ok(Execution {
            items: Vec::new(),
            delivered,
            per_query_stats: cx.local.snapshot(),
            trace: collector.map(|c| c.finish()),
        })
    }

    fn bind_env(&self, query: &CompiledQuery, bindings: &[(&str, Sequence)]) -> Env {
        // the initial frame spans the whole plan; externals sit at the
        // slots the layout pass assigned them (0..n in declaration order)
        let mut w = Env::with_width(query.frame.width() as usize).writer();
        for var in &query.external_vars {
            let value = bindings
                .iter()
                .find(|(n, _)| n == var)
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            if let Some(slot) = query.frame.slot(var) {
                w.set(slot, value);
            }
        }
        w.finish()
    }

    fn exec_ctx(&self, level: TraceLevel) -> (ExecCtx, Option<Arc<TraceCollector>>) {
        let collector = match level {
            TraceLevel::Off => None,
            TraceLevel::Operators => Some(Arc::new(TraceCollector::default())),
        };
        (
            ExecCtx::new(self.inner.clone(), collector.clone()),
            collector,
        )
    }

    /// The function cache (enable per-function TTLs here, §5.5).
    pub fn cache(&self) -> &FunctionCache {
        &self.inner.cache
    }

    /// Snapshot execution statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Reset execution statistics.
    pub fn reset_stats(&self) {
        self.inner.stats.reset()
    }

    /// The underlying shared state (for embedding).
    pub fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }
}

/// Fold the budget's own counters (gate wait, peak held memory) into
/// both the global and the per-query stats scopes, so snapshots show
/// them alongside the operator counters. Called whether the query
/// succeeded or not — a deadline-killed query's permit waits are
/// exactly the interesting ones.
fn merge_budget_counters(cx: &ExecCtx) {
    use std::sync::atomic::Ordering;
    let Some(b) = &cx.budget else { return };
    let wait = b.permit_wait_ns();
    if wait > 0 {
        cx.rt
            .stats
            .permit_wait_ns
            .fetch_add(wait, Ordering::Relaxed);
        cx.local.permit_wait_ns.fetch_add(wait, Ordering::Relaxed);
    }
    let peak = b.peak_memory_bytes();
    if peak > 0 {
        cx.rt.stats.peak(&cx.rt.stats.peak_memory_bytes, peak);
        cx.local.peak(&cx.local.peak_memory_bytes, peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_adaptors::SimulatedWebService;
    use aldsp_compiler::{Compiler, Options};
    use aldsp_metadata::{
        introspect_relational, introspect_web_service, WebServiceDescription, WebServiceOperation,
    };
    use aldsp_relational::{
        Catalog, Database, Dialect, LatencyModel, RelationalServer, SqlType, SqlValue, TableSchema,
    };
    use aldsp_xdm::item::Item;
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::value::{AtomicType, AtomicValue};
    use aldsp_xdm::{xml, QName};
    use std::sync::Arc;

    /// The full running-example world: CUSTOMER/ORDER on db1 (Oracle),
    /// CREDIT_CARD on db2 (DB2), the rating web service, int2date natives.
    struct World {
        compiler: Compiler,
        runtime: Runtime,
        db1: Arc<RelationalServer>,
        db2: Arc<RelationalServer>,
        rating: Arc<SimulatedWebService>,
    }

    fn world() -> World {
        world_opts(|_| {})
    }

    fn world_opts(tune: impl FnOnce(&mut Options)) -> World {
        // db1: CUSTOMER + ORDER
        let mut cat1 = Catalog::new();
        cat1.add(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("FIRST_NAME", SqlType::Varchar)
                .col_null("SINCE", SqlType::Integer)
                .col_null("SSN", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        cat1.add(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .col_null("AMOUNT", SqlType::Decimal)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db1 = Database::new();
        for t in cat1.tables() {
            db1.create_table(t.clone()).unwrap();
        }
        for (cid, last, first, since, ssn) in [
            ("C1", "Jones", Some("Ann"), Some(1000), Some("111-11-1111")),
            ("C2", "Smith", None, Some(2000), Some("222-22-2222")),
            ("C3", "Jones", Some("Bob"), None, None),
        ] {
            db1.insert(
                "CUSTOMER",
                vec![
                    SqlValue::str(cid),
                    SqlValue::str(last),
                    first.map(SqlValue::str).unwrap_or(SqlValue::Null),
                    since.map(SqlValue::Int).unwrap_or(SqlValue::Null),
                    ssn.map(SqlValue::str).unwrap_or(SqlValue::Null),
                ],
            )
            .unwrap();
        }
        for (oid, cid, amt) in [(1, "C1", "10.5"), (2, "C1", "20"), (3, "C3", "7.25")] {
            db1.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(cid),
                    SqlValue::Dec(aldsp_xdm::value::Decimal::parse(amt).unwrap()),
                ],
            )
            .unwrap();
        }
        // db2: CREDIT_CARD
        let mut cat2 = Catalog::new();
        cat2.add(
            TableSchema::builder("CREDIT_CARD")
                .col("CCN", SqlType::Varchar)
                .col("CID", SqlType::Varchar)
                .pk(&["CCN"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut db2 = Database::new();
        for t in cat2.tables() {
            db2.create_table(t.clone()).unwrap();
        }
        for (ccn, cid) in [("4000-1", "C1"), ("4000-2", "C1"), ("4000-3", "C2")] {
            db2.insert("CREDIT_CARD", vec![SqlValue::str(ccn), SqlValue::str(cid)])
                .unwrap();
        }
        // metadata
        let mut meta = aldsp_metadata::Registry::new();
        meta.register_service(&introspect_relational(&cat1, "db1", "urn:custDS").unwrap())
            .unwrap();
        meta.register_service(&introspect_relational(&cat2, "db2", "urn:ccDS").unwrap())
            .unwrap();
        let wsin = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRating"))
            .required("lName", AtomicType::String)
            .required("ssn", AtomicType::String)
            .build();
        let wsout = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRatingResponse"))
            .required("getRatingResult", AtomicType::Integer)
            .build();
        meta.register_service(&introspect_web_service(&WebServiceDescription {
            name: "ratingWS".into(),
            namespace: "urn:ratingWS".into(),
            operations: vec![WebServiceOperation {
                name: "getRating".into(),
                input: wsin.clone(),
                output: wsout.clone(),
            }],
        }))
        .unwrap();
        let (i2d, d2i) = aldsp_adaptors::native::int2date_pair();
        for (name, from, to) in [
            ("int2date", AtomicType::Integer, AtomicType::DateTime),
            ("date2int", AtomicType::DateTime, AtomicType::Integer),
        ] {
            meta.register_function(aldsp_metadata::PhysicalFunction {
                name: QName::new("urn:lib", name),
                kind: aldsp_metadata::FunctionKind::Library,
                params: vec![aldsp_metadata::ParamDecl {
                    name: "x".into(),
                    ty: aldsp_xdm::types::SequenceType::Seq(
                        aldsp_xdm::types::ItemType::Atomic(from),
                        aldsp_xdm::types::Occurrence::Optional,
                    ),
                }],
                return_type: aldsp_xdm::types::SequenceType::Seq(
                    aldsp_xdm::types::ItemType::Atomic(to),
                    aldsp_xdm::types::Occurrence::Optional,
                ),
                source: aldsp_metadata::SourceBinding::Native {
                    id: name.to_string(),
                },
            })
            .unwrap();
        }
        let meta = Arc::new(meta);
        // adaptors
        let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
        let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
        let rating = Arc::new(SimulatedWebService::new("ratingWS").operation(
            "getRating",
            wsin,
            wsout,
            Arc::new(|req| {
                let ssn = req
                    .child_elements(&QName::new("urn:ratingTypes", "ssn"))
                    .next()
                    .map(|n| n.string_value())
                    .unwrap_or_default();
                let rating = 600 + (ssn.bytes().map(u64::from).sum::<u64>() % 250) as i64;
                Ok(aldsp_xdm::Node::element(
                    QName::new("urn:ratingTypes", "getRatingResponse"),
                    vec![],
                    vec![aldsp_xdm::Node::simple_element(
                        QName::new("urn:ratingTypes", "getRatingResult"),
                        AtomicValue::Integer(rating),
                    )],
                ))
            }),
        ));
        let mut adaptors = AdaptorRegistry::new();
        adaptors.register_connection(db1.clone());
        adaptors.register_connection(db2.clone());
        adaptors.register_service(rating.clone());
        adaptors.register_native(i2d);
        adaptors.register_native(d2i);
        let adaptors = Arc::new(adaptors);
        // compiler
        let mut opts = Options {
            dialects: adaptors.connection_dialects(),
            ..Default::default()
        };
        tune(&mut opts);
        let mut compiler = Compiler::new(meta.clone(), opts);
        compiler.declare_inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        );
        let runtime = Runtime::new(meta, adaptors);
        World {
            compiler,
            runtime,
            db1,
            db2,
            rating,
        }
    }

    const PROLOG: &str = r#"
        declare namespace c = "urn:custDS";
        declare namespace cc = "urn:ccDS";
        declare namespace ws = "urn:ratingWS";
        declare namespace lib = "urn:lib";
        declare namespace r = "urn:ratingTypes";
    "#;

    fn run(w: &World, query: &str) -> aldsp_xdm::item::Sequence {
        let q = w
            .compiler
            .compile_query(&format!("{PROLOG}\n{query}"))
            .unwrap_or_else(|d| panic!("compile failed: {d:?}"));
        w.runtime
            .execute(&q, &[])
            .unwrap_or_else(|e| panic!("execute failed: {e}\nplan: {:#?}", q.plan))
    }

    fn as_xml(seq: &aldsp_xdm::item::Sequence) -> String {
        xml::serialize_sequence(seq)
    }

    #[test]
    fn simple_pushed_select() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER() where $c/CID eq "C1" return $c/FIRST_NAME"#,
        );
        assert_eq!(as_xml(&out), "<FIRST_NAME>Ann</FIRST_NAME>");
        assert_eq!(w.runtime.stats().sql_statements, 1);
        assert_eq!(w.db1.stats().roundtrips, 1);
    }

    #[test]
    fn same_source_join_single_statement() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER(), $o in c:ORDER()
               where $c/CID eq $o/CID
               return <CO>{ $c/CID, $o/OID }</CO>"#,
        );
        assert_eq!(
            as_xml(&out),
            "<CO><CID>C1</CID><OID>1</OID></CO><CO><CID>C1</CID><OID>2</OID></CO><CO><CID>C3</CID><OID>3</OID></CO>"
        );
        assert_eq!(w.db1.stats().roundtrips, 1, "join pushed as one statement");
    }

    #[test]
    fn nested_same_source_outer_join_preserves_empty_customers() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               return <CUST>{ $c/CID, <ORDERS>{
                 for $o in c:ORDER() where $c/CID eq $o/CID return $o/OID
               }</ORDERS> }</CUST>"#,
        );
        let s = as_xml(&out);
        assert!(s.contains("<CUST><CID>C2</CID><ORDERS/></CUST>"), "{s}");
        assert!(
            s.contains("<CUST><CID>C1</CID><ORDERS><OID>1</OID><OID>2</OID></ORDERS></CUST>"),
            "{s}"
        );
        assert_eq!(
            w.db1.stats().roundtrips,
            1,
            "{:?}",
            w.db1.stats().statements
        );
        assert_eq!(w.runtime.stats().streaming_groups, 1);
        assert_eq!(w.runtime.stats().sorted_groups, 0);
    }

    #[test]
    fn cross_source_ppk_join() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               return <P>{ $c/CID, <CARDS>{
                 for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
               }</CARDS> }</P>"#,
        );
        let s = as_xml(&out);
        assert!(
            s.contains("<P><CID>C1</CID><CARDS><CCN>4000-1</CCN><CCN>4000-2</CCN></CARDS></P>"),
            "{s}"
        );
        assert!(s.contains("<P><CID>C3</CID><CARDS/></P>"), "{s}");
        assert_eq!(w.db2.stats().roundtrips, 1);
        assert_eq!(w.runtime.stats().ppk_blocks, 1);
        assert_eq!(w.runtime.stats().ppk_outer_tuples, 3);
        let sql = &w.db2.stats().statements[0];
        assert!(sql.matches('?').count() >= 3, "{sql}");
    }

    #[test]
    fn group_by_pushed_as_sql() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               group $c as $p by $c/LAST_NAME as $l
               return <G>{ $l, count($p) }</G>"#,
        );
        let s = as_xml(&out);
        assert!(s.contains("Jones") && s.contains("2"), "{s}");
        let sql = &w.db1.stats().statements[0];
        assert!(sql.contains("GROUP BY"), "{sql}");
    }

    #[test]
    fn figure3_full_profile_integration() {
        // the complete running example: two databases + a web service
        let w = world();
        let out = run(
            &w,
            r#"for $CUSTOMER in c:CUSTOMER()
               where exists($CUSTOMER/SSN)
               return
                 <PROFILE>
                   <CID>{fn:data($CUSTOMER/CID)}</CID>
                   <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
                   <ORDERS>{
                     for $o in c:ORDER() where $o/CID eq $CUSTOMER/CID return $o/OID
                   }</ORDERS>
                   <CREDIT_CARDS>{
                     for $k in cc:CREDIT_CARD() where $k/CID eq $CUSTOMER/CID return $k/CCN
                   }</CREDIT_CARDS>
                   <RATING>{
                     fn:data(ws:getRating(
                       <r:getRating>
                         <r:lName>{fn:data($CUSTOMER/LAST_NAME)}</r:lName>
                         <r:ssn>{fn:data($CUSTOMER/SSN)}</r:ssn>
                       </r:getRating>)/r:getRatingResult)
                   }</RATING>
                 </PROFILE>"#,
        );
        let s = as_xml(&out);
        assert!(s.contains("<CID>C1</CID>"), "{s}");
        assert!(
            s.contains("<ORDERS><OID>1</OID><OID>2</OID></ORDERS>"),
            "{s}"
        );
        assert!(
            s.contains("<CREDIT_CARDS><CCN>4000-1</CCN><CCN>4000-2</CCN></CREDIT_CARDS>"),
            "{s}"
        );
        assert!(s.contains("<RATING>"), "{s}");
        assert_eq!(
            w.rating.call_count(),
            2,
            "one rating call per customer with an SSN"
        );
    }

    #[test]
    fn inverse_function_pushes_and_computes() {
        let w = world();
        let q = w
            .compiler
            .compile_query(&format!(
                "{PROLOG}
                 declare variable $start as xs:dateTime external;
                 for $c in c:CUSTOMER()
                 where lib:int2date($c/SINCE) gt $start
                 return $c/CID"
            ))
            .unwrap();
        let start = AtomicValue::DateTime(aldsp_xdm::value::DateTime(1500));
        let out = w
            .runtime
            .execute(&q, &[("start", vec![Item::Atomic(start)])])
            .unwrap();
        assert_eq!(as_xml(&out), "<CID>C2</CID>");
        let sql = &w.db1.stats().statements[0];
        assert!(sql.contains("\"SINCE\" > ?"), "{sql}");
    }

    #[test]
    fn function_cache_turns_calls_into_lookups() {
        let w = world();
        w.rating.set_latency(std::time::Duration::from_millis(5));
        w.runtime.cache().enable(
            QName::new("urn:ratingWS", "getRating"),
            std::time::Duration::from_secs(60),
        );
        let query = r#"for $c in c:CUSTOMER()
            where $c/CID eq "C1"
            return fn:data(ws:getRating(
              <r:getRating>
                <r:lName>{fn:data($c/LAST_NAME)}</r:lName>
                <r:ssn>{fn:data($c/SSN)}</r:ssn>
              </r:getRating>)/r:getRatingResult)"#;
        let first = run(&w, query);
        let second = run(&w, query);
        assert_eq!(first, second);
        assert_eq!(w.rating.call_count(), 1, "second call served from cache");
        assert_eq!(w.runtime.stats().cache_hits, 1);
    }

    #[test]
    fn failover_to_alternate_source() {
        let w = world();
        w.db2.set_available(false);
        let query = r#"for $c in c:CUSTOMER()
               where $c/CID eq "C1"
               return <CARDS>{
                 fn-bea:fail-over(
                   for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN,
                   <UNAVAILABLE/>)
               }</CARDS>"#;
        let out = run(&w, query);
        let s = as_xml(&out);
        assert!(s.contains("<UNAVAILABLE/>"), "{s}");
        assert_eq!(w.runtime.stats().failovers_taken, 1);
        w.db2.set_available(true);
        let out = run(&w, query);
        assert!(as_xml(&out).contains("4000-1"));
    }

    #[test]
    fn timeout_returns_alternate_for_slow_source() {
        let w = world();
        w.rating.set_latency(std::time::Duration::from_millis(100));
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               where $c/CID eq "C1"
               return <R>{
                 fn-bea:timeout(
                   fn:data(ws:getRating(
                     <r:getRating>
                       <r:lName>{fn:data($c/LAST_NAME)}</r:lName>
                       <r:ssn>{fn:data($c/SSN)}</r:ssn>
                     </r:getRating>)/r:getRatingResult),
                   10,
                   -1)
               }</R>"#,
        );
        assert_eq!(as_xml(&out), "<R>-1</R>");
        assert_eq!(w.runtime.stats().timeouts_fired, 1);
    }

    #[test]
    fn async_overlaps_independent_latencies() {
        let w = world();
        w.rating.set_latency(std::time::Duration::from_millis(30));
        let query = r#"for $c in c:CUSTOMER()
            where $c/CID eq "C1"
            return <BOTH>{
              fn-bea:async(<A>{fn:data(ws:getRating(
                <r:getRating><r:lName>x</r:lName><r:ssn>1</r:ssn></r:getRating>)/r:getRatingResult)}</A>),
              fn-bea:async(<B>{fn:data(ws:getRating(
                <r:getRating><r:lName>y</r:lName><r:ssn>2</r:ssn></r:getRating>)/r:getRatingResult)}</B>)
            }</BOTH>"#;
        let t0 = std::time::Instant::now();
        let out = run(&w, query);
        let elapsed = t0.elapsed();
        let s = as_xml(&out);
        assert!(s.contains("<A>") && s.contains("<B>"), "{s}");
        assert!(
            elapsed < std::time::Duration::from_millis(55),
            "two 30ms calls should overlap, took {elapsed:?}"
        );
        assert_eq!(w.runtime.stats().async_spawns, 2);
    }

    #[test]
    fn conditional_construction_omits_empty() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               return <CUST><ID>{fn:data($c/CID)}</ID><FIRST_NAME?>{fn:data($c/FIRST_NAME)}</FIRST_NAME></CUST>"#,
        );
        let s = as_xml(&out);
        assert!(
            s.contains("<CUST><ID>C1</ID><FIRST_NAME>Ann</FIRST_NAME></CUST>"),
            "{s}"
        );
        assert!(s.contains("<CUST><ID>C2</ID></CUST>"), "{s}");
    }

    #[test]
    fn navigation_function_executes() {
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER(), $o in c:getORDER($c)
               return <X>{ $c/CID, $o/OID }</X>"#,
        );
        assert_eq!(as_xml(&out).matches("<X>").count(), 3);
        assert_eq!(
            w.db1.stats().roundtrips,
            1,
            "navigation joined into one statement"
        );
    }

    #[test]
    fn order_by_and_subsequence_pushed() {
        let w = world();
        let out = run(
            &w,
            r#"let $cs := for $c in c:CUSTOMER()
                         order by $c/CID descending
                         return $c/CID
               return subsequence($cs, 2, 1)"#,
        );
        assert_eq!(as_xml(&out), "<CID>C2</CID>");
        let sql = &w.db1.stats().statements[0];
        assert!(sql.contains("ORDER BY"), "{sql}");
        assert!(sql.contains("ROWNUM") || sql.contains("rn"), "{sql}");
    }

    #[test]
    fn view_deployed_and_called_with_parameters() {
        let w = world();
        w.compiler
            .deploy_module(&format!(
                "{PROLOG}
                 declare namespace t = \"urn:t\";
                 declare function t:byId($id as xs:string) as element(CUSTOMER)* {{
                   for $c in c:CUSTOMER() where $c/CID eq $id return $c
                 }};"
            ))
            .unwrap();
        let q = w
            .compiler
            .compile_call(&QName::new("urn:t", "byId"))
            .unwrap();
        let out = w
            .runtime
            .execute(&q, &[("arg0", vec![Item::str("C3")])])
            .unwrap();
        let s = as_xml(&out);
        assert!(s.contains("<CID>C3</CID>"), "{s}");
        assert!(s.contains("<LAST_NAME>Jones</LAST_NAME>"), "{s}");
        assert!(!s.contains("<SSN>"), "{s}");
    }

    #[test]
    fn middleware_group_fallback() {
        // grouping with regrouped values used raw (the §3.1 example)
        let w = world();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER()
               let $cid := $c/CID
               group $cid as $ids by $c/LAST_NAME as $name
               return <CUSTOMER_IDS name="{$name}">{ $ids }</CUSTOMER_IDS>"#,
        );
        let s = as_xml(&out);
        assert!(
            s.contains(r#"<CUSTOMER_IDS name="Jones"><CID>C1</CID><CID>C3</CID></CUSTOMER_IDS>"#),
            "{s}"
        );
        assert!(
            s.contains(r#"<CUSTOMER_IDS name="Smith"><CID>C2</CID></CUSTOMER_IDS>"#),
            "{s}"
        );
        let st = w.runtime.stats();
        assert!(st.streaming_groups + st.sorted_groups >= 1);
    }

    #[test]
    fn parallel_execution_is_byte_identical_and_uses_the_pool() {
        // one query per partitionable tail: grouped pre-aggregation,
        // parallel sort with merge, and plain per-morsel map; morsel
        // size 1 over three ORDER rows forces real fan-out
        let queries = [
            r#"for $o in c:ORDER()
               let $oid := $o/OID
               group $oid as $ids by fn:substring($o/CID, 1, 2) as $k
               return <G key="{$k}">{ fn:count($ids) }</G>"#,
            r#"for $o in c:ORDER()
               order by fn:substring($o/CID, 1, 2) descending, $o/OID ascending
               return $o/OID"#,
            r#"for $o in c:ORDER()
               let $a := $o/AMOUNT
               where fn:count($a) ge 1
               return <O>{ $o/OID, $a }</O>"#,
        ];
        for query in queries {
            let w = world();
            let q = w
                .compiler
                .compile_query(&format!("{PROLOG}\n{query}"))
                .unwrap_or_else(|d| panic!("compile failed: {d:?}"));
            assert!(
                !q.parallel.is_empty(),
                "expected a parallel mark for: {query}\nplan: {:#?}",
                q.plan
            );
            let expect = as_xml(&w.runtime.execute(&q, &[]).unwrap());
            for workers in [2usize, 4] {
                let tuning = ExecTuning {
                    workers,
                    morsel_size: 1,
                };
                let ex = w
                    .runtime
                    .execute_tuned(&q, &[], TraceLevel::Off, None, tuning)
                    .unwrap();
                assert_eq!(as_xml(&ex.items), expect, "workers={workers}: {query}");
                assert!(
                    ex.per_query_stats.morsels_executed > 0,
                    "workers={workers} never claimed a morsel: {query}"
                );
            }
            assert!(w.runtime.inner().pool.threads_spawned() > 0);
        }
    }

    #[test]
    fn ppk_respects_latency_economics() {
        let w = world();
        w.db2.set_latency(LatencyModel::lan(2000));
        let t0 = std::time::Instant::now();
        run(
            &w,
            r#"for $c in c:CUSTOMER()
               return <P>{ $c/CID, <CARDS>{
                 for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
               }</CARDS> }</P>"#,
        );
        let elapsed = t0.elapsed();
        assert_eq!(w.db2.stats().roundtrips, 1);
        assert!(
            elapsed < std::time::Duration::from_millis(15),
            "one 2ms roundtrip, not three (with scheduling headroom): {elapsed:?}"
        );
    }

    #[test]
    fn ppk_results_identical_across_prefetch_depths() {
        // the cross-source dependent join with outer-join semantics
        // (C3 has no cards) must produce byte-identical output whether
        // blocks are fetched on demand (depth 0), double-buffered
        // (depth 1), or deeply pipelined (depth 4); block size 1 forces
        // one block per customer so prefetch actually engages
        let query = r#"for $c in c:CUSTOMER()
            return <P>{ $c/CID, <CARDS>{
              for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
            }</CARDS> }</P>"#;
        let mut outputs = Vec::new();
        for depth in [0usize, 1, 4] {
            let w = world_opts(|o| {
                o.ppk_block_size = 1;
                o.ppk_prefetch_depth = depth;
            });
            let out = as_xml(&run(&w, query));
            let st = w.runtime.stats();
            assert_eq!(st.ppk_blocks, 3, "depth {depth}: one block per customer");
            if depth == 0 {
                assert_eq!(st.ppk_prefetched_blocks, 0);
            } else {
                assert!(st.ppk_prefetched_blocks > 0, "depth {depth} must prefetch");
            }
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "depth 1 changed results");
        assert_eq!(outputs[0], outputs[2], "depth 4 changed results");
        assert!(
            outputs[0].contains("<P><CID>C3</CID><CARDS/></P>"),
            "{}",
            outputs[0]
        );
        assert!(
            outputs[0].find("C1") < outputs[0].find("C2")
                && outputs[0].find("C2") < outputs[0].find("C3"),
            "outer order must be preserved: {}",
            outputs[0]
        );
    }

    #[test]
    fn shared_runtime_cache_survives_eight_threads() {
        let w = world();
        w.runtime.cache().enable(
            QName::new("urn:ratingWS", "getRating"),
            std::time::Duration::from_secs(60),
        );
        let query = r#"for $c in c:CUSTOMER()
            where exists($c/SSN)
            return fn:data(ws:getRating(
              <r:getRating>
                <r:lName>{fn:data($c/LAST_NAME)}</r:lName>
                <r:ssn>{fn:data($c/SSN)}</r:ssn>
              </r:getRating>)/r:getRatingResult)"#;
        let q = w
            .compiler
            .compile_query(&format!("{PROLOG}\n{query}"))
            .unwrap_or_else(|d| panic!("compile failed: {d:?}"));
        const THREADS: usize = 8;
        const ITERS: usize = 25;
        let expected = w.runtime.execute(&q, &[]).unwrap();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let rt = w.runtime.clone();
                let q = &q;
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..ITERS {
                        let out = rt.execute(q, &[]).unwrap();
                        assert_eq!(&out, expected, "cached result diverged");
                    }
                });
            }
        });
        let st = w.runtime.stats();
        // 2 cache-enabled calls per execution (C1 and C2), every one a
        // hit or a miss — the counters must balance exactly
        let attempts = ((THREADS * ITERS + 1) * 2) as u64;
        assert_eq!(st.cache_hits + st.cache_misses, attempts);
        // every miss ran the service; racing first calls allow a few
        assert_eq!(w.rating.call_count(), st.cache_misses);
        assert!(
            st.cache_misses >= 2,
            "two distinct keys must each miss once"
        );
        assert!(
            st.cache_misses <= (2 * (THREADS + 1)) as u64,
            "cache ineffective: {} misses",
            st.cache_misses
        );
        assert_eq!(w.runtime.cache().len(), 2);
    }

    #[test]
    fn independent_scans_run_in_parallel() {
        let w = world();
        w.db1.set_latency(LatencyModel::lan(20_000)); // 20ms
        w.db2.set_latency(LatencyModel::lan(20_000));
        // CUSTOMER (db1) and CREDIT_CARD (db2) are uncorrelated scans:
        // their first fetches must overlap instead of running serially
        let t0 = std::time::Instant::now();
        let out = run(
            &w,
            r#"for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
               where $c/CID eq "C1" and $k/CID eq "C2"
               return <Z>{ $c/CID, $k/CCN }</Z>"#,
        );
        let elapsed = t0.elapsed();
        assert_eq!(as_xml(&out), "<Z><CID>C1</CID><CCN>4000-3</CCN></Z>");
        assert!(w.runtime.stats().parallel_scans >= 1);
        assert!(
            elapsed < std::time::Duration::from_millis(36),
            "two 20ms scans should overlap, took {elapsed:?}"
        );
        let peak = w.db1.stats().peak_inflight.max(w.db2.stats().peak_inflight);
        assert!(peak >= 1, "latency windows were never entered");
    }

    #[test]
    fn errors_propagate_cleanly() {
        let w = world();
        w.db1.set_available(false);
        let q = w
            .compiler
            .compile_query(&format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID"))
            .unwrap();
        let err = w.runtime.execute(&q, &[]).unwrap_err();
        assert!(matches!(err, RtError::Adaptor(_)), "{err}");
    }
}
