//! The shared worker pool for morsel-driven execution.
//!
//! One pool lives in the runtime and serves every query. A query's
//! driving thread calls [`WorkerPool::run`] with a *work function* —
//! typically "claim morsel indices from a [`MorselQueue`] until empty,
//! evaluate each, park the result in its output slot" — and a count of
//! extra workers it wants. Pool threads that pick the job up call the
//! same function; the driving thread **also** runs it (it would
//! otherwise just block), so `run(n - 1, work)` yields up to `n`
//! executions of `work` in parallel and degrades gracefully to plain
//! sequential execution when the pool is saturated: helpers are an
//! upper bound, never a requirement, which is what makes a shared pool
//! safe under concurrent queries — no query can deadlock waiting for
//! workers another query holds.
//!
//! The work function borrows the caller's stack (the morsel queue, the
//! output slots, the `ExecCtx`), which is sound because `run` does not
//! return — by normal exit *or* unwind — until every helper that
//! started the work function has finished it, and the job is closed
//! first so no helper can start late. Worker panics are caught,
//! recorded, and re-raised on the calling thread after the join.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Upper bound on pool threads, whatever worker counts queries ask for.
const MAX_POOL_THREADS: usize = 32;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct JobSt {
    /// Helpers that may still *start* the work function. Decremented on
    /// start; zeroed when the job closes.
    helpers_wanted: usize,
    /// Helpers currently inside the work function.
    active: usize,
    /// Set by the owner when it is done: late helpers must discard the
    /// job without touching `work`.
    closed: bool,
    /// A helper's work invocation panicked.
    panicked: bool,
}

/// A posted unit of shared work. `work` is the caller's borrowed
/// closure with its lifetime erased; see the invariants on [`JobState`].
struct JobState {
    /// SAFETY invariant: dereferenced only while the owning
    /// [`WorkerPool::run`] frame is alive — helpers check `closed`
    /// under the lock before starting, and `run`'s close guard waits
    /// for `active == 0` before its frame (and the borrow) can die.
    work: *const (dyn Fn() + Sync),
    st: Mutex<JobSt>,
    cv: Condvar,
}

// SAFETY: the raw `work` pointer is what blocks the auto-traits. It
// points at a `Sync` closure (shared calls are fine) and the
// closed/active protocol above keeps it from dangling.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

impl JobState {
    /// Run the work function once as a helper, or discard the job if it
    /// is closed or already fully subscribed.
    fn help(&self) {
        {
            let mut st = lock(&self.st);
            if st.closed || st.helpers_wanted == 0 {
                return;
            }
            st.helpers_wanted -= 1;
            st.active += 1;
        }
        // SAFETY: per the JobState invariant — we were admitted under
        // the lock while the job was open, so the owner is parked in
        // `run` until our `active` decrement below.
        let work = unsafe { &*self.work };
        let result = catch_unwind(AssertUnwindSafe(work));
        let mut st = lock(&self.st);
        st.active -= 1;
        if result.is_err() {
            st.panicked = true;
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Closes the job and drains helpers on scope exit — including an
/// unwind of the caller's own work invocation, which is exactly when
/// leaving early would dangle the borrow.
struct CloseGuard<'a>(&'a JobState);

impl CloseGuard<'_> {
    fn close_and_drain(&self) -> bool {
        let mut st = lock(&self.0.st);
        st.closed = true;
        st.helpers_wanted = 0;
        while st.active > 0 {
            st = self.0.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.panicked
    }
}

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.close_and_drain();
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<JobState>>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// The shared, lazily-grown worker pool.
///
/// Threads are spawned on first demand (a server configured for
/// single-threaded execution never starts any) up to
/// `MAX_POOL_THREADS`, and joined on drop.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// An empty pool; threads appear on first [`run`](WorkerPool::run).
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            threads: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Threads spawned so far (for tests).
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    fn ensure_threads(&self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_THREADS);
        if self.spawned.load(Ordering::Relaxed) >= wanted {
            return;
        }
        let mut threads = lock(&self.threads);
        while self.spawned.load(Ordering::Relaxed) < wanted {
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name("aldsp-worker".into())
                .spawn(move || worker_loop(shared))
                .expect("spawn pool worker");
            threads.push(handle);
            self.spawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Run `work` on the calling thread and on up to `extra_workers`
    /// pool threads concurrently; return once **all** invocations have
    /// finished. `extra_workers == 0` is a plain sequential call. If a
    /// helper's invocation panicked, the panic is re-raised here.
    pub fn run(&self, extra_workers: usize, work: &(dyn Fn() + Sync)) {
        if extra_workers == 0 {
            work();
            return;
        }
        self.ensure_threads(extra_workers);
        // SAFETY: erasing the borrow's lifetime; the CloseGuard below
        // upholds the JobState invariant that `work` outlives every
        // dereference.
        let work_ptr: *const (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync)>(work) };
        let job = Arc::new(JobState {
            work: work_ptr,
            st: Mutex::new(JobSt {
                helpers_wanted: extra_workers,
                active: 0,
                closed: false,
                panicked: false,
            }),
            cv: Condvar::new(),
        });
        {
            let mut q = lock(&self.shared.queue);
            for _ in 0..extra_workers {
                q.push_back(Arc::clone(&job));
            }
        }
        self.shared.cv.notify_all();
        let guard = CloseGuard(&job);
        let own = catch_unwind(AssertUnwindSafe(work));
        let helper_panicked = guard.close_and_drain();
        std::mem::forget(guard); // already drained
        if let Err(p) = own {
            resume_unwind(p);
        }
        if helper_panicked {
            panic!("worker panicked during parallel execution");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        for t in lock(&self.threads).drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.help();
    }
}

/// A shared counter workers claim morsel indices from: each index in
/// `0..total` is handed out exactly once, in order, so the fastest
/// worker takes the most morsels and stragglers never block the rest.
pub struct MorselQueue {
    next: AtomicUsize,
    total: usize,
}

impl MorselQueue {
    /// A queue over `total` morsels.
    pub fn new(total: usize) -> MorselQueue {
        MorselQueue {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Claim the next unclaimed morsel index, or `None` when exhausted.
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Number of morsels in the queue.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Split `rows` items into morsels of at most `morsel_size`, returning
/// the half-open index ranges. `morsel_size == 0` is treated as 1.
pub fn morsel_ranges(rows: usize, morsel_size: usize) -> Vec<std::ops::Range<usize>> {
    let step = morsel_size.max(1);
    let mut out = Vec::with_capacity(rows.div_ceil(step));
    let mut lo = 0;
    while lo < rows {
        let hi = (lo + step).min(rows);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_extra_workers_runs_inline_without_threads() {
        let pool = WorkerPool::new();
        let hits = AtomicU64::new(0);
        pool.run(0, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(pool.threads_spawned(), 0);
    }

    #[test]
    fn all_morsels_claimed_exactly_once() {
        let pool = WorkerPool::new();
        let queue = MorselQueue::new(1000);
        let claimed: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(3, &|| {
            while let Some(i) = queue.claim() {
                claimed[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in claimed.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "morsel {i}");
        }
    }

    #[test]
    fn caller_participates_even_when_pool_is_starved() {
        // a pool whose threads are all wedged on another job still
        // completes: the caller runs the work function itself
        let pool = WorkerPool::new();
        let done = AtomicU64::new(0);
        let release = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                pool.run(MAX_POOL_THREADS, &|| {
                    while !release.load(Ordering::Relaxed) {
                        std::thread::yield_now();
                    }
                });
            });
            // all pool threads are (or will be) busy above; this run
            // must still finish on the calling thread alone
            pool.run(2, &|| {
                done.fetch_add(1, Ordering::Relaxed);
            });
            assert!(done.load(Ordering::Relaxed) >= 1);
            release.store(true, Ordering::Relaxed);
        });
    }

    #[test]
    fn helper_panic_is_reraised_at_caller() {
        let pool = WorkerPool::new();
        let queue = MorselQueue::new(64);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|| {
                while let Some(i) = queue.claim() {
                    assert!(i != 13, "boom");
                }
            });
        }));
        assert!(result.is_err());
        // the pool survives the panic and keeps serving jobs
        let hits = AtomicU64::new(0);
        pool.run(2, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_under_load_joins_cleanly() {
        // stress the drop path: pools die while jobs are in flight on
        // other threads' stacks, repeatedly
        for _ in 0..50 {
            let pool = WorkerPool::new();
            let queue = MorselQueue::new(256);
            let sum = AtomicU64::new(0);
            pool.run(4, &|| {
                while let Some(i) = queue.claim() {
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), 255 * 256 / 2);
            drop(pool); // must join without hanging or leaking
        }
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        let pool = WorkerPool::new();
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    let queue = MorselQueue::new(100);
                    pool.run(3, &|| {
                        while let Some(i) = queue.claim() {
                            total.fetch_add(i as u64, Ordering::Relaxed);
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (99 * 100 / 2));
    }

    #[test]
    fn morsel_ranges_cover_exactly() {
        assert_eq!(morsel_ranges(0, 10), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(morsel_ranges(5, 10), vec![0..5]);
        assert_eq!(morsel_ranges(10, 10), vec![0..10]);
        assert_eq!(morsel_ranges(25, 10), vec![0..10, 10..20, 20..25]);
        assert_eq!(morsel_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }
}
