//! Variable environments.
//!
//! The runtime's FLWOR tuples are variable bindings (§5.1 notes that
//! "XQuery's FLWOR variable bindings imply support for tuples internally
//! in the runtime"). [`Env`] is a persistent (shared-tail) binding list:
//! extending it is O(1) and cloning is a refcount bump, so millions of
//! tuples can flow through the clause pipeline without copying maps —
//! the IR-level analogue of the paper's `concat-tuples` discipline.

use aldsp_xdm::item::Sequence;
use std::sync::Arc;

/// A persistent variable environment.
#[derive(Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

struct EnvNode {
    var: String,
    value: Sequence,
    parent: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extend with one binding (shadows earlier bindings of the same
    /// name, though translation makes names unique).
    pub fn bind(&self, var: &str, value: Sequence) -> Env {
        Env(Some(Arc::new(EnvNode {
            var: var.to_string(),
            value,
            parent: self.clone(),
        })))
    }

    /// Look up a variable.
    pub fn get(&self, var: &str) -> Option<&Sequence> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.var == var {
                return Some(&node.value);
            }
            cur = &node.parent;
        }
        None
    }

    /// Number of bindings (diagnostics).
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.parent;
        }
        n
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names = Vec::new();
        let mut cur = self;
        while let Some(node) = &cur.0 {
            names.push(node.var.as_str());
            cur = &node.parent;
        }
        write!(f, "Env[{}]", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::item::Item;

    #[test]
    fn bind_lookup_shadow() {
        let e = Env::empty();
        assert!(e.get("x").is_none());
        let e1 = e.bind("x", vec![Item::int(1)]);
        let e2 = e1.bind("y", vec![Item::int(2)]);
        let e3 = e2.bind("x", vec![Item::int(3)]);
        assert_eq!(e1.get("x"), Some(&vec![Item::int(1)]));
        assert_eq!(e3.get("x"), Some(&vec![Item::int(3)]));
        assert_eq!(e3.get("y"), Some(&vec![Item::int(2)]));
        assert_eq!(e3.depth(), 3);
        // e1 unaffected by later extension
        assert_eq!(e1.depth(), 1);
    }

    #[test]
    fn clone_shares_tail() {
        let base = Env::empty().bind("a", vec![Item::int(1)]);
        let b1 = base.bind("b", vec![Item::int(2)]);
        let b2 = base.bind("b", vec![Item::int(3)]);
        assert_eq!(b1.get("b"), Some(&vec![Item::int(2)]));
        assert_eq!(b2.get("b"), Some(&vec![Item::int(3)]));
        assert_eq!(b1.get("a"), b2.get("a"));
    }
}
