//! Variable environments.
//!
//! The runtime's FLWOR tuples are variable bindings (§5.1 notes that
//! "XQuery's FLWOR variable bindings imply support for tuples internally
//! in the runtime"). [`Env`] is the paper's Figure 4 *array tuple* at IR
//! granularity: a fixed-width copy-on-write frame whose slots were
//! assigned at compile time by the frame-layout pass, so "the fields of
//! a tuple can be directly accessed" — a variable read is an indexed
//! load, cloning a tuple is one refcount bump, and binding copies one
//! cell per slot instead of allocating a name node.
//!
//! Cells are specialized for cardinality: the overwhelmingly common
//! single-item binding (a `for` item, a SQL column value) is stored
//! inline with **zero** heap allocation; only genuine multi-item
//! sequences go behind an `Arc`.
//!
//! [`NamedEnv`] preserves the pre-slot representation (a persistent
//! shared-tail list searched by name) for comparison benchmarks.

use aldsp_xdm::item::{Item, Sequence};
use std::sync::Arc;

/// One frame cell. `Unbound` (no binding) is distinct from `Empty`
/// (bound to the empty sequence): reading the former is a plan error,
/// the latter a legal `()`.
#[derive(Clone, Default)]
enum Cell {
    #[default]
    Unbound,
    Empty,
    /// The hot case: a singleton sequence, held inline (no allocation).
    One(Item),
    Many(Arc<Sequence>),
}

impl Cell {
    fn of(mut value: Sequence) -> Cell {
        match value.len() {
            0 => Cell::Empty,
            1 => Cell::One(value.pop().expect("len 1")),
            _ => Cell::Many(Arc::new(value)),
        }
    }

    #[inline]
    fn as_slice(&self) -> Option<&[Item]> {
        match self {
            Cell::Unbound => None,
            Cell::Empty => Some(&[]),
            Cell::One(item) => Some(std::slice::from_ref(item)),
            Cell::Many(s) => Some(s.as_slice()),
        }
    }
}

/// A slot's value read out for sharing rather than borrowing: the
/// expression VM keeps whole sequences alive across stack pushes
/// without copying items, so `Many` hands back the `Arc` (one refcount
/// bump) and only the singleton clones its inline item.
#[derive(Clone, Debug)]
pub enum SlotValue {
    Empty,
    One(Item),
    Many(Arc<Sequence>),
}

/// A fixed-width copy-on-write tuple frame. Rebinding copies the cell
/// array (pointer-sized cells plus one inline `Item`) and shares every
/// untouched sequence with the parent tuple.
#[derive(Clone, Default)]
pub struct Env {
    slots: Arc<[Cell]>,
}

impl Env {
    /// The empty (zero-width) environment.
    pub fn empty() -> Env {
        Env::default()
    }

    /// An all-unbound frame of `width` slots.
    pub fn with_width(width: usize) -> Env {
        Env {
            slots: std::iter::repeat_with(Cell::default).take(width).collect(),
        }
    }

    /// The frame width (number of slots).
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Read a slot. Out-of-range slots (including the compiler's
    /// `NO_SLOT` sentinel) read as unbound.
    #[inline]
    pub fn get_slot(&self, slot: u32) -> Option<&[Item]> {
        self.slots.get(slot as usize)?.as_slice()
    }

    /// Read a slot as a shareable value (see [`SlotValue`]); `None`
    /// when unbound or out of range.
    #[inline]
    pub fn slot_value(&self, slot: u32) -> Option<SlotValue> {
        match self.slots.get(slot as usize)? {
            Cell::Unbound => None,
            Cell::Empty => Some(SlotValue::Empty),
            Cell::One(item) => Some(SlotValue::One(item.clone())),
            Cell::Many(s) => Some(SlotValue::Many(Arc::clone(s))),
        }
    }

    /// Rebuild the frame with `cell_at(j)` replacing slot `j` where it
    /// returns `Some` — a single allocation (the iterator's length is
    /// trusted, so `collect` fills the new `Arc<[Cell]>` in place,
    /// skipping the writer path's intermediate `Vec`).
    #[inline]
    fn rebind_with(&self, mut cell_at: impl FnMut(usize) -> Option<Cell>) -> Env {
        Env {
            slots: self
                .slots
                .iter()
                .enumerate()
                .map(|(j, c)| cell_at(j).unwrap_or_else(|| c.clone()))
                .collect(),
        }
    }

    /// Bind one slot to a sequence, copy-on-write: shares every other
    /// cell with `self`. Grows the frame if `slot` is beyond the
    /// current width.
    pub fn bind_slot(&self, slot: u32, value: Sequence) -> Env {
        if slot as usize >= self.slots.len() {
            let mut w = self.writer();
            w.set(slot, value);
            return w.finish();
        }
        let mut cell = Some(Cell::of(value));
        self.rebind_with(|j| {
            if j == slot as usize {
                Some(cell.take().expect("slot visited once"))
            } else {
                None
            }
        })
    }

    /// Bind one slot to a singleton — the zero-allocation hot path of
    /// per-item `for` iteration.
    pub fn bind_one(&self, slot: u32, item: Item) -> Env {
        if slot as usize >= self.slots.len() {
            let mut w = self.writer();
            w.set_item(slot, item);
            return w.finish();
        }
        let mut cell = Some(Cell::One(item));
        self.rebind_with(|j| {
            if j == slot as usize {
                Some(cell.take().expect("slot visited once"))
            } else {
                None
            }
        })
    }

    /// Bind one slot, consuming the frame: when this tuple is the sole
    /// owner of its cell array (the common pipeline shape — a source
    /// row's frame flows into a `let` and is dropped as soon as the
    /// extended frame exists), the write happens in place with no
    /// allocation. A shared frame falls back to the copy-on-write
    /// rebind, so observable semantics are identical.
    pub fn bind_val_owned(mut self, slot: u32, value: crate::vm::Val) -> Env {
        use crate::vm::Val;
        if slot as usize >= self.slots.len() {
            return self.bind_slot(slot, value.into_sequence());
        }
        let cell = match value {
            Val::Empty => Cell::Empty,
            Val::One(item) => Cell::One(item),
            Val::Shared(s) => Cell::Many(s),
            Val::Owned(s) => Cell::of(s),
        };
        match Arc::get_mut(&mut self.slots) {
            Some(cells) => {
                cells[slot as usize] = cell;
                self
            }
            None => {
                let mut cell = Some(cell);
                self.rebind_with(|j| {
                    if j == slot as usize {
                        Some(cell.take().expect("slot visited once"))
                    } else {
                        None
                    }
                })
            }
        }
    }

    /// [`Env::bind_val_owned`] for an already-materialized sequence —
    /// the walker's `let` fallback.
    pub fn bind_seq_owned(mut self, slot: u32, value: Sequence) -> Env {
        if slot as usize >= self.slots.len() {
            return self.bind_slot(slot, value);
        }
        let cell = Cell::of(value);
        match Arc::get_mut(&mut self.slots) {
            Some(cells) => {
                cells[slot as usize] = cell;
                self
            }
            None => {
                let mut cell = Some(cell);
                self.rebind_with(|j| {
                    if j == slot as usize {
                        Some(cell.take().expect("slot visited once"))
                    } else {
                        None
                    }
                })
            }
        }
    }

    /// Bind `slots[k]` to `value_at(k)` for every `k` (`None` = the
    /// empty sequence) in one allocation — the SQL row-bind shape,
    /// which writes a handful of column slots per source row.
    pub fn bind_indexed(
        &self,
        slots: &[u32],
        mut value_at: impl FnMut(usize) -> Option<Item>,
    ) -> Env {
        if slots.iter().any(|&s| s as usize >= self.slots.len()) {
            let mut w = self.writer();
            for (k, &s) in slots.iter().enumerate() {
                match value_at(k) {
                    Some(item) => w.set_item(s, item),
                    None => w.set_empty(s),
                }
            }
            return w.finish();
        }
        self.rebind_with(|j| {
            let k = slots.iter().position(|&s| s as usize == j)?;
            Some(match value_at(k) {
                Some(item) => Cell::One(item),
                None => Cell::Empty,
            })
        })
    }

    /// Start a multi-slot rebind: one copy of the cell array, any
    /// number of writes, then [`EnvWriter::finish`].
    pub fn writer(&self) -> EnvWriter {
        EnvWriter {
            slots: self.slots.to_vec(),
        }
    }

    /// Number of bound slots (diagnostics).
    pub fn depth(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Cell::Unbound))
            .count()
    }
}

/// An in-progress copy-on-write rebind of an [`Env`] — the single-copy
/// path for operators that bind several columns per tuple (SQL row
/// binds, group-by emission).
pub struct EnvWriter {
    slots: Vec<Cell>,
}

impl EnvWriter {
    fn cell(&mut self, slot: u32) -> &mut Cell {
        let i = slot as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, Cell::default);
        }
        &mut self.slots[i]
    }

    /// Write one slot (growing the frame if needed).
    pub fn set(&mut self, slot: u32, value: Sequence) {
        *self.cell(slot) = Cell::of(value);
    }

    /// Write a singleton without building a sequence.
    pub fn set_item(&mut self, slot: u32, item: Item) {
        *self.cell(slot) = Cell::One(item);
    }

    /// Write the empty sequence (bound, but `()`).
    pub fn set_empty(&mut self, slot: u32) {
        *self.cell(slot) = Cell::Empty;
    }

    /// Freeze into an immutable frame.
    pub fn finish(self) -> Env {
        Env {
            slots: self.slots.into(),
        }
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bound: Vec<String> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_slice().map(|_| i.to_string()))
            .collect();
        write!(
            f,
            "Env[{}/{}: {}]",
            bound.len(),
            self.width(),
            bound.join(", ")
        )
    }
}

/// The pre-slot environment: a persistent (shared-tail) binding list
/// extended in O(1) and searched by name. Kept as the baseline the
/// `tuple_pipeline` bench compares slot frames against.
#[derive(Clone, Default)]
pub struct NamedEnv(Option<Arc<NamedNode>>);

struct NamedNode {
    var: String,
    value: Sequence,
    parent: NamedEnv,
}

impl NamedEnv {
    /// The empty environment.
    pub fn empty() -> NamedEnv {
        NamedEnv(None)
    }

    /// Extend with one binding (shadows earlier bindings of the same
    /// name).
    pub fn bind(&self, var: &str, value: Sequence) -> NamedEnv {
        NamedEnv(Some(Arc::new(NamedNode {
            var: var.to_string(),
            value,
            parent: self.clone(),
        })))
    }

    /// Look up a variable by name.
    pub fn get(&self, var: &str) -> Option<&Sequence> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.var == var {
                return Some(&node.value);
            }
            cur = &node.parent;
        }
        None
    }

    /// Number of bindings.
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.parent;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_bind_lookup() {
        let e = Env::with_width(3);
        assert!(e.get_slot(0).is_none());
        let e1 = e.bind_slot(0, vec![Item::int(1)]);
        let e2 = e1.bind_slot(2, vec![Item::int(2)]);
        assert_eq!(e1.get_slot(0), Some(&[Item::int(1)][..]));
        assert_eq!(e2.get_slot(0), Some(&[Item::int(1)][..]));
        assert_eq!(e2.get_slot(2), Some(&[Item::int(2)][..]));
        // e1 unaffected by the later bind
        assert!(e1.get_slot(2).is_none());
        assert_eq!(e2.depth(), 2);
    }

    #[test]
    fn rebind_is_copy_on_write() {
        let base = Env::with_width(2).bind_slot(0, vec![Item::int(1)]);
        let b1 = base.bind_one(1, Item::int(2));
        let b2 = base.bind_one(1, Item::int(3));
        assert_eq!(b1.get_slot(1), Some(&[Item::int(2)][..]));
        assert_eq!(b2.get_slot(1), Some(&[Item::int(3)][..]));
        assert_eq!(b1.get_slot(0), b2.get_slot(0));
    }

    #[test]
    fn empty_binding_is_bound_not_unbound() {
        let e = Env::with_width(2).bind_slot(0, vec![]);
        assert_eq!(e.get_slot(0), Some(&[][..]));
        assert!(e.get_slot(1).is_none());
        assert_eq!(e.depth(), 1);
    }

    #[test]
    fn out_of_range_reads_unbound_and_writes_grow() {
        let e = Env::empty();
        assert!(e.get_slot(5).is_none());
        assert!(e.get_slot(u32::MAX).is_none());
        let e1 = e.bind_slot(2, vec![Item::int(9)]);
        assert_eq!(e1.width(), 3);
        assert_eq!(e1.get_slot(2), Some(&[Item::int(9)][..]));
    }

    #[test]
    fn writer_batches_multiple_binds() {
        let mut w = Env::with_width(3).writer();
        w.set(0, vec![Item::int(1), Item::int(7)]);
        w.set_item(1, Item::int(2));
        w.set_empty(2);
        let e = w.finish();
        assert_eq!(e.get_slot(0), Some(&[Item::int(1), Item::int(7)][..]));
        assert_eq!(e.get_slot(1), Some(&[Item::int(2)][..]));
        assert_eq!(e.get_slot(2), Some(&[][..]));
    }

    #[test]
    fn named_env_bind_lookup_shadow() {
        let e = NamedEnv::empty();
        assert!(e.get("x").is_none());
        let e1 = e.bind("x", vec![Item::int(1)]);
        let e2 = e1.bind("y", vec![Item::int(2)]);
        let e3 = e2.bind("x", vec![Item::int(3)]);
        assert_eq!(e1.get("x"), Some(&vec![Item::int(1)]));
        assert_eq!(e3.get("x"), Some(&vec![Item::int(3)]));
        assert_eq!(e3.get("y"), Some(&vec![Item::int(2)]));
        assert_eq!(e3.depth(), 3);
        assert_eq!(e1.depth(), 1);
    }
}
