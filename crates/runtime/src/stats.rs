//! Execution statistics.
//!
//! The observable counters behind the paper's performance claims: PP-k
//! block counts (roundtrips, §4.2), grouping memory behavior (§4.2/§5.2
//! — streaming vs sort), async offloads (§5.4), cache effectiveness
//! (§5.5) and failovers taken (§5.6). All counters are atomic; snapshot
//! with [`ExecStats::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic execution counters (lives inside the runtime).
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Physical source invocations (table scans, nav calls, services…).
    pub source_calls: AtomicU64,
    /// SQL statements executed (includes PP-k block fetches).
    pub sql_statements: AtomicU64,
    /// PP-k blocks fetched.
    pub ppk_blocks: AtomicU64,
    /// Tuples that flowed through PP-k operators.
    pub ppk_outer_tuples: AtomicU64,
    /// PP-k blocks whose fetch was issued by a prefetch thread (i.e.
    /// overlapped with local-join work rather than fetched on demand).
    pub ppk_prefetched_blocks: AtomicU64,
    /// Nanoseconds the PP-k consumer spent blocked waiting for an
    /// in-flight prefetched block to arrive.
    pub ppk_prefetch_wait_ns: AtomicU64,
    /// FLWOR pipelines whose independent source scans were kicked off
    /// in parallel rather than strictly left-to-right.
    pub parallel_scans: AtomicU64,
    /// Group operator invocations that ran in streaming (pre-clustered)
    /// mode.
    pub streaming_groups: AtomicU64,
    /// Group operator invocations that had to sort first (§4.2's
    /// "worst case").
    pub sorted_groups: AtomicU64,
    /// Peak number of tuples held by any single group/sort operator.
    pub peak_grouped_tuples: AtomicU64,
    /// Expressions evaluated on async threads (§5.4).
    pub async_spawns: AtomicU64,
    /// Timeouts that fired (§5.6).
    pub timeouts_fired: AtomicU64,
    /// Failovers taken (§5.6).
    pub failovers_taken: AtomicU64,
    /// Function-cache hits (§5.5).
    pub cache_hits: AtomicU64,
    /// Function-cache misses.
    pub cache_misses: AtomicU64,
    /// Nanoseconds queries spent waiting for an admission slot.
    pub admission_wait_ns: AtomicU64,
    /// Queries shed by the admission controller (queue full).
    pub queries_shed: AtomicU64,
    /// Deepest the admission wait queue has been.
    pub admission_queue_peak: AtomicU64,
    /// Nanoseconds spent waiting on per-source concurrency gates
    /// (foreground roundtrips and PP-k prefetch threads alike).
    pub permit_wait_ns: AtomicU64,
    /// Peak bytes of budgeted operator memory held by any single query.
    pub peak_memory_bytes: AtomicU64,
    /// Bytecode ops executed by the expression VM (flushed from
    /// per-operator local counters, not bumped per op).
    pub vm_ops_executed: AtomicU64,
    /// Subtree roots the program lowering declined, so the tree-walker
    /// evaluated them (a static plan property, recorded once per
    /// execution).
    pub vm_fallback_subtrees: AtomicU64,
    /// Morsels claimed and evaluated by the parallel worker pool
    /// (single-threaded execution leaves this at zero).
    pub morsels_executed: AtomicU64,
    /// Nanoseconds workers spent evaluating morsels, summed across
    /// workers (so it can exceed wall-clock time — that excess *is* the
    /// parallelism).
    pub worker_busy_ns: AtomicU64,
    /// Reads served from a materialized data service's live cache.
    pub matview_hits: AtomicU64,
    /// Materialized entries surgically invalidated by the write path
    /// (they recompute on next read — never on TTL expiry).
    pub matview_invalidations: AtomicU64,
    /// Cached result instances patched in place by the write path.
    pub matview_patches: AtomicU64,
    /// Materialized reads that recomputed (cold or post-invalidation).
    pub matview_recomputes: AtomicU64,
    /// Middleware symmetric hash joins executed (one per hash-join
    /// operator run, not per probe).
    pub hash_joins: AtomicU64,
    /// Rows buffered on the build side of middleware hash/merge joins.
    pub join_build_rows: AtomicU64,
    /// Hash joins the planner ran build-side-swapped (the estimated
    /// smaller input buffered instead of the inner).
    pub join_reorders: AtomicU64,
}

impl ExecStats {
    /// Bump a counter.
    pub fn inc(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Raise a high-water mark.
    pub fn peak(&self, c: &AtomicU64, value: u64) {
        c.fetch_max(value, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            source_calls: self.source_calls.load(Ordering::Relaxed),
            sql_statements: self.sql_statements.load(Ordering::Relaxed),
            ppk_blocks: self.ppk_blocks.load(Ordering::Relaxed),
            ppk_outer_tuples: self.ppk_outer_tuples.load(Ordering::Relaxed),
            ppk_prefetched_blocks: self.ppk_prefetched_blocks.load(Ordering::Relaxed),
            ppk_prefetch_wait_ns: self.ppk_prefetch_wait_ns.load(Ordering::Relaxed),
            parallel_scans: self.parallel_scans.load(Ordering::Relaxed),
            streaming_groups: self.streaming_groups.load(Ordering::Relaxed),
            sorted_groups: self.sorted_groups.load(Ordering::Relaxed),
            peak_grouped_tuples: self.peak_grouped_tuples.load(Ordering::Relaxed),
            async_spawns: self.async_spawns.load(Ordering::Relaxed),
            timeouts_fired: self.timeouts_fired.load(Ordering::Relaxed),
            failovers_taken: self.failovers_taken.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            admission_wait_ns: self.admission_wait_ns.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            admission_queue_peak: self.admission_queue_peak.load(Ordering::Relaxed),
            permit_wait_ns: self.permit_wait_ns.load(Ordering::Relaxed),
            peak_memory_bytes: self.peak_memory_bytes.load(Ordering::Relaxed),
            vm_ops_executed: self.vm_ops_executed.load(Ordering::Relaxed),
            vm_fallback_subtrees: self.vm_fallback_subtrees.load(Ordering::Relaxed),
            morsels_executed: self.morsels_executed.load(Ordering::Relaxed),
            worker_busy_ns: self.worker_busy_ns.load(Ordering::Relaxed),
            matview_hits: self.matview_hits.load(Ordering::Relaxed),
            matview_invalidations: self.matview_invalidations.load(Ordering::Relaxed),
            matview_patches: self.matview_patches.load(Ordering::Relaxed),
            matview_recomputes: self.matview_recomputes.load(Ordering::Relaxed),
            hash_joins: self.hash_joins.load(Ordering::Relaxed),
            join_build_rows: self.join_build_rows.load(Ordering::Relaxed),
            join_reorders: self.join_reorders.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        for c in [
            &self.source_calls,
            &self.sql_statements,
            &self.ppk_blocks,
            &self.ppk_outer_tuples,
            &self.ppk_prefetched_blocks,
            &self.ppk_prefetch_wait_ns,
            &self.parallel_scans,
            &self.streaming_groups,
            &self.sorted_groups,
            &self.peak_grouped_tuples,
            &self.async_spawns,
            &self.timeouts_fired,
            &self.failovers_taken,
            &self.cache_hits,
            &self.cache_misses,
            &self.admission_wait_ns,
            &self.queries_shed,
            &self.admission_queue_peak,
            &self.permit_wait_ns,
            &self.peak_memory_bytes,
            &self.vm_ops_executed,
            &self.vm_fallback_subtrees,
            &self.morsels_executed,
            &self.worker_busy_ns,
            &self.matview_hits,
            &self.matview_invalidations,
            &self.matview_patches,
            &self.matview_recomputes,
            &self.hash_joins,
            &self.join_build_rows,
            &self.join_reorders,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Plain-value statistics snapshot.
///
/// `#[non_exhaustive]`: counters are added in most PRs, and each
/// addition must not be a breaking change for code that constructs or
/// exhaustively matches snapshots. Read fields directly; construct only
/// via [`ExecStats::snapshot`] or [`Default`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
#[non_exhaustive]
pub struct StatsSnapshot {
    pub source_calls: u64,
    pub sql_statements: u64,
    pub ppk_blocks: u64,
    pub ppk_outer_tuples: u64,
    pub ppk_prefetched_blocks: u64,
    pub ppk_prefetch_wait_ns: u64,
    pub parallel_scans: u64,
    pub streaming_groups: u64,
    pub sorted_groups: u64,
    pub peak_grouped_tuples: u64,
    pub async_spawns: u64,
    pub timeouts_fired: u64,
    pub failovers_taken: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub admission_wait_ns: u64,
    pub queries_shed: u64,
    pub admission_queue_peak: u64,
    pub permit_wait_ns: u64,
    pub peak_memory_bytes: u64,
    pub vm_ops_executed: u64,
    pub vm_fallback_subtrees: u64,
    pub morsels_executed: u64,
    pub worker_busy_ns: u64,
    pub matview_hits: u64,
    pub matview_invalidations: u64,
    pub matview_patches: u64,
    pub matview_recomputes: u64,
    pub hash_joins: u64,
    pub join_build_rows: u64,
    pub join_reorders: u64,
}
