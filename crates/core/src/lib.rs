//! # aldsp — the AquaLogic Data Services Platform server
//!
//! The top of Figure 2: one facade over the query compiler (with its
//! plan cache), the runtime, the adaptor framework, data-service and
//! security metadata, and update processing. A downstream user builds a
//! server with [`ServerBuilder`] (registering relational connections,
//! web services, custom functions and files — each introspected into
//! physical data services, §2.1), deploys XQuery data-service modules,
//! and then:
//!
//! * executes requests built with [`QueryRequest`] — ad-hoc queries and
//!   data-service method calls, with per-request principals, bindings,
//!   operator tracing and EXPLAIN — through [`AldspServer::execute`],
//!   compiled once and reused via the **query plan cache** (§2.2),
//! * invokes data-service methods with optional client-side
//!   filtering/sorting criteria (the SDO mediator API's "degree of
//!   query flexibility", §2.2),
//! * reads change-tracked data objects and submits updates
//!   ([`AldspServer::submit`], §6),
//! * with function- and element-level security enforced around every
//!   result (§7), applied *after* caches so plans and cached results
//!   stay shared across users.

pub use aldsp_adaptors as adaptors;
pub use aldsp_compiler as compiler;
pub use aldsp_matview as matview;
pub use aldsp_metadata as metadata;
pub use aldsp_parser as parser;
pub use aldsp_relational as relational;
pub use aldsp_runtime as runtime;
pub use aldsp_security as security;
pub use aldsp_updates as updates;
pub use aldsp_workload as workload;
pub use aldsp_xdm as xdm;

use aldsp_adaptors::{
    AdaptorRegistry, CsvFileSource, NativeFunction, SimulatedWebService, XmlFileSource,
};
use aldsp_compiler::{explain_plan, CompiledQuery, Compiler, ExplainContext, Mode, Options};
pub use aldsp_compiler::{JoinStrategy, Mutation, PushdownLevel};
pub use aldsp_matview::MatViewPolicy;
use aldsp_matview::{Dependencies, MatViewRegistry};
use aldsp_metadata::{
    introspect_relational, introspect_web_service, FunctionKind, ParamDecl, PhysicalFunction,
    Registry, SourceBinding, WebServiceDescription,
};
use aldsp_parser::Diagnostic;
use aldsp_relational::{Catalog, RelationalServer};
use aldsp_runtime::Runtime;
pub use aldsp_runtime::{NodeTrace, QueryTrace, StatsSnapshot, TraceKey, TraceLevel};
use aldsp_security::{AccessDenied, AuditLog, Principal, SecurityPolicy};
use aldsp_updates::{
    analyze, ConcurrencyPolicy, DataObject, Lineage, SourceDelta, SubmitError, SubmitProcessor,
    SubmitReport,
};
use aldsp_workload::{Governor, GovernorConfig, QueryBudget};
pub use aldsp_workload::{GovernorSnapshot, Priority, WorkloadError};
use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::types::SequenceType;
use aldsp_xdm::value::AtomicValue;
use aldsp_xdm::QName;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Server-level errors.
#[derive(Debug)]
pub enum ServerError {
    /// Compilation failed.
    Compile(Vec<Diagnostic>),
    /// Execution failed.
    Execute(aldsp_runtime::RtError),
    /// The caller is not allowed.
    Security(AccessDenied),
    /// A submit failed.
    Submit(SubmitError),
    /// Writing serialized results to a caller-supplied writer failed.
    Io(std::io::Error),
    /// The workload governor refused or aborted the query: shed at
    /// admission ([`WorkloadError::Overloaded`]), deadline hit
    /// mid-execution ([`WorkloadError::DeadlineExceeded`]), or memory
    /// cap hit by a blocking operator
    /// ([`WorkloadError::BudgetExceeded`]).
    Workload(WorkloadError),
    /// Anything else.
    Other(String),
}

impl ServerError {
    /// Was this query shed by admission control (queue full)?
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ServerError::Workload(WorkloadError::Overloaded { .. })
        )
    }

    /// Did this query run out of deadline?
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(
            self,
            ServerError::Workload(WorkloadError::DeadlineExceeded { .. })
        )
    }

    /// Did a blocking operator exceed the query's memory budget?
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(
            self,
            ServerError::Workload(WorkloadError::BudgetExceeded { .. })
        )
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Compile(ds) => {
                write!(f, "compilation failed:")?;
                for d in ds {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ServerError::Execute(e) => write!(f, "{e}"),
            ServerError::Security(e) => write!(f, "{e}"),
            ServerError::Submit(e) => write!(f, "{e}"),
            ServerError::Io(e) => write!(f, "write failed: {e}"),
            ServerError::Workload(e) => write!(f, "{e}"),
            ServerError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Execute(e) => Some(e),
            ServerError::Security(e) => Some(e),
            ServerError::Submit(e) => Some(e),
            ServerError::Io(e) => Some(e),
            ServerError::Workload(e) => Some(e),
            ServerError::Compile(_) | ServerError::Other(_) => None,
        }
    }
}

impl From<AccessDenied> for ServerError {
    fn from(e: AccessDenied) -> Self {
        ServerError::Security(e)
    }
}

impl From<aldsp_runtime::RtError> for ServerError {
    fn from(e: aldsp_runtime::RtError) -> Self {
        ServerError::Execute(e)
    }
}

impl From<SubmitError> for ServerError {
    fn from(e: SubmitError) -> Self {
        ServerError::Submit(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WorkloadError> for ServerError {
    fn from(e: WorkloadError) -> Self {
        ServerError::Workload(e)
    }
}

/// Runtime errors surface as [`ServerError::Execute`] except the
/// workload family, which keeps its typed identity so callers can
/// branch on shed/deadline/budget without string matching.
fn map_rt_error(e: aldsp_runtime::RtError) -> ServerError {
    match e {
        aldsp_runtime::RtError::Workload(w) => ServerError::Workload(w),
        other => ServerError::Execute(other),
    }
}

/// The typed execution-tuning surface: every knob that shapes *how* a
/// query executes (not what it returns — all settings are semantically
/// transparent and must produce byte-identical results). Set a server
/// default with [`ServerBuilder::execution`] and override per request
/// with [`QueryRequest::execution`].
///
/// ```ignore
/// let server = ServerBuilder::new()
///     .execution(ExecutionOptions::new().workers(4).morsel_size(2048))
///     .build();
/// ```
///
/// `#[non_exhaustive]`: knobs are added over time; construct via
/// [`ExecutionOptions::new`] / [`Default`] and the chainable setters so
/// new fields are not breaking changes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExecutionOptions {
    /// Worker threads a query may occupy, including the calling thread:
    /// `1` (the default) is sequential execution; `0` means one worker
    /// per available CPU. Engages morsel-driven parallelism for plan
    /// regions the compiler marked partitionable.
    pub workers: usize,
    /// Scan rows per morsel — the unit of work parallel workers claim
    /// (default 1024).
    pub morsel_size: usize,
    /// How many PP-k blocks may be prefetched ahead of the local join
    /// (0 disables prefetch; the default 1 double-buffers).
    pub ppk_prefetch_depth: usize,
    /// How much of each plan SQL pushdown may claim
    /// ([`PushdownLevel::Full`] by default).
    pub pushdown: PushdownLevel,
    /// Default per-query instrumentation level
    /// ([`QueryRequest::trace`] still overrides per request).
    pub trace_level: TraceLevel,
    /// Middleware join-method selection ([`JoinStrategy::Auto`] by
    /// default: cost-based from introspected statistics; forced levels
    /// exist for the differential harness).
    pub join_strategy: JoinStrategy,
}

impl Default for ExecutionOptions {
    fn default() -> ExecutionOptions {
        ExecutionOptions {
            workers: 1,
            morsel_size: 1024,
            ppk_prefetch_depth: 1,
            pushdown: PushdownLevel::default(),
            trace_level: TraceLevel::Off,
            join_strategy: JoinStrategy::default(),
        }
    }
}

impl ExecutionOptions {
    /// The defaults: sequential, morsels of 1024, PP-k double
    /// buffering, full pushdown, no tracing.
    pub fn new() -> ExecutionOptions {
        ExecutionOptions::default()
    }

    /// Set [`ExecutionOptions::workers`] (`0` = one per available CPU).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set [`ExecutionOptions::morsel_size`] (clamped to at least 1).
    pub fn morsel_size(mut self, rows: usize) -> Self {
        self.morsel_size = rows.max(1);
        self
    }

    /// Set [`ExecutionOptions::ppk_prefetch_depth`].
    pub fn ppk_prefetch_depth(mut self, depth: usize) -> Self {
        self.ppk_prefetch_depth = depth;
        self
    }

    /// Set [`ExecutionOptions::pushdown`].
    pub fn pushdown(mut self, level: PushdownLevel) -> Self {
        self.pushdown = level;
        self
    }

    /// Set [`ExecutionOptions::trace_level`].
    pub fn trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Set [`ExecutionOptions::join_strategy`].
    pub fn join_strategy(mut self, strategy: JoinStrategy) -> Self {
        self.join_strategy = strategy;
        self
    }

    /// The worker count with `0 = auto` resolved against the machine.
    fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Builds an [`AldspServer`] by registering data sources (the design-time
/// introspection flow of §2.1) and configuration.
pub struct ServerBuilder {
    metadata: Registry,
    adaptors: AdaptorRegistry,
    security: SecurityPolicy,
    inverses: Vec<(QName, QName)>,
    mode: Mode,
    mutation: Option<Mutation>,
    ppk_block_size: usize,
    ppk_local_method: aldsp_compiler::LocalJoinMethod,
    execution: ExecutionOptions,
    admission: GovernorConfig,
    default_memory_budget: Option<u64>,
    source_concurrency_cap: usize,
    vm: bool,
    materialized: Vec<(QName, MatViewPolicy)>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder::new()
    }
}

impl ServerBuilder {
    /// Start building.
    pub fn new() -> ServerBuilder {
        ServerBuilder {
            metadata: Registry::new(),
            adaptors: AdaptorRegistry::new(),
            security: SecurityPolicy::new(),
            inverses: Vec::new(),
            mode: Mode::FailFast,
            mutation: None,
            ppk_block_size: 20,
            ppk_local_method: aldsp_compiler::LocalJoinMethod::IndexNestedLoop,
            execution: ExecutionOptions::default(),
            admission: GovernorConfig::default(),
            default_memory_budget: None,
            source_concurrency_cap: 0,
            vm: true,
            materialized: Vec::new(),
        }
    }

    /// Declare a data service **materialized**: its results are kept as
    /// an incrementally maintained view in `crates/matview`. The first
    /// evaluation registers a dependency record derived from the
    /// function's lineage; afterwards every [`AldspServer::submit`]
    /// routes its per-source deltas through that record — writes outside
    /// the view's read set leave cached answers live, single-row point
    /// writes to displayed columns are patched in place, and anything
    /// else surgically invalidates (recompute on next read, no TTL).
    pub fn materialize(mut self, function: QName, policy: MatViewPolicy) -> Self {
        self.materialized.push((function, policy));
        self
    }

    /// Set the server-default [`ExecutionOptions`]. Individual requests
    /// override the whole set at once via [`QueryRequest::execution`].
    pub fn execution(mut self, options: ExecutionOptions) -> Self {
        self.execution = options;
        self
    }

    /// Toggle the expression VM (on by default): compile scalar
    /// expression subtrees to bytecode programs executed by
    /// [`aldsp_runtime::ExprVM`] instead of the tree-walker. Turning it
    /// off forces pure tree-walking everywhere — same results, useful
    /// as a differential oracle and for isolating regressions.
    pub fn vm(mut self, on: bool) -> Self {
        self.vm = on;
        self
    }

    /// Enable admission control: at most `max_concurrent` queries
    /// execute at once; up to `queue_capacity` more wait FIFO within
    /// their priority class ([`Priority::Interactive`] queues ahead of
    /// [`Priority::Batch`]). A request arriving with the queue full is
    /// shed immediately with [`WorkloadError::Overloaded`]. The default
    /// (`max_concurrent = 0`) admits everything.
    pub fn admission(mut self, max_concurrent: usize, queue_capacity: usize) -> Self {
        self.admission = GovernorConfig {
            max_concurrent,
            queue_capacity,
        };
        self
    }

    /// Cap the bytes of buffered operator state (group-by hash tables,
    /// sort buffers, PP-k prefetch buffers) any single query may hold,
    /// unless the request sets its own [`QueryRequest::memory_budget`].
    /// Exceeding the cap fails the query with
    /// [`WorkloadError::BudgetExceeded`].
    pub fn default_memory_budget(mut self, bytes: u64) -> Self {
        self.default_memory_budget = Some(bytes);
        self
    }

    /// Cap concurrent roundtrips *per backend source* (relational
    /// connections and web services alike; PP-k prefetch threads count
    /// against the same gate). 0 — the default — leaves sources
    /// ungated.
    pub fn source_concurrency_cap(mut self, cap: usize) -> Self {
        self.source_concurrency_cap = cap;
        self
    }

    /// Plant a deliberately wrong rewrite ([`Mutation`]) so a
    /// correctness harness can prove it detects optimizer bugs. Never
    /// use outside the mutation smoke test.
    #[doc(hidden)]
    pub fn mutation(mut self, m: Mutation) -> Self {
        self.mutation = Some(m);
        self
    }

    /// Override the PP-k block size (the paper's default is 20, §4.2).
    pub fn ppk_block_size(mut self, k: usize) -> Self {
        self.ppk_block_size = k;
        self
    }

    /// Override the PP-k local join method (§5.2).
    pub fn ppk_local_method(mut self, m: aldsp_compiler::LocalJoinMethod) -> Self {
        self.ppk_local_method = m;
        self
    }

    /// Compile in design-time recover mode (§4.1) instead of fail-fast.
    pub fn recover_mode(mut self) -> Self {
        self.mode = Mode::Recover;
        self
    }

    /// Register a relational source: introspects `catalog` into a
    /// physical data service under `namespace` (one read function per
    /// table, navigation functions per foreign key) and binds the
    /// connection for runtime access.
    pub fn relational_source(
        mut self,
        server: Arc<RelationalServer>,
        catalog: &Catalog,
        namespace: &str,
    ) -> Result<Self, String> {
        let ds = introspect_relational(catalog, server.name(), namespace)?;
        self.metadata.register_service(&ds)?;
        // Capture data statistics and the source's latency term while we
        // hold the introspection view — the join planner costs middleware
        // strategies from exactly this snapshot.
        for schema in catalog.tables() {
            if let Some(stats) = server.table_stats(&schema.name) {
                self.metadata.set_table_stats(
                    server.name(),
                    &schema.name,
                    aldsp_metadata::TableStats {
                        row_count: stats.row_count,
                        column_distinct: stats.column_distinct.into_iter().collect(),
                    },
                );
            }
        }
        self.metadata.set_source_latency(
            server.name(),
            server.latency().per_roundtrip.as_nanos() as u64,
        );
        self.adaptors.register_connection(server);
        Ok(self)
    }

    /// Register a (simulated) web service with its description.
    pub fn web_service(
        mut self,
        description: &WebServiceDescription,
        service: Arc<SimulatedWebService>,
    ) -> Result<Self, String> {
        self.metadata
            .register_service(&introspect_web_service(description))?;
        self.adaptors.register_service(service);
        Ok(self)
    }

    /// Register a custom library function (the paper's external Java
    /// functions, §4.4) with a typed signature.
    pub fn native_function(
        mut self,
        name: QName,
        param: SequenceType,
        ret: SequenceType,
        f: NativeFunction,
    ) -> Result<Self, String> {
        self.metadata.register_function(PhysicalFunction {
            name,
            kind: FunctionKind::Library,
            params: vec![ParamDecl {
                name: "x".into(),
                ty: param,
            }],
            return_type: ret,
            source: SourceBinding::Native {
                id: f.id().to_string(),
            },
        })?;
        self.adaptors.register_native(f);
        Ok(self)
    }

    /// Register an XML file source under a data-service function name.
    pub fn xml_file(
        mut self,
        function: QName,
        source: Arc<XmlFileSource>,
        shape: aldsp_xdm::types::ElementType,
    ) -> Result<Self, String> {
        self.metadata.register_function(PhysicalFunction {
            name: function,
            kind: FunctionKind::Read,
            params: vec![],
            return_type: SequenceType::Seq(
                aldsp_xdm::types::ItemType::Element(shape.clone()),
                aldsp_xdm::types::Occurrence::Star,
            ),
            source: SourceBinding::XmlFile {
                path: source.name().to_string(),
                shape,
            },
        })?;
        self.adaptors.register_xml_file(source);
        Ok(self)
    }

    /// Register a CSV file source under a data-service function name.
    pub fn csv_file(
        mut self,
        function: QName,
        source: Arc<CsvFileSource>,
        shape: aldsp_xdm::types::ElementType,
    ) -> Result<Self, String> {
        self.metadata.register_function(PhysicalFunction {
            name: function,
            kind: FunctionKind::Read,
            params: vec![],
            return_type: SequenceType::Seq(
                aldsp_xdm::types::ItemType::Element(shape.clone()),
                aldsp_xdm::types::Occurrence::Star,
            ),
            source: SourceBinding::CsvFile {
                path: source.name().to_string(),
                shape,
            },
        })?;
        self.adaptors.register_csv_file(source);
        Ok(self)
    }

    /// Declare `inverse` as the inverse of `f` (§4.4), enabling pushdown
    /// and updates through the transformation.
    pub fn inverse(mut self, f: QName, inverse: QName) -> Self {
        self.inverses.push((f, inverse));
        self
    }

    /// Install the security policy (§7).
    pub fn security(mut self, policy: SecurityPolicy) -> Self {
        self.security = policy;
        self
    }

    /// Finish: wire the compiler (with per-connection dialects), runtime
    /// and caches together.
    pub fn build(self) -> AldspServer {
        let metadata = Arc::new(self.metadata);
        self.adaptors.set_source_cap(self.source_concurrency_cap);
        let adaptors = Arc::new(self.adaptors);
        let options = Options {
            mode: self.mode,
            pushdown: self.execution.pushdown,
            mutation: self.mutation,
            dialects: adaptors.connection_dialects(),
            ppk_block_size: self.ppk_block_size,
            ppk_local_method: self.ppk_local_method,
            ppk_prefetch_depth: self.execution.ppk_prefetch_depth,
            vm: self.vm,
            join_strategy: self.execution.join_strategy,
            ..Default::default()
        };
        let mut compiler = Compiler::new(metadata.clone(), options);
        let mut inverse_registry = aldsp_compiler::InverseRegistry::default();
        for (f, inv) in self.inverses {
            inverse_registry.declare(f.clone(), inv.clone());
            compiler.declare_inverse(f, inv);
        }
        let runtime = Runtime::new(metadata.clone(), adaptors.clone());
        let matviews = MatViewRegistry::new();
        for (f, policy) in self.materialized {
            matviews.materialize(f, policy);
        }
        AldspServer {
            metadata,
            adaptors,
            compiler,
            runtime,
            execution: self.execution,
            governor: Governor::new(self.admission),
            default_memory_budget: self.default_memory_budget,
            security: self.security,
            audit: AuditLog::new(),
            inverses: inverse_registry,
            plan_cache: PlanCache::new(PLAN_CACHE_CAPACITY),
            lineage_cache: Mutex::new(HashMap::new()),
            update_overrides: Mutex::new(HashMap::new()),
            matviews,
        }
    }
}

/// Client-side filtering/sorting criteria a mediator call may attach to
/// a data-service method invocation (§2.2).
#[derive(Debug, Clone, Default)]
pub struct CallCriteria {
    /// Keep only instances whose named child equals the value.
    pub filter: Vec<(String, AtomicValue)>,
    /// Sort instances by a child value.
    pub sort_by: Option<String>,
    /// Sort descending?
    pub descending: bool,
    /// Return at most this many instances.
    pub limit: Option<usize>,
}

impl CallCriteria {
    /// `true` when no filtering, sorting or limiting is requested —
    /// the only shape compatible with streaming delivery.
    pub fn is_empty(&self) -> bool {
        self.filter.is_empty() && self.sort_by.is_none() && self.limit.is_none()
    }
}

/// What a [`QueryRequest`] executes: an ad-hoc query or a deployed
/// data-service method.
enum RequestTarget<'a> {
    Query {
        source: &'a str,
    },
    Call {
        function: QName,
        args: Vec<Sequence>,
        criteria: CallCriteria,
    },
}

/// A builder-style execution request — the one entry point for ad-hoc
/// queries and data-service method calls (replacing the positional
/// `query`/`call`/`query_streaming` family).
///
/// ```ignore
/// let resp = server.execute(
///     QueryRequest::new(src)
///         .principal(user)
///         .bind("minBalance", vec![Item::integer(100)])
///         .trace(TraceLevel::Operators),
/// )?;
/// println!("{}", resp.plan_explain.unwrap());
/// println!("{}", resp.trace.unwrap().render());
/// ```
pub struct QueryRequest<'a> {
    target: RequestTarget<'a>,
    principal: Principal,
    bindings: Vec<(String, Sequence)>,
    trace: Option<TraceLevel>,
    explain_only: bool,
    deadline: Option<std::time::Duration>,
    priority: Priority,
    memory_budget: Option<u64>,
    execution: Option<ExecutionOptions>,
    sink: Option<&'a mut dyn FnMut(Item) -> bool>,
}

impl<'a> QueryRequest<'a> {
    /// An ad-hoc query over `source` text. The compiled plan is cached
    /// by source text (§2.2), which is safe because security filtering
    /// happens per-user *after* execution.
    pub fn new(source: &'a str) -> QueryRequest<'a> {
        QueryRequest {
            target: RequestTarget::Query { source },
            principal: Principal::new("anonymous", &[]),
            bindings: Vec::new(),
            trace: None,
            explain_only: false,
            deadline: None,
            priority: Priority::default(),
            memory_budget: None,
            execution: None,
            sink: None,
        }
    }

    /// A deployed data-service method invocation (the SDO mediator call
    /// path, §2.2). Arguments bind positionally via [`Self::args`].
    pub fn call(function: QName) -> QueryRequest<'a> {
        QueryRequest {
            target: RequestTarget::Call {
                function,
                args: Vec::new(),
                criteria: CallCriteria::default(),
            },
            principal: Principal::new("anonymous", &[]),
            bindings: Vec::new(),
            trace: None,
            explain_only: false,
            deadline: None,
            priority: Priority::default(),
            memory_budget: None,
            execution: None,
            sink: None,
        }
    }

    /// Positional arguments for a [`Self::call`] target (ignored for
    /// ad-hoc queries — use [`Self::bind`] there).
    pub fn args(mut self, values: Vec<Sequence>) -> Self {
        if let RequestTarget::Call { args, .. } = &mut self.target {
            *args = values;
        }
        self
    }

    /// Mediator call criteria for a [`Self::call`] target (§2.2).
    pub fn criteria(mut self, c: CallCriteria) -> Self {
        if let RequestTarget::Call { criteria, .. } = &mut self.target {
            *criteria = c;
        }
        self
    }

    /// Run as this principal (defaults to an anonymous principal with
    /// no roles).
    pub fn principal(mut self, p: Principal) -> Self {
        self.principal = p;
        self
    }

    /// Bind an external variable by name (ad-hoc queries).
    pub fn bind(mut self, name: &str, value: Sequence) -> Self {
        self.bindings.push((name.to_string(), value));
        self
    }

    /// How much per-query instrumentation to collect. At
    /// [`TraceLevel::Operators`] the response carries a per-operator
    /// [`QueryTrace`] and the plan EXPLAIN; [`TraceLevel::Off`] pays
    /// only a branch. Unset, the request inherits
    /// [`ExecutionOptions::trace_level`].
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = Some(level);
        self
    }

    /// Compile (or fetch from the plan cache) and EXPLAIN only — the
    /// response carries `plan_explain` and no items.
    pub fn explain_only(mut self) -> Self {
        self.explain_only = true;
        self
    }

    /// Fail the query with [`WorkloadError::DeadlineExceeded`] if it
    /// has not finished within `d` of starting execution. Checked
    /// cooperatively at tuple boundaries and before every source
    /// roundtrip — a streaming query stops mid-stream, and a roundtrip
    /// to a slow source is abandoned as soon as the deadline passes
    /// rather than ridden to completion.
    pub fn deadline(mut self, d: std::time::Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Admission priority: [`Priority::Interactive`] (the default)
    /// queues ahead of [`Priority::Batch`] when the server is at its
    /// concurrency limit.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Cap the bytes of buffered operator state this query may hold
    /// (overrides [`ServerBuilder::default_memory_budget`]). Exceeding
    /// it fails the query with [`WorkloadError::BudgetExceeded`].
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Override the server's default [`ExecutionOptions`] for this
    /// request — the whole set at once. Runtime knobs (workers, morsel
    /// size, trace level) apply directly; compile-affecting knobs
    /// (pushdown, PP-k prefetch depth) recompile under the override and
    /// cache the plan under an options-qualified key.
    pub fn execution(mut self, options: ExecutionOptions) -> Self {
        self.execution = Some(options);
        self
    }

    /// Deliver result items incrementally to `sink` instead of
    /// materializing them (§2.2). Security filtering still applies per
    /// item; returning `false` stops execution early.
    pub fn stream_to(mut self, sink: &'a mut dyn FnMut(Item) -> bool) -> Self {
        self.sink = Some(sink);
        self
    }
}

/// What one [`AldspServer::execute`] call produced. Fields are private
/// behind accessors so new facets (counters arrive in most PRs) are
/// never breaking changes.
#[derive(Debug)]
pub struct QueryResponse {
    items: Sequence,
    delivered: u64,
    per_query_stats: StatsSnapshot,
    trace: Option<QueryTrace>,
    plan_explain: Option<String>,
}

impl QueryResponse {
    /// Materialized, security-filtered result items (empty for
    /// streaming and explain-only requests).
    pub fn items(&self) -> &Sequence {
        &self.items
    }

    /// Take ownership of the result items.
    pub fn into_items(self) -> Sequence {
        self.items
    }

    /// Items delivered (to the caller or the streaming sink).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// This execution's exact stat deltas, unpolluted by concurrent
    /// queries (unlike the server-wide [`AldspServer::stats`]). The
    /// returned [`StatsSnapshot`] is `#[non_exhaustive]`: read the
    /// counters you care about by name.
    pub fn per_query_stats(&self) -> &StatsSnapshot {
        &self.per_query_stats
    }

    /// Per-operator trace, when requested via [`QueryRequest::trace`].
    pub fn trace(&self) -> Option<&QueryTrace> {
        self.trace.as_ref()
    }

    /// Take ownership of the per-operator trace.
    pub fn into_trace(self) -> Option<QueryTrace> {
        self.trace
    }

    /// The plan EXPLAIN, when tracing or [`QueryRequest::explain_only`]
    /// was requested.
    pub fn plan_explain(&self) -> Option<&str> {
        self.plan_explain.as_deref()
    }

    /// Owned variant of [`QueryResponse::plan_explain`].
    pub fn into_plan_explain(self) -> Option<String> {
        self.plan_explain
    }
}

/// Default bound on cached query plans. Keys are full query texts and
/// plans hold whole expression trees, so a few hundred distinct popular
/// queries (§2.2) is plenty; an ad-hoc workload that never repeats
/// shouldn't pin memory forever.
const PLAN_CACHE_CAPACITY: usize = 256;

/// The §2.2 query plan cache: "ALDSP maintains a query plan cache in
/// order to avoid repeatedly compiling popular queries". Bounded, with
/// stale-first (least-recently-used) eviction like the runtime's
/// `FunctionCache`; plans never expire on their own, so staleness here
/// is recency of use. One mutex covers the map *and* the hit/miss
/// counters, so a lookup takes a single lock acquisition.
struct PlanCache {
    state: Mutex<PlanCacheState>,
    capacity: usize,
}

#[derive(Default)]
struct PlanCacheState {
    entries: HashMap<String, PlanEntry>,
    /// Monotonic use counter; entries stamp it on hit and insert.
    tick: u64,
    hits: u64,
    misses: u64,
}

struct PlanEntry {
    plan: Arc<CompiledQuery>,
    last_used: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            state: Mutex::new(PlanCacheState::default()),
            capacity: capacity.max(1),
        }
    }

    /// Look up `key`, counting the hit or miss — one lock acquisition.
    fn get(&self, key: &str) -> Option<Arc<CompiledQuery>> {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let plan = e.plan.clone();
                st.hits += 1;
                Some(plan)
            }
            None => {
                st.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly compiled plan, evicting the least-recently-used
    /// entries if the cache is full.
    fn insert(&self, key: String, plan: Arc<CompiledQuery>) {
        let mut st = self.state.lock();
        st.tick += 1;
        let tick = st.tick;
        st.entries.insert(
            key,
            PlanEntry {
                plan,
                last_used: tick,
            },
        );
        while st.entries.len() > self.capacity {
            let Some(stalest) = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            st.entries.remove(&stalest);
        }
    }

    fn stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.hits, st.misses)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.state.lock().entries.len()
    }
}

/// The ALDSP server (Figure 2).
pub struct AldspServer {
    metadata: Arc<Registry>,
    adaptors: Arc<AdaptorRegistry>,
    compiler: Compiler,
    runtime: Runtime,
    execution: ExecutionOptions,
    governor: Arc<Governor>,
    default_memory_budget: Option<u64>,
    security: SecurityPolicy,
    audit: AuditLog,
    inverses: aldsp_compiler::InverseRegistry,
    plan_cache: PlanCache,
    lineage_cache: Mutex<HashMap<QName, Arc<Lineage>>>,
    update_overrides: Mutex<HashMap<QName, UpdateOverride>>,
    matviews: MatViewRegistry,
}

/// A user-supplied update handler (§6: "an update override facility that
/// allows user code to extend or replace ALDSP's default update
/// handling"). Returning `Ok(Some(report))` replaces the default
/// decomposition entirely; `Ok(None)` falls through to it.
pub type UpdateOverride =
    Arc<dyn Fn(&DataObject, &Lineage) -> Result<Option<SubmitReport>, String> + Send + Sync>;

impl AldspServer {
    /// Deploy a data-service module (XQuery function declarations);
    /// functions are partially optimized and cached for reuse (§4.2).
    pub fn deploy(&self, source: &str) -> Result<Vec<QName>, ServerError> {
        self.compiler
            .deploy_module(source)
            .map_err(ServerError::Compile)
    }

    /// Execute a [`QueryRequest`] — the one entry point for ad-hoc
    /// queries and data-service method calls.
    ///
    /// Compiled plans are cached — "ALDSP maintains a query plan cache
    /// in order to avoid repeatedly compiling popular queries from the
    /// same or different users" (§2.2) — which is safe precisely
    /// because security filtering happens per-user *after* execution.
    /// The response carries the security-filtered items (or streams
    /// them to the request's sink), this execution's exact stat deltas,
    /// and — when requested — a per-operator [`QueryTrace`] and the
    /// plan EXPLAIN.
    pub fn execute(&self, request: QueryRequest<'_>) -> Result<QueryResponse, ServerError> {
        let QueryRequest {
            target,
            principal,
            bindings,
            trace,
            explain_only,
            deadline,
            priority,
            memory_budget,
            execution,
            mut sink,
        } = request;
        let exec = execution.unwrap_or_else(|| self.execution.clone());
        let trace = trace.unwrap_or(exec.trace_level);
        let (plan, call_args, criteria, call_fn) = match target {
            RequestTarget::Query { source } => (
                self.cached_plan(source, &exec)?,
                None,
                CallCriteria::default(),
                None,
            ),
            RequestTarget::Call {
                function,
                args,
                criteria,
            } => {
                // Function-level access is checked before anything runs
                // (§7); element-level filtering happens on the results.
                self.security
                    .check_function_access(&principal, &function, &self.audit)?;
                (
                    self.cached_call_plan(&function, &exec)?,
                    Some(args),
                    criteria,
                    Some(function),
                )
            }
        };
        let mem_cap = memory_budget.or(self.default_memory_budget);
        let plan_explain = (explain_only || trace != TraceLevel::Off).then(|| {
            self.explain_for(
                &plan,
                self.governor_note(priority, deadline, mem_cap),
                call_fn.as_ref().and_then(|f| self.matview_note(f)),
            )
        });
        if explain_only {
            return Ok(QueryResponse {
                items: Vec::new(),
                delivered: 0,
                per_query_stats: StatsSnapshot::default(),
                trace: None,
                plan_explain,
            });
        }
        // Materialized data services: a live cached answer (raw,
        // pre-security) bypasses execution and admission entirely —
        // element-level security and call criteria still apply per
        // principal below, so cached entries stay shared across users.
        let mut fill = None;
        if let (Some(f), Some(args)) = (&call_fn, &call_args) {
            if self.matviews.is_materialized(f) {
                let key = MatViewRegistry::arg_key(args);
                if let Some(raw) = self.matviews.get(f, &key) {
                    let stats = &self.runtime.inner().stats;
                    stats.inc(&stats.matview_hits);
                    let mut pq = StatsSnapshot::default();
                    pq.matview_hits = 1;
                    let filtered = self.security.filter_result(&principal, raw, &self.audit);
                    let items = apply_criteria(filtered, &criteria);
                    if let Some(on_item) = sink.take() {
                        if !criteria.is_empty() {
                            return Err(ServerError::Other(
                                "call criteria (filter/sort/limit) require materialized \
                                 execution; drop stream_to or the criteria"
                                    .into(),
                            ));
                        }
                        let mut delivered = 0u64;
                        for item in items {
                            if !on_item(item) {
                                break;
                            }
                            delivered += 1;
                        }
                        return Ok(QueryResponse {
                            items: Vec::new(),
                            delivered,
                            per_query_stats: pq,
                            trace: None,
                            plan_explain,
                        });
                    }
                    let delivered = items.len() as u64;
                    return Ok(QueryResponse {
                        items,
                        delivered,
                        per_query_stats: pq,
                        trace: None,
                        plan_explain,
                    });
                }
                // miss: recompute below, then install the raw answer —
                // unless an affecting write lands while we compute
                fill = self.matviews.fill_ticket(f, &key);
            }
        }
        // Workload governance: one budget shared by every thread of the
        // query (PP-k prefetch, async), created only when something is
        // actually governed. Admission may queue — or shed — the
        // request before anything executes.
        let budget = (deadline.is_some() || mem_cap.is_some() || self.governor.enabled())
            .then(|| Arc::new(QueryBudget::new(deadline, mem_cap)));
        let admit_t0 = std::time::Instant::now();
        let admitted = match &budget {
            Some(b) => self.governor.admit(priority, b),
            // No budget means the governor is disabled: no-op admit.
            None => self.governor.admit(priority, &QueryBudget::unlimited()),
        };
        self.sync_governor_stats();
        let _admission = admitted?;
        let admission_wait_ns = admit_t0.elapsed().as_nanos() as u64;
        let owned: Vec<(String, Sequence)> = match call_args {
            // Call arguments bind positionally to the plan's external
            // variables; ad-hoc queries bind by name.
            Some(args) => plan.external_vars.iter().cloned().zip(args).collect(),
            None => bindings,
        };
        let borrowed: Vec<(&str, Sequence)> =
            owned.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
        let tuning = aldsp_runtime::ExecTuning {
            workers: exec.effective_workers(),
            morsel_size: exec.morsel_size.max(1),
        };
        match sink.take() {
            Some(on_item) => {
                if !criteria.is_empty() {
                    return Err(ServerError::Other(
                        "call criteria (filter/sort/limit) require materialized \
                         execution; drop stream_to or the criteria"
                            .into(),
                    ));
                }
                // Tee raw (pre-security) items for the matview fill; a
                // consumer abort leaves the tee partial, so the fill is
                // dropped rather than caching a truncated answer.
                let mut raw_tee: Sequence = Vec::new();
                let mut aborted = false;
                let mut ex = self
                    .runtime
                    .execute_streaming_tuned(
                        &plan,
                        &borrowed,
                        trace,
                        budget.clone(),
                        tuning,
                        &mut |item| {
                            if fill.is_some() {
                                raw_tee.push(item.clone());
                            }
                            let filtered =
                                self.security
                                    .filter_result(&principal, vec![item], &self.audit);
                            for f in filtered {
                                if !on_item(f) {
                                    aborted = true;
                                    return false;
                                }
                            }
                            true
                        },
                    )
                    .map_err(map_rt_error)?;
                ex.per_query_stats.admission_wait_ns = admission_wait_ns;
                if let (Some(ticket), Some(f)) = (fill, &call_fn) {
                    self.finish_fill(f, ticket, (!aborted).then_some(raw_tee));
                    ex.per_query_stats.matview_recomputes += 1;
                }
                Ok(QueryResponse {
                    items: Vec::new(),
                    delivered: ex.delivered,
                    per_query_stats: ex.per_query_stats,
                    trace: ex.trace,
                    plan_explain,
                })
            }
            None => {
                let mut ex = self
                    .runtime
                    .execute_tuned(&plan, &borrowed, trace, budget.clone(), tuning)
                    .map_err(map_rt_error)?;
                ex.per_query_stats.admission_wait_ns = admission_wait_ns;
                if let (Some(ticket), Some(f)) = (fill, &call_fn) {
                    self.finish_fill(f, ticket, Some(ex.items.clone()));
                    ex.per_query_stats.matview_recomputes += 1;
                }
                let filtered = self
                    .security
                    .filter_result(&principal, ex.items, &self.audit);
                let items = apply_criteria(filtered, &criteria);
                let delivered = items.len() as u64;
                Ok(QueryResponse {
                    items,
                    delivered,
                    per_query_stats: ex.per_query_stats,
                    trace: ex.trace,
                    plan_explain,
                })
            }
        }
    }

    /// Complete a materialized-view fill: derive the dependency record
    /// from the function's canonical lineage and install the raw
    /// (pre-security) answer. `items` is `None` when the computed result
    /// is partial (aborted stream) — the recompute still counts, but
    /// nothing is cached. Lineage failures (e.g. a non-updatable shape)
    /// leave the view permanently cold rather than failing the read.
    fn finish_fill(&self, function: &QName, ticket: matview::FillTicket, items: Option<Sequence>) {
        let stats = &self.runtime.inner().stats;
        stats.inc(&stats.matview_recomputes);
        let Some(items) = items else { return };
        if let Ok(lineage) = self.lineage_of(function) {
            let deps = Arc::new(Dependencies::from_lineage(&lineage));
            self.matviews.complete_fill(ticket, items, deps);
        }
    }

    /// The `-- matview:` EXPLAIN header for a materialized function.
    fn matview_note(&self, function: &QName) -> Option<String> {
        self.matviews.status(function).map(|s| {
            format!(
                "policy={} tables={} entries={}",
                s.policy, s.tables, s.entries
            )
        })
    }

    /// Read one instance from a data-service function as a change-tracked
    /// [`DataObject`] (the SDO read side of Figure 5).
    pub fn read_object(
        &self,
        principal: &Principal,
        function: &QName,
        args: Vec<Sequence>,
        criteria: &CallCriteria,
    ) -> Result<Option<DataObject>, ServerError> {
        let items = self
            .execute(
                QueryRequest::call(function.clone())
                    .args(args)
                    .criteria(criteria.clone())
                    .principal(principal.clone()),
            )?
            .items;
        Ok(items.into_iter().find_map(|i| match i {
            Item::Node(n) => Some(DataObject::new(n)),
            _ => None,
        }))
    }

    /// The lineage of a data-service function (computed from its compiled
    /// body — the function is its own lineage provider, §6).
    pub fn lineage_of(&self, function: &QName) -> Result<Arc<Lineage>, ServerError> {
        if let Some(l) = self.lineage_cache.lock().get(function) {
            return Ok(l.clone());
        }
        let plan = self
            .compiler
            .compile_call(function)
            .map_err(ServerError::Compile)?;
        let lineage = Arc::new(analyze(&self.metadata, &plan).map_err(ServerError::Other)?);
        self.lineage_cache
            .lock()
            .insert(function.clone(), lineage.clone());
        Ok(lineage)
    }

    /// Submit a changed data object (Figure 5's `ProfileDS.submit(sdo)`),
    /// decomposing the change log via the lineage of `provider` and
    /// applying per-source conditioned updates under 2PC (§6). A
    /// registered [`UpdateOverride`] runs first and may replace the
    /// default handling entirely.
    pub fn submit(
        &self,
        principal: &Principal,
        provider: &QName,
        sdo: &DataObject,
        policy: ConcurrencyPolicy,
    ) -> Result<SubmitReport, ServerError> {
        self.security
            .check_function_access(principal, provider, &self.audit)?;
        let lineage = self.lineage_of(provider)?;
        let override_fn = self.update_overrides.lock().get(provider).cloned();
        if let Some(f) = override_fn {
            // a None falls through to the default decomposition
            if let Some(report) = f(sdo, &lineage).map_err(ServerError::Other)? {
                // An override that emitted no deltas wrote through a
                // channel the registry cannot see — coarsely invalidate
                // every view over the provider's source tables.
                if report.deltas.is_empty() && sdo.is_dirty() {
                    let n = self.matviews.invalidate_tables(&lineage_tables(&lineage));
                    let stats = &self.runtime.inner().stats;
                    stats.matview_invalidations.fetch_add(n, Ordering::Relaxed);
                } else {
                    self.route_deltas(&report.deltas);
                }
                return Ok(report);
            }
        }
        let proc = SubmitProcessor::new(
            &self.adaptors,
            &self.metadata,
            &lineage,
            &self.inverses,
            policy,
        );
        match proc.submit(sdo) {
            Ok(report) => {
                self.route_deltas(&report.deltas);
                Ok(report)
            }
            Err(e) => {
                // NotWritable is decided before any source is touched;
                // everything else may have left sources in a state the
                // registry didn't observe — invalidate coarsely.
                if !matches!(e, SubmitError::NotWritable(_)) {
                    let n = self.matviews.invalidate_tables(&lineage_tables(&lineage));
                    let stats = &self.runtime.inner().stats;
                    stats.matview_invalidations.fetch_add(n, Ordering::Relaxed);
                }
                Err(ServerError::Submit(e))
            }
        }
    }

    /// Route a committed submit's per-source deltas through every
    /// materialized view (write-through maintenance).
    fn route_deltas(&self, deltas: &[SourceDelta]) {
        if deltas.is_empty() {
            return;
        }
        let outcome = self
            .matviews
            .apply_deltas(deltas, &|f, v| self.apply_forward(f, v));
        let stats = &self.runtime.inner().stats;
        stats
            .matview_patches
            .fetch_add(outcome.patched, Ordering::Relaxed);
        stats
            .matview_invalidations
            .fetch_add(outcome.invalidated, Ordering::Relaxed);
    }

    /// Apply a forward transform (a registered library native, §4.4) to
    /// a stored column value — the patch path's dual of submit
    /// processing's inverse application.
    fn apply_forward(&self, f: &QName, v: &AtomicValue) -> Result<AtomicValue, String> {
        let function = self
            .metadata
            .function(f)
            .ok_or_else(|| format!("unknown transform function {f}"))?;
        let SourceBinding::Native { id } = &function.source else {
            return Err(format!("transform {f} is not a native library function"));
        };
        let native = self.adaptors.native(id).map_err(|e| e.to_string())?;
        let result = native
            .call(&[vec![Item::Atomic(v.clone())]])
            .map_err(|e| e.to_string())?;
        match result.as_slice() {
            [Item::Atomic(out)] => Ok(out.clone()),
            other => Err(format!(
                "transform {f} returned {} items instead of one",
                other.len()
            )),
        }
    }

    /// Register an update override for a data-service provider (§6).
    pub fn register_update_override(&self, provider: QName, f: UpdateOverride) {
        self.update_overrides.lock().insert(provider, f);
    }

    /// Declare `function` materialized at runtime (the builder-time
    /// equivalent is [`ServerBuilder::materialize`]). Re-declaring an
    /// already-materialized function drops its cached entries.
    pub fn materialize(&self, function: QName, policy: MatViewPolicy) {
        self.matviews.materialize(function, policy);
    }

    /// Policy / dependency / occupancy snapshot of one materialized
    /// function, or `None` when it is not materialized.
    pub fn matview_status(&self, function: &QName) -> Option<matview::MatViewStatus> {
        self.matviews.status(function)
    }

    /// Stop TTL-caching `function` and drop its cached entries (§5.5).
    pub fn disable_function_cache(&self, function: &QName) {
        self.runtime.cache().disable(function);
    }

    /// Drop every TTL-cached entry for `function` without disabling
    /// future caching; returns how many entries were dropped.
    pub fn purge_function_cache(&self, function: &QName) -> usize {
        self.runtime.cache().purge(function)
    }

    /// Run a request and serialize the results incrementally to a
    /// writer — "or to redirect them to a file, without materializing
    /// them first" (§2.2). Takes a full [`QueryRequest`], so deadlines,
    /// budgets, priorities and [`ExecutionOptions`] all apply exactly
    /// as they do for [`AldspServer::execute`]; any `stream_to` sink on
    /// the request is replaced by the writer.
    pub fn query_to_writer(
        &self,
        request: QueryRequest<'_>,
        out: &mut dyn std::io::Write,
    ) -> Result<u64, ServerError> {
        let QueryRequest {
            target,
            principal,
            bindings,
            trace,
            explain_only,
            deadline,
            priority,
            memory_budget,
            execution,
            sink: _,
        } = request;
        let mut io_err: Option<std::io::Error> = None;
        let mut sink = |item: Item| {
            let text = aldsp_xdm::xml::serialize_sequence(&[item]);
            match out.write_all(text.as_bytes()) {
                Ok(()) => true,
                Err(e) => {
                    io_err = Some(e);
                    false
                }
            }
        };
        let delivered = self
            .execute(QueryRequest {
                target,
                principal,
                bindings,
                trace,
                explain_only,
                deadline,
                priority,
                memory_budget,
                execution,
                sink: Some(&mut sink),
            })?
            .delivered;
        match io_err {
            Some(e) => Err(ServerError::Io(e)),
            None => Ok(delivered),
        }
    }

    /// Enable result caching for a data-service function with a TTL
    /// (§5.5 — designer permits, administrator enables).
    pub fn enable_function_cache(&self, function: QName, ttl: std::time::Duration) {
        self.runtime.cache().enable(function, ttl);
    }

    /// Runtime execution statistics: a **monotonic** snapshot of the
    /// server-wide counters, aggregated across every query the runtime
    /// has executed (concurrent queries included). For the exact cost
    /// of one query, use [`QueryResponse::per_query_stats`] instead of
    /// differencing two snapshots — a concurrent query can land between
    /// them.
    pub fn stats(&self) -> StatsSnapshot {
        self.runtime.stats()
    }

    /// The workload governor's cumulative admission counters: queries
    /// admitted and shed, current running/queued, deepest the queue has
    /// been, and total admission wait. Monotonic for the life of the
    /// server (unaffected by [`AldspServer::reset_stats`]).
    pub fn governor_stats(&self) -> GovernorSnapshot {
        self.governor.snapshot()
    }

    /// Mirror the governor's cumulative counters into the server-wide
    /// runtime stats so one [`AldspServer::stats`] snapshot shows
    /// admission behavior next to the operator counters. Stored rather
    /// than added — the governor is the source of truth.
    fn sync_governor_stats(&self) {
        let snap = self.governor.snapshot();
        let stats = &self.runtime.inner().stats;
        stats.queries_shed.store(snap.shed, Ordering::Relaxed);
        stats
            .admission_wait_ns
            .store(snap.admission_wait_ns, Ordering::Relaxed);
        stats
            .admission_queue_peak
            .store(snap.queue_peak as u64, Ordering::Relaxed);
    }

    /// The `-- governor:` EXPLAIN header for a request, or `None` when
    /// nothing about the query is governed.
    fn governor_note(
        &self,
        priority: Priority,
        deadline: Option<std::time::Duration>,
        mem_cap: Option<u64>,
    ) -> Option<String> {
        if !self.governor.enabled() && deadline.is_none() && mem_cap.is_none() {
            return None;
        }
        let mut parts = vec![format!("priority={priority}")];
        if let Some(d) = deadline {
            parts.push(format!("deadline={d:?}"));
        }
        if let Some(c) = mem_cap {
            parts.push(format!("mem-cap={c}B"));
        }
        if self.governor.enabled() {
            let cfg = self.governor.config();
            parts.push(format!(
                "admission={}+{}q",
                cfg.max_concurrent, cfg.queue_capacity
            ));
        }
        Some(parts.join(" "))
    }

    /// Reset runtime statistics.
    #[deprecated(
        note = "racy under concurrency; use `QueryResponse::per_query_stats` for per-query deltas"
    )]
    pub fn reset_stats(&self) {
        self.runtime.reset_stats()
    }

    /// `(hits, misses)` of the query plan cache (§2.2).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_cache.stats()
    }

    /// The audit log (§7).
    pub fn audit(&self) -> &AuditLog {
        &self.audit
    }

    /// The compiler (for inspection and benches).
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// The runtime (for inspection and benches).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The metadata registry.
    pub fn metadata(&self) -> &Arc<Registry> {
        &self.metadata
    }

    /// The adaptor registry.
    pub fn adaptors(&self) -> &Arc<AdaptorRegistry> {
        &self.adaptors
    }

    /// When the request's [`ExecutionOptions`] override a
    /// compile-affecting knob, plans compile under a compiler carrying
    /// the override and cache under an options-qualified key —
    /// `None` means the server's compiler (and bare cache keys) serve.
    fn override_compiler(&self, exec: &ExecutionOptions) -> Option<(Compiler, String)> {
        let base = self.compiler.options();
        if exec.pushdown == base.pushdown
            && exec.ppk_prefetch_depth == base.ppk_prefetch_depth
            && exec.join_strategy == base.join_strategy
        {
            return None;
        }
        let mut options = base.clone();
        options.pushdown = exec.pushdown;
        options.ppk_prefetch_depth = exec.ppk_prefetch_depth;
        options.join_strategy = exec.join_strategy;
        let suffix = format!(
            "\u{1}pushdown={};ppk-depth={};join={}",
            exec.pushdown, exec.ppk_prefetch_depth, exec.join_strategy
        );
        Some((self.compiler.with_options(options), suffix))
    }

    fn cached_plan(
        &self,
        source: &str,
        exec: &ExecutionOptions,
    ) -> Result<Arc<CompiledQuery>, ServerError> {
        let over = self.override_compiler(exec);
        let key = match &over {
            Some((_, suffix)) => format!("{source}{suffix}"),
            None => source.to_string(),
        };
        if let Some(p) = self.plan_cache.get(&key) {
            return Ok(p);
        }
        let compiler = over.as_ref().map(|(c, _)| c).unwrap_or(&self.compiler);
        let plan = Arc::new(
            compiler
                .compile_query(source)
                .map_err(ServerError::Compile)?,
        );
        self.plan_cache.insert(key, plan.clone());
        Ok(plan)
    }

    fn cached_call_plan(
        &self,
        function: &QName,
        exec: &ExecutionOptions,
    ) -> Result<Arc<CompiledQuery>, ServerError> {
        let over = self.override_compiler(exec);
        let key = match &over {
            Some((_, suffix)) => format!("call:{function}{suffix}"),
            None => format!("call:{function}"),
        };
        if let Some(p) = self.plan_cache.get(&key) {
            return Ok(p);
        }
        let compiler = over.as_ref().map(|(c, _)| c).unwrap_or(&self.compiler);
        let plan = Arc::new(
            compiler
                .compile_call(function)
                .map_err(ServerError::Compile)?,
        );
        self.plan_cache.insert(key, plan.clone());
        Ok(plan)
    }

    /// Render the plan EXPLAIN for a compiled query, supplying the
    /// renderer with runtime state the compiler can't know: connection
    /// dialects, per-function cache enablement (§5.5), and the workload
    /// terms the query would run under.
    fn explain_for(
        &self,
        plan: &CompiledQuery,
        governor: Option<String>,
        matview: Option<String>,
    ) -> String {
        let dialects = self.adaptors.connection_dialects();
        let cache = self.runtime.cache();
        let ctx = ExplainContext {
            dialects: &dialects,
            cache_enabled: &|q| cache.enabled(q),
            governor,
            matview,
            pushdown: plan.pushdown,
            programs: Some(&plan.programs),
            parallel: Some(&plan.parallel),
            joins: Some(&plan.joins),
        };
        explain_plan(&plan.plan, &ctx)
    }
}

/// Every `(connection, table)` a lineage analysis touches — the coarse
/// invalidation scope when per-row deltas are unavailable.
fn lineage_tables(lineage: &Lineage) -> Vec<(String, String)> {
    let mut tables: Vec<(String, String)> = lineage
        .entries
        .iter()
        .map(|e| (e.connection.clone(), e.table.clone()))
        .chain(lineage.referenced.keys().cloned())
        .chain(lineage.restricting.keys().cloned())
        .chain(lineage.opaque_tables.iter().cloned())
        .collect();
    tables.sort();
    tables.dedup();
    tables
}

/// Apply mediator call criteria to a method-call result (§2.2).
fn apply_criteria(items: Sequence, criteria: &CallCriteria) -> Sequence {
    let mut out: Vec<Item> = items
        .into_iter()
        .filter(|item| {
            let Item::Node(n) = item else { return true };
            criteria.filter.iter().all(|(child, expect)| {
                n.child_elements(&QName::local(child))
                    .next()
                    .and_then(|c| c.typed_value())
                    .map(|v| v.compare(expect) == Some(std::cmp::Ordering::Equal))
                    .unwrap_or(false)
            })
        })
        .collect();
    if let Some(key) = &criteria.sort_by {
        let kq = QName::local(key);
        out.sort_by(|a, b| {
            let ka = a
                .as_node()
                .and_then(|n| n.child_elements(&kq).next().and_then(|c| c.typed_value()));
            let kb = b
                .as_node()
                .and_then(|n| n.child_elements(&kq).next().and_then(|c| c.typed_value()));
            let ord = match (ka, kb) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(x), Some(y)) => x.compare(&y).unwrap_or(std::cmp::Ordering::Equal),
            };
            if criteria.descending {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(n) = criteria.limit {
        out.truncate(n);
    }
    out
}

#[cfg(test)]
mod plan_cache_tests {
    use super::*;

    fn plan() -> Arc<CompiledQuery> {
        Arc::new(CompiledQuery {
            plan: aldsp_compiler::ir::CExpr::new(
                aldsp_compiler::ir::CKind::Seq(vec![]),
                aldsp_compiler::ir::Span::default(),
            ),
            external_vars: vec![],
            frame: Arc::new(Default::default()),
            pushdown: Default::default(),
            diagnostics: vec![],
            programs: Arc::new(Default::default()),
            parallel: Arc::new(Default::default()),
            joins: Arc::new(Default::default()),
        })
    }

    #[test]
    fn counts_hits_and_misses_in_one_lock() {
        let c = PlanCache::new(4);
        assert!(c.get("q1").is_none());
        c.insert("q1".into(), plan());
        assert!(c.get("q1").is_some());
        assert!(c.get("q1").is_some());
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let c = PlanCache::new(2);
        c.insert("a".into(), plan());
        c.insert("b".into(), plan());
        // touch "a" so "b" is now the stalest
        assert!(c.get("a").is_some());
        c.insert("c".into(), plan());
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_some(), "recently used entry survives");
        assert!(c.get("b").is_none(), "least recently used entry evicted");
        assert!(c.get("c").is_some());
    }
}
