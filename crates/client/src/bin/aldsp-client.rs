//! `aldsp-client` — run one query against a running `aldspd`.
//!
//! ```text
//! aldsp-client --addr 127.0.0.1:PORT --query 'QUERY' \
//!     [--principal NAME] [--roles a,b] [--token T] [--deadline-ms N]
//! ```
//!
//! Prints the reassembled result text on stdout and the delivered
//! count on stderr; exits non-zero on any typed server error.

use aldsp_client::Client;
use aldsp_protocol::WireOptions;
use std::process::ExitCode;

struct Args {
    addr: String,
    query: String,
    principal: String,
    roles: Vec<String>,
    token: String,
    deadline_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = None;
    let mut query = None;
    let mut principal = "demo".to_string();
    let mut roles = Vec::new();
    let mut token = String::new();
    let mut deadline_ms = 0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => addr = Some(val("--addr")?),
            "--query" => query = Some(val("--query")?),
            "--principal" => principal = val("--principal")?,
            "--roles" => {
                roles = val("--roles")?
                    .split(',')
                    .filter(|r| !r.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--token" => token = val("--token")?,
            "--deadline-ms" => {
                deadline_ms = val("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: aldsp-client --addr HOST:PORT --query 'Q' \
                     [--principal NAME] [--roles a,b] [--token T] [--deadline-ms N]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        addr: addr.ok_or("--addr is required")?,
        query: query.ok_or("--query is required")?,
        principal,
        roles,
        token,
        deadline_ms,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let roles: Vec<&str> = args.roles.iter().map(String::as_str).collect();
    let mut client =
        match Client::connect_with_token(&args.addr, &args.principal, &roles, &args.token) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("aldsp-client: connect failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let options = WireOptions {
        deadline_ms: args.deadline_ms,
        ..WireOptions::default()
    };
    match client.execute(&args.query, &options) {
        Ok(result) => {
            println!("{}", result.text());
            eprintln!("delivered {} item(s)", result.delivered);
            let _ = client.goodbye();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("aldsp-client: {e}");
            ExitCode::FAILURE
        }
    }
}
