//! # aldsp-client — a small blocking client for `aldspd`
//!
//! Speaks the `aldsp-protocol` wire protocol over one TCP connection:
//! handshake with principal + roles, `prepare`/`execute`/
//! `execute_prepared`, streamed result consumption, typed server
//! errors. Used by the end-to-end tests, the `wire` differential cell,
//! the loopback bench, and the `aldsp-client` command-line binary.

use aldsp_protocol as proto;
use aldsp_protocol::{code, ClientMsg, ServerMsg, WireError, WireOptions};
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server sent bytes this client cannot decode.
    Wire(WireError),
    /// A typed [`proto::code`] error frame from the server.
    Server {
        /// One of the [`proto::code`] constants.
        code: u16,
        /// Human-readable rendering from the server.
        message: String,
    },
    /// The server closed the connection where a reply was expected,
    /// or replied out of protocol.
    Closed,
    /// A streaming callback asked to stop; the connection was torn
    /// down mid-stream on purpose.
    Aborted,
}

impl ClientError {
    /// The typed wire code, when this is a server error frame.
    pub fn code(&self) -> Option<u16> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// Was the request shed by admission control?
    pub fn is_overloaded(&self) -> bool {
        self.code() == Some(code::OVERLOADED)
    }

    /// Did the per-query deadline elapse?
    pub fn is_deadline_exceeded(&self) -> bool {
        self.code() == Some(code::DEADLINE)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code: c, message } => {
                write!(f, "server error [{}]: {message}", code::name(*c))
            }
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Aborted => write!(f, "stream aborted by the consumer"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A prepared plan handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prepared {
    /// Server-side handle, valid across sessions.
    pub handle: u64,
    /// `true` when the handle already existed on the server (prepared
    /// by this or another session) — the plan-sharing signal.
    pub shared: bool,
}

/// One streamed result item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireItem {
    /// Atomic items rejoin with a single space between neighbors.
    pub atomic: bool,
    /// The item's individual serialization.
    pub text: String,
}

/// A fully drained result stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResultSet {
    /// The streamed items, in order.
    pub items: Vec<WireItem>,
    /// The server's delivered count (after security filtering).
    pub delivered: u64,
}

impl WireResultSet {
    /// Reassemble the full serialization, byte-identical to a
    /// server-side serialization of the whole sequence.
    pub fn text(&self) -> String {
        proto::join_items(self.items.iter().map(|i| (i.atomic, i.text.as_str())))
    }
}

/// A blocking connection to an `aldspd` server, authenticated as one
/// principal for its whole lifetime.
pub struct Client {
    stream: TcpStream,
    alive: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .field("alive", &self.alive)
            .finish()
    }
}

impl Client {
    /// Connect and handshake without a token.
    pub fn connect(
        addr: impl ToSocketAddrs,
        principal: &str,
        roles: &[&str],
    ) -> Result<Client, ClientError> {
        Client::connect_with_token(addr, principal, roles, "")
    }

    /// Connect and handshake, presenting `token` to a token-guarded
    /// server.
    pub fn connect_with_token(
        addr: impl ToSocketAddrs,
        principal: &str,
        roles: &[&str],
        token: &str,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            alive: true,
        };
        client.send(&ClientMsg::Hello {
            version: proto::PROTOCOL_VERSION,
            principal: principal.into(),
            roles: roles.iter().map(|r| (*r).into()).collect(),
            token: token.into(),
        })?;
        match client.recv()? {
            ServerMsg::HelloAck { .. } => Ok(client),
            ServerMsg::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Closed),
        }
    }

    /// Compile `source` server-side and get a cross-session plan
    /// handle.
    pub fn prepare(&mut self, source: &str) -> Result<Prepared, ClientError> {
        self.send(&ClientMsg::Prepare {
            source: source.into(),
        })?;
        match self.recv()? {
            ServerMsg::Prepared { handle, shared } => Ok(Prepared { handle, shared }),
            ServerMsg::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Closed),
        }
    }

    /// One-shot execute, draining the whole stream.
    pub fn execute(
        &mut self,
        source: &str,
        options: &WireOptions,
    ) -> Result<WireResultSet, ClientError> {
        self.send(&ClientMsg::Execute {
            source: source.into(),
            options: options.clone(),
        })?;
        self.drain_result()
    }

    /// Execute a prepared handle, draining the whole stream.
    pub fn execute_prepared(
        &mut self,
        handle: u64,
        options: &WireOptions,
    ) -> Result<WireResultSet, ClientError> {
        self.send(&ClientMsg::ExecutePrepared {
            handle,
            options: options.clone(),
        })?;
        self.drain_result()
    }

    /// Execute, delivering items to `on_item` as frames arrive. A
    /// `false` return tears the connection down mid-stream (the
    /// client-disconnect path the server must survive) and yields
    /// [`ClientError::Aborted`]; otherwise the server's delivered
    /// count is returned.
    pub fn execute_streaming(
        &mut self,
        source: &str,
        options: &WireOptions,
        mut on_item: impl FnMut(&WireItem) -> bool,
    ) -> Result<u64, ClientError> {
        self.send(&ClientMsg::Execute {
            source: source.into(),
            options: options.clone(),
        })?;
        loop {
            match self.recv()? {
                ServerMsg::Item { atomic, text } => {
                    if !on_item(&WireItem { atomic, text }) {
                        self.alive = false;
                        let _ = self.stream.shutdown(Shutdown::Both);
                        return Err(ClientError::Aborted);
                    }
                }
                ServerMsg::Done { delivered } => return Ok(delivered),
                ServerMsg::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => return Err(ClientError::Closed),
            }
        }
    }

    /// Release this session's reference on a plan handle; `Ok(false)`
    /// when the session did not hold it.
    pub fn close_handle(&mut self, handle: u64) -> Result<bool, ClientError> {
        self.send(&ClientMsg::CloseHandle { handle })?;
        match self.recv()? {
            ServerMsg::HandleClosed { released } => Ok(released),
            ServerMsg::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Closed),
        }
    }

    /// Orderly close: Goodbye, wait for Bye.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&ClientMsg::Goodbye)?;
        match self.recv()? {
            ServerMsg::Bye => {
                self.alive = false;
                Ok(())
            }
            _ => Err(ClientError::Closed),
        }
    }

    fn drain_result(&mut self) -> Result<WireResultSet, ClientError> {
        let mut items = Vec::new();
        loop {
            match self.recv()? {
                ServerMsg::Item { atomic, text } => items.push(WireItem { atomic, text }),
                ServerMsg::Done { delivered } => return Ok(WireResultSet { items, delivered }),
                ServerMsg::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                _ => return Err(ClientError::Closed),
            }
        }
    }

    fn send(&mut self, msg: &ClientMsg) -> Result<(), ClientError> {
        let mut buf = Vec::with_capacity(64);
        msg.write(&mut buf).expect("vec writes are infallible");
        self.stream.write_all(&buf)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        match ServerMsg::read(&mut self.stream) {
            Ok(Some(m)) => Ok(m),
            Ok(None) | Err(WireError::Truncated) => {
                self.alive = false;
                Err(ClientError::Closed)
            }
            Err(e) => {
                self.alive = false;
                Err(e.into())
            }
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        if self.alive {
            // best-effort orderly close; the server also cleans up on
            // a plain disconnect
            let mut buf = Vec::with_capacity(8);
            let _ = ClientMsg::Goodbye.write(&mut buf);
            let _ = self.stream.write_all(&buf);
        }
    }
}
