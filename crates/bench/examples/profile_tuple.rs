//! Dev aid: rough phase timings for the tuple_pipeline bench query.
use aldsp::security::Principal;
use aldsp::{QueryRequest, TraceLevel};
use aldsp_bench::fixtures::{build_world, run, WorldSize, PROLOG};

fn time(label: &str, f: impl Fn()) {
    f();
    let t0 = std::time::Instant::now();
    let n = 5;
    for _ in 0..n {
        f();
    }
    println!(
        "{label:<28} {:>10.2} ms/iter",
        t0.elapsed().as_secs_f64() * 1000.0 / n as f64
    );
}

fn main() {
    let rows = 100_000usize;
    let world = build_world(WorldSize {
        customers: rows / 4,
        orders_per_customer: 4,
        cards_per_customer: 0,
    });
    let user = Principal::new("bench", &[]);
    let full = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 4) as $k
         return <G>{{ $k, fn:count($ids) }}</G>"
    );
    let group_nokey = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 4) as $k
         return fn:count($ids)"
    );
    let no_group = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00
         let $oid := $o/OID
         return fn:substring($o/CID, 1, 4)"
    );
    let no_let = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00
         return fn:substring($o/CID, 1, 4)"
    );
    let scan_only =
        format!("{PROLOG} fn:count(for $o in c:ORDER() where $o/AMOUNT ge 10.00 return 1)");
    time("full grouped", || {
        run(&world.server, &user, &full);
    });
    time("group, count-only return", || {
        run(&world.server, &user, &group_nokey);
    });
    time("no group (let+substring)", || {
        run(&world.server, &user, &no_group);
    });
    time("no group, no let", || {
        run(&world.server, &user, &no_let);
    });
    time("scan only", || {
        run(&world.server, &user, &scan_only);
    });

    for (label, q) in [("no_group", &no_group), ("scan_only", &scan_only)] {
        let resp = world
            .server
            .execute(
                QueryRequest::new(q)
                    .principal(user.clone())
                    .trace(TraceLevel::Operators),
            )
            .unwrap();
        println!("---- {label}\n{}", resp.plan_explain().unwrap_or_default());
    }
}
