//! The group operator (§4.2/§5.2): "ALDSP aims to use pre-sorted or
//! pre-clustered group-by implementations when it can, as this enables
//! grouping to be done in a streaming manner with minimal memory
//! utilization. … In the worst case, ALDSP falls back on sorting."
//!
//! `clustered_streaming` exercises the re-nested outer-join plan (the
//! backend delivers rows ordered by the customer key; the middleware
//! group operator streams). `sorted_fallback` groups by a non-pushable
//! expression, forcing materialize-and-sort. Peak grouped-tuple counts
//! are printed alongside.

use aldsp::security::Principal;
use aldsp_bench::fixtures::{build_world, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 800,
        orders_per_customer: 3,
        cards_per_customer: 0,
    };
    let world = build_world(size);
    let user = Principal::new("bench", &[]);
    let mut group = c.benchmark_group("groupby");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // pre-clustered: the merged LEFT OUTER JOIN arrives ordered by the
    // customer PK → the streaming operator holds one group at a time
    let clustered = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         return <X>{{ $c/CID,
           for $o in c:ORDER() where $o/CID eq $c/CID return $o/OID
         }}</X>"
    );
    group.bench_function("clustered_streaming", |b| {
        b.iter(|| run(&world.server, &user, &clustered))
    });
    let s = *run(&world.server, &user, &clustered).per_query_stats();
    eprintln!(
        "clustered: streaming_groups={} sorted_groups={} peak_grouped_tuples={}",
        s.streaming_groups, s.sorted_groups, s.peak_grouped_tuples
    );

    // the worst case: regrouped raw values used directly — grouping runs
    // in the middleware over an unclustered stream → sort first
    let sorted = format!(
        "{PROLOG}
         for $o in c:ORDER()
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 4) as $k
         return <G>{{ $k, $ids }}</G>"
    );
    group.bench_function("sorted_fallback", |b| {
        b.iter(|| run(&world.server, &user, &sorted))
    });
    let s = *run(&world.server, &user, &sorted).per_query_stats();
    eprintln!(
        "sorted: streaming_groups={} sorted_groups={} peak_grouped_tuples={}",
        s.streaming_groups, s.sorted_groups, s.peak_grouped_tuples
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
