//! Wire-protocol overhead: the same query in-process, ad-hoc over a
//! loopback connection, and via a prepared plan handle. The gap
//! between the three is what the `aldspd` front door costs — framing,
//! per-item streaming, and (for ad-hoc) the plan-cache probe.

use aldsp::security::Principal;
use aldsp::QueryRequest;
use aldsp_client::Client;
use aldsp_protocol::WireOptions;
use aldsp_server::demo::{demo_world, PROLOG};
use aldsp_server::{serve, WireConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let world = demo_world(25);
    let listener =
        serve("127.0.0.1:0", world.server.clone(), WireConfig::default()).expect("bind loopback");
    let addr = listener.local_addr();
    let query = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         where $c/LAST_NAME = \"Jones\"
         order by $c/CID
         return <P>{{$c/CID}}{{$c/LAST_NAME}}</P>"
    );
    let principal = Principal::new("bench", &[]);
    let mut group = c.benchmark_group("wire_loopback");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("in_process", |b| {
        b.iter(|| {
            world
                .server
                .execute(QueryRequest::new(&query).principal(principal.clone()))
                .expect("executes")
        })
    });

    let mut adhoc = Client::connect(addr, "bench", &[]).expect("connect");
    group.bench_function("wire_adhoc", |b| {
        b.iter(|| {
            adhoc
                .execute(&query, &WireOptions::default())
                .expect("executes")
        })
    });

    let mut prepared_client = Client::connect(addr, "bench", &[]).expect("connect");
    let prepared = prepared_client.prepare(&query).expect("prepares");
    group.bench_function("wire_prepared", |b| {
        b.iter(|| {
            prepared_client
                .execute_prepared(prepared.handle, &WireOptions::default())
                .expect("executes")
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
