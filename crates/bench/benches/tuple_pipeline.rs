//! Tuple-pipeline throughput (§5.1, Fig. 4): a tuple-heavy FLWOR
//! (scan → where → let → group-by) where every row flows through the
//! middleware tuple pipeline — per-row column binds, a middleware
//! `where`, a `let`, and a sorted (non-clustered) group-by whose key
//! extraction reads bound variables per buffered tuple.
//!
//! The group key is wrapped in `fn:substring`, which no dialect pushes,
//! so grouping always runs in the middleware (sorted fallback) and the
//! variable-resolution cost of the tuple representation dominates.
//! Cases run at 10k and 100k source rows; `BENCH_PR6.json` records the
//! medians via `scripts/bench_json.sh` (`BENCH_PR4.json` holds the
//! pre-VM baseline). Two further 100k cases isolate the expression
//! VM's hot paths: a predicate-heavy scan and a computed-key sort.

use aldsp::security::Principal;
use aldsp::{ExecutionOptions, PushdownLevel};
use aldsp_bench::fixtures::{build_world, build_world_tuned, run, run_parallel, WorldSize, PROLOG};
use aldsp_runtime::{Env, NamedEnv};
use aldsp_xdm::item::Item;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const ORDERS_PER_CUSTOMER: usize = 4;

fn grouped_query() -> String {
    format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 4) as $k
         return <G>{{ $k, fn:count($ids) }}</G>"
    )
}

/// The two variable-resolution schemes head-to-head at tuple
/// granularity, in the shape one pipeline row actually has: rebind the
/// loop variable, then read several bindings — the `where` predicate,
/// the `let` value, the group key, and the `return` body all resolve
/// variables against the tuple. Each side pays what its evaluator paid:
/// the name-based engine extended the list (an allocation), scanned it
/// by string compare per read, and *cloned the sequence out* (`Var`
/// evaluation returned an owned sequence); the slot engine copies the
/// cell array once per rebind, then every read is an indexed borrow.
fn bench_env_repr(c: &mut Criterion) {
    const DEPTH: usize = 8;
    const ROWS: i64 = 10_000;
    // one read deep in the scope, one in the middle, two near the top —
    // roughly a where + let + key + return's worth of resolutions
    const READS: [usize; 4] = [0, 3, 6, 7];

    let names: Vec<String> = (0..DEPTH).map(|i| format!("o__{i}#FIELD__{i}")).collect();

    let mut group = c.benchmark_group("env_repr");
    group.sample_size(20);

    group.bench_function("named_list_10k", |b| {
        let mut base = NamedEnv::empty();
        for (i, n) in names.iter().enumerate() {
            base = base.bind(n, vec![Item::int(i as i64)]);
        }
        b.iter(|| {
            let mut seen = 0i64;
            for row in 0..ROWS {
                let e = base.bind("x__9", vec![Item::int(row)]);
                for r in READS {
                    // the seed evaluator's Var arm: look up, clone out
                    if let Some(v) = black_box(&e).get(&names[r]) {
                        seen += black_box(v.clone()).len() as i64;
                    }
                }
            }
            black_box(seen)
        })
    });

    group.bench_function("slot_frame_10k", |b| {
        let mut base = Env::with_width(DEPTH + 1);
        for i in 0..DEPTH {
            base = base.bind_one(i as u32, Item::int(i as i64));
        }
        let x_slot = DEPTH as u32;
        b.iter(|| {
            let mut seen = 0i64;
            for row in 0..ROWS {
                let e = base.bind_one(x_slot, Item::int(row));
                for r in READS {
                    // the slot evaluator's Var arm: an indexed borrow
                    if let Some(v) = black_box(&e).get_slot(r as u32) {
                        seen += black_box(v).len() as i64;
                    }
                }
            }
            black_box(seen)
        })
    });

    group.finish();
}

fn bench(c: &mut Criterion) {
    let user = Principal::new("bench", &[]);
    let q = grouped_query();

    let mut group = c.benchmark_group("tuple_pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    for &rows in &[10_000usize, 100_000] {
        let world = build_world(WorldSize {
            customers: rows / ORDERS_PER_CUSTOMER,
            orders_per_customer: ORDERS_PER_CUSTOMER,
            cards_per_customer: 0,
        });
        // sanity: the group-by must run in the middleware (sorted mode),
        // otherwise the bench is not measuring the tuple pipeline
        let s = *run(&world.server, &user, &q).per_query_stats();
        assert!(
            s.sorted_groups > 0,
            "group-by was not middleware-sorted: streaming={} sorted={}",
            s.streaming_groups,
            s.sorted_groups
        );
        let label = format!("grouped_flwor_{}k", rows / 1000);
        group.bench_with_input(BenchmarkId::from_parameter(&label), &rows, |b, _| {
            b.iter(|| black_box(run(&world.server, &user, &q)))
        });
        // the workers dimension: the same query through the morsel
        // pool (byte-identity is pinned by tests/parallel.rs; here we
        // only measure)
        for workers in [2usize, 4] {
            let s = *run_parallel(&world.server, &user, &q, workers).per_query_stats();
            assert!(
                s.morsels_executed > 0,
                "workers={workers} never engaged the morsel pool"
            );
            let label = format!("grouped_flwor_{}k_w{workers}", rows / 1000);
            group.bench_with_input(BenchmarkId::from_parameter(&label), &rows, |b, _| {
                b.iter(|| black_box(run_parallel(&world.server, &user, &q, workers)))
            });
        }
    }

    // expression-VM hot paths in isolation: pushdown stays off so the
    // predicates and sort keys run in the middleware (compiled to
    // bytecode programs), not at the source
    let world = build_world_tuned(
        WorldSize {
            customers: 100_000 / ORDERS_PER_CUSTOMER,
            orders_per_customer: ORDERS_PER_CUSTOMER,
            cards_per_customer: 0,
        },
        |b| b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off)),
    );
    let predicate_q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 10.00 and $o/OID mod 2 eq 0
               and fn:starts-with($o/CID, \"C\")
         return $o/OID"
    );
    group.bench_function("predicate_heavy_100k", |b| {
        b.iter(|| black_box(run(&world.server, &user, &predicate_q)))
    });
    let order_q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         order by fn:substring($o/CID, 2, 6) descending, $o/OID
         return $o/OID"
    );
    group.bench_function("order_key_100k", |b| {
        b.iter(|| black_box(run(&world.server, &user, &order_q)))
    });
    group.finish();
}

criterion_group!(benches, bench, bench_env_repr);
criterion_main!(benches);
