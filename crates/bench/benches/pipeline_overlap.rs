//! PP-k block prefetch (§5.2 pipelining): while the local join consumes
//! block N, a background worker fetches block N+1. With a per-roundtrip
//! source latency and real per-tuple downstream work (a simulated
//! credit-rating call per customer), depth 1 should hide all but the
//! first roundtrip; depth 0 is the synchronous baseline that pays
//! fetch + join serially for every block.

use aldsp::relational::LatencyModel;
use aldsp::security::Principal;
use aldsp_bench::fixtures::{build_world_prefetch, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const QUERY: &str = r#"
    for $c in c:CUSTOMER()
    return <P>{ $c/CID,
      <CARDS>{
        for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
      }</CARDS>,
      <RATING>{
        fn:data(ws:getRating(
          <r:getRating>
            <r:lName>{fn:data($c/LAST_NAME)}</r:lName>
            <r:ssn>{fn:data($c/SSN)}</r:ssn>
          </r:getRating>)/r:getRatingResult)
      }</RATING> }</P>"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_overlap");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for depth in [0usize, 1, 2, 4] {
        // a fresh world per depth: prefetch depth is a compile-time knob
        let size = WorldSize {
            customers: 120,
            orders_per_customer: 0,
            cards_per_customer: 2,
        };
        let world = build_world_prefetch(size, 20, depth);
        world.db2.set_latency(LatencyModel::lan(2000)); // 2ms per roundtrip
        world.rating.set_latency(Duration::from_micros(100));
        let q = format!("{PROLOG}\n{QUERY}");
        let user = Principal::new("bench", &[]);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| run(&world.server, &user, &q))
        });
        let stats = world.server.stats();
        eprintln!(
            "depth={depth}: {} blocks prefetched, consumer blocked {:.2}ms waiting, db2 peak in-flight {}",
            stats.ppk_prefetched_blocks,
            stats.ppk_prefetch_wait_ns as f64 / 1e6,
            world.db2.stats().peak_inflight
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
