//! Async and cache behavior of the runtime extensions (§5.4–5.5):
//! overlapping independent service latencies with `fn-bea:async`, and
//! turning a slow service call into a lookup with the function cache.

use aldsp::security::Principal;
use aldsp::xdm::QName;
use aldsp_bench::fixtures::{build_world, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 1,
        orders_per_customer: 0,
        cards_per_customer: 0,
    };
    let mut group = c.benchmark_group("resilience");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // two independent 300µs service calls: sequential vs async
    let world = build_world(size);
    world.rating.set_latency(Duration::from_micros(300));
    let user = Principal::new("bench", &[]);
    let sync_q = format!(
        r#"{PROLOG}
        for $c in c:CUSTOMER()
        return <B>{{
          <A1>{{fn:data(ws:getRating(<r:getRating><r:lName>x</r:lName><r:ssn>1</r:ssn></r:getRating>)/r:getRatingResult)}}</A1>,
          <A2>{{fn:data(ws:getRating(<r:getRating><r:lName>y</r:lName><r:ssn>2</r:ssn></r:getRating>)/r:getRatingResult)}}</A2>
        }}</B>"#
    );
    let async_q = sync_q
        .replace("<A1>{", "fn-bea:async(<A1>{")
        .replace("}</A1>", "}</A1>)")
        .replace("<A2>{", "fn-bea:async(<A2>{")
        .replace("}</A2>", "}</A2>)");
    group.bench_function("two_calls_sequential", |b| {
        b.iter(|| run(&world.server, &user, &sync_q))
    });
    group.bench_function("two_calls_async", |b| {
        b.iter(|| run(&world.server, &user, &async_q))
    });

    // the function cache: slow call vs cached lookup (§5.5)
    let world = build_world(size);
    world.rating.set_latency(Duration::from_micros(500));
    let q = format!(
        r#"{PROLOG}
        fn:data(ws:getRating(<r:getRating><r:lName>a</r:lName><r:ssn>7</r:ssn></r:getRating>)/r:getRatingResult)"#
    );
    group.bench_function("service_call_uncached", |b| {
        b.iter(|| run(&world.server, &user, &q))
    });
    world.server.enable_function_cache(
        QName::new("urn:ratingWS", "getRating"),
        Duration::from_secs(600),
    );
    run(&world.server, &user, &q);
    group.bench_function("service_call_cached", |b| {
        b.iter(|| run(&world.server, &user, &q))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
