//! Join method repertoire (§5.2): "nested loop, index nested loop, PP-k
//! using nested loops, and PP-k using index nested loops … with the most
//! performant one being PP-k using index nested loops" — plus the
//! baseline that beats them all where applicable: pushing the whole join
//! into one source as SQL.

use aldsp::compiler::LocalJoinMethod;
use aldsp::security::Principal;
use aldsp_bench::fixtures::{build_world_opts, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

const CROSS_SOURCE: &str = r#"
    for $c in c:CUSTOMER()
    return <P>{ $c/CID, <CARDS>{
      for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
    }</CARDS> }</P>"#;

const SAME_SOURCE: &str = r#"
    for $c in c:CUSTOMER(), $o in c:ORDER()
    where $c/CID eq $o/CID
    return <CO>{ $c/CID, $o/OID }</CO>"#;

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 500,
        orders_per_customer: 2,
        cards_per_customer: 2,
    };
    let user = Principal::new("bench", &[]);
    let mut group = c.benchmark_group("join_strategies");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // PP-k with index-nested-loop local join (the paper's best)
    let inl = build_world_opts(size, 20, LocalJoinMethod::IndexNestedLoop);
    let q = format!("{PROLOG}\n{CROSS_SOURCE}");
    group.bench_function("ppk20_index_nested_loop", |b| {
        b.iter(|| run(&inl.server, &user, &q))
    });

    // PP-k with plain nested-loop local join
    let nl = build_world_opts(size, 20, LocalJoinMethod::NestedLoop);
    group.bench_function("ppk20_nested_loop", |b| {
        b.iter(|| run(&nl.server, &user, &q))
    });

    // the SQL-pushdown "join method" (§5.2: "SQL pushdown is also a join
    // method of sorts"): same-source join runs as ONE statement
    let push = build_world_opts(size, 20, LocalJoinMethod::IndexNestedLoop);
    let q2 = format!("{PROLOG}\n{SAME_SOURCE}");
    group.bench_function("same_source_sql_pushdown", |b| {
        b.iter(|| run(&push.server, &user, &q2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
