//! Inverse functions (§4.4): with `date2int` registered as the inverse
//! of `int2date`, the predicate `int2date($c/SINCE) gt $start` pushes as
//! `SINCE > ?`; without it, every row is fetched and filtered in the
//! middleware (calling the transform per row).

use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::value::{AtomicValue, DateTime};
use aldsp::QueryRequest;
use aldsp_bench::fixtures::{build_world_opts, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 1500,
        orders_per_customer: 0,
        cards_per_customer: 0,
    };
    let query = format!(
        "{PROLOG}
         declare variable $start as xs:dateTime external;
         for $c in c:CUSTOMER()
         where lib:int2date($c/SINCE) gt $start
         return $c/CID"
    );
    let user = Principal::new("bench", &[]);
    let arg = vec![Item::Atomic(AtomicValue::DateTime(DateTime(1_900_000_000)))];
    let mut group = c.benchmark_group("inverse_pushdown");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // WITH the inverse declared (the fixtures declare it)
    let world = build_world_opts(size, 20, aldsp::compiler::LocalJoinMethod::IndexNestedLoop);
    group.bench_function("with_inverse_pushed_to_sql", |b| {
        b.iter(|| {
            world
                .server
                .execute(
                    QueryRequest::new(&query)
                        .principal(user.clone())
                        .bind("start", arg.clone()),
                )
                .expect("query")
        })
    });

    // WITHOUT: rebuild a server lacking the inverse declaration — the
    // same query must filter in the middleware
    let plain = build_world_without_inverse(size);
    group.bench_function("without_inverse_middleware_filter", |b| {
        b.iter(|| {
            plain
                .server
                .execute(
                    QueryRequest::new(&query)
                        .principal(user.clone())
                        .bind("start", arg.clone()),
                )
                .expect("query")
        })
    });
    // sanity: identical answers
    let a = world
        .server
        .execute(
            QueryRequest::new(&query)
                .principal(user.clone())
                .bind("start", arg.clone()),
        )
        .expect("q");
    let b = plain
        .server
        .execute(
            QueryRequest::new(&query)
                .principal(user.clone())
                .bind("start", arg.clone()),
        )
        .expect("q");
    assert_eq!(a.items().len(), b.items().len());
    group.finish();
}

/// The fixture world minus the inverse declaration.
fn build_world_without_inverse(size: WorldSize) -> aldsp_bench::fixtures::World {
    // fixtures always declare the inverse; strip it by rebuilding the
    // compiler-facing part through a fresh builder
    aldsp_bench::fixtures::build_world_no_inverse(size)
}

criterion_group!(benches, bench);
criterion_main!(benches);
