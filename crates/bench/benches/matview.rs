//! Incremental materialization under a read-mostly workload (95/5
//! read/write mix): a materialized data service — maintained in place
//! by the write path — against the two §5.5 alternatives, no caching
//! and the TTL function cache.
//!
//! Each iteration runs 20 operations: 19 calls of the profile service
//! and one point write submitted through it. The materialized server
//! serves reads from the registry and patches on write; the TTL server
//! caches the underlying `CUSTOMER()` scan (shape work still runs per
//! read, and the cached scan goes stale until expiry — it is the
//! *freshness* strawman, not a correctness peer); the uncached server
//! recomputes everything.

use aldsp::security::Principal;
use aldsp::updates::ConcurrencyPolicy;
use aldsp::xdm::value::AtomicValue;
use aldsp::xdm::QName;
use aldsp::{AldspServer, CallCriteria, MatViewPolicy, QueryRequest};
use aldsp_bench::fixtures::{build_world_tuned, World, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const PROFILE_MODULE: &str = r#"
    declare namespace p = "urn:profileDS";
    declare function p:getProfile() as element(PROFILE)* {
      for $c in c:CUSTOMER()
      return
        <PROFILE>
          <CID>{fn:data($c/CID)}</CID>
          <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
          <SINCE>{lib:int2date($c/SINCE)}</SINCE>
        </PROFILE>
    };
"#;

fn provider() -> QName {
    QName::new("urn:profileDS", "getProfile")
}

fn size() -> WorldSize {
    WorldSize {
        customers: 200,
        orders_per_customer: 0,
        cards_per_customer: 0,
    }
}

fn deployed(tune: impl FnOnce(aldsp::ServerBuilder) -> aldsp::ServerBuilder) -> World {
    let w = build_world_tuned(size(), tune);
    w.server
        .deploy(&format!("{PROLOG}{PROFILE_MODULE}"))
        .expect("deploys");
    w
}

/// 19 reads + 1 write, the write rotating through customers.
fn mixed_round(server: &AldspServer, user: &Principal, round: &mut u64) {
    for op in 0..20u64 {
        if op == 7 {
            let cid = format!("C{:06}", *round % size().customers as u64);
            let criteria = CallCriteria {
                filter: vec![("CID".into(), AtomicValue::str(&cid))],
                ..Default::default()
            };
            let mut sdo = server
                .read_object(user, &provider(), vec![], &criteria)
                .expect("reads")
                .expect("row exists");
            sdo.set("LAST_NAME", Some(AtomicValue::str(&format!("N{round}"))))
                .expect("writable");
            server
                .submit(user, &provider(), &sdo, ConcurrencyPolicy::UpdatedValues)
                .expect("submits");
            *round += 1;
        } else {
            let resp = server
                .execute(QueryRequest::call(provider()).principal(user.clone()))
                .expect("reads");
            assert_eq!(resp.delivered(), size().customers as u64);
        }
    }
}

/// One materialized (or recomputed) read of the whole profile service.
fn one_read(server: &AldspServer, user: &Principal) {
    let resp = server
        .execute(QueryRequest::call(provider()).principal(user.clone()))
        .expect("reads");
    assert_eq!(resp.delivered(), size().customers as u64);
}

fn bench(c: &mut Criterion) {
    let user = Principal::new("bench", &[]);
    let mut group = c.benchmark_group("matview");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let mat = deployed(|b| b.materialize(provider(), MatViewPolicy::PatchOrInvalidate));
    one_read(&mat.server, &user); // warm
    group.bench_function("materialized_read", |b| {
        b.iter(|| one_read(&mat.server, &user))
    });
    let mut round = 0u64;
    group.bench_function("materialized_95_5", |b| {
        b.iter(|| mixed_round(&mat.server, &user, &mut round))
    });
    let s = mat.server.stats();
    assert!(
        s.matview_hits > 0 && s.matview_patches > 0,
        "mix did not exercise hit+patch: {s:?}"
    );

    let ttl = deployed(|b| b);
    ttl.server.enable_function_cache(
        QName::new("urn:custDS", "CUSTOMER"),
        Duration::from_secs(3600),
    );
    one_read(&ttl.server, &user); // warm
    group.bench_function("ttl_cache_read", |b| {
        b.iter(|| one_read(&ttl.server, &user))
    });
    let mut round = 0u64;
    group.bench_function("ttl_cache_95_5", |b| {
        b.iter(|| mixed_round(&ttl.server, &user, &mut round))
    });

    let raw = deployed(|b| b);
    group.bench_function("uncached_read", |b| b.iter(|| one_read(&raw.server, &user)));
    let mut round = 0u64;
    group.bench_function("uncached_95_5", |b| {
        b.iter(|| mixed_round(&raw.server, &user, &mut round))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
