//! Compilation caching (§2.2 plan cache, §4.2 view sub-optimizer):
//! "ALDSP maintains a query plan cache in order to avoid repeatedly
//! compiling popular queries", and view plans are partially optimized
//! once and reused per query.

use aldsp::security::Principal;
use aldsp_bench::fixtures::{build_world, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

const VIEW_MODULE_TEMPLATE: &str = r#"
    declare namespace v = "urn:views";
    declare function v:profiles() as element(P)* {
      for $c in c:CUSTOMER()
      return <P><CID>{fn:data($c/CID)}</CID><N>{fn:data($c/LAST_NAME)}</N></P>
    };
"#;

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 10,
        orders_per_customer: 1,
        cards_per_customer: 0,
    };
    let world = build_world(size);
    world
        .server
        .deploy(&format!("{PROLOG}{VIEW_MODULE_TEMPLATE}"))
        .expect("deploys");
    let user = Principal::new("bench", &[]);
    let query = format!(
        "{PROLOG}
         declare namespace v = \"urn:views\";
         for $p in v:profiles() where $p/CID eq \"C000003\" return $p"
    );
    let mut group = c.benchmark_group("compile_cache");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // full compilation every time (bypassing the plan cache by calling
    // the compiler directly)
    group.bench_function("compile_from_scratch", |b| {
        b.iter(|| {
            world
                .server
                .compiler()
                .compile_query(&query)
                .expect("compiles")
        })
    });

    // plan-cache hit: compile once, then the server reuses the plan
    run(&world.server, &user, &query);
    group.bench_function("plan_cache_hit_execute", |b| {
        b.iter(|| run(&world.server, &user, &query))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
