//! Middleware join methods (the cost-based join planner): the flat
//! cross-source equi-join `for $c in src1(), $k in src2() where …` at
//! 10k×10k with *no* usable index — the shape where per-tuple nested
//! loop pays one roundtrip per outer tuple and the source scans the
//! whole inner table each time, while the symmetric hash join fetches
//! the inner side ONCE and probes locally. `Auto` must pick hash from
//! the introspected statistics; the acceptance bar is ≥3× over forced
//! nested loop (BENCH_PR9.json).
//!
//! The 3-way chain alternates sources (db1 → db2 → db1) so no SQL
//! pushdown can merge it; the planner re-plans each step greedily
//! left-deep off the running cardinality estimate.

use aldsp::security::Principal;
use aldsp::{ExecutionOptions, JoinStrategy, QueryRequest};
use aldsp_bench::fixtures::{build_world_tuned, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

const FLAT_10K: &str = r#"
    for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
    where $k/CID eq $c/CID
    return <R>{ $c/CID, $k/CCN }</R>"#;

const CHAIN_3WAY: &str = r#"
    for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD(), $o in c:ORDER()
    where $k/CID eq $c/CID and $o/CID eq $c/CID
    return <R>{ $c/CID, $k/CCN, $o/OID }</R>"#;

fn bench(c: &mut Criterion) {
    let size = |customers| WorldSize {
        customers,
        orders_per_customer: 1,
        cards_per_customer: 1,
    };
    let big = build_world_tuned(size(10_000), |b| b);
    // a second cardinality ratio: 1k×~875 sits right at the scale where
    // per-tuple roundtrips start to lose
    let small = build_world_tuned(size(1_000), |b| b);
    let user = Principal::new("bench", &[]);
    let run = |world: &aldsp_bench::fixtures::World, q: &str, strategy: JoinStrategy| {
        world
            .server
            .execute(
                QueryRequest::new(q)
                    .principal(user.clone())
                    .execution(ExecutionOptions::new().join_strategy(strategy)),
            )
            .expect("query executes")
    };

    let mut group = c.benchmark_group("join_methods");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    let flat = format!("{PROLOG}\n{FLAT_10K}");
    // the paper's syntactic plan: one parameterized statement per outer
    // tuple, the source scanning 10k unindexed rows per statement
    group.bench_function("flat_10kx10k_nested_loop", |b| {
        b.iter(|| run(&big, &flat, JoinStrategy::NestedLoop))
    });
    // for the flat shape the parameterized statement IS the index
    // nested loop — identical execution, pinned here as its own case
    group.bench_function("flat_10kx10k_index_nl", |b| {
        b.iter(|| run(&big, &flat, JoinStrategy::IndexNl))
    });
    // cost-based: statistics say hash; one bulk fetch, local probes
    group.bench_function("flat_10kx10k_auto", |b| {
        b.iter(|| run(&big, &flat, JoinStrategy::Auto))
    });
    group.bench_function("flat_10kx10k_merge", |b| {
        b.iter(|| run(&big, &flat, JoinStrategy::Merge))
    });

    group.bench_function("flat_1kx1k_nested_loop", |b| {
        b.iter(|| run(&small, &flat, JoinStrategy::NestedLoop))
    });
    group.bench_function("flat_1kx1k_auto", |b| {
        b.iter(|| run(&small, &flat, JoinStrategy::Auto))
    });

    let chain = format!("{PROLOG}\n{CHAIN_3WAY}");
    group.bench_function("chain_3way_nested_loop", |b| {
        b.iter(|| run(&big, &chain, JoinStrategy::NestedLoop))
    });
    group.bench_function("chain_3way_auto", |b| {
        b.iter(|| run(&big, &chain, JoinStrategy::Auto))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
