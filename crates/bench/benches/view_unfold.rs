//! View unfolding (§4.2): a query through layered data services must be
//! "every bit as performant as queries over base data" — the layers are
//! compiled away, so execution through three view layers matches the
//! hand-written base query, and the predicate lands in the SQL either
//! way.

use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::QName;
use aldsp::QueryRequest;
use aldsp_bench::fixtures::{build_world, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let size = WorldSize {
        customers: 500,
        orders_per_customer: 0,
        cards_per_customer: 0,
    };
    let world = build_world(size);
    world
        .server
        .deploy(&format!(
            "{PROLOG}
             declare namespace v = \"urn:views\";
             declare function v:layer1() as element(CUSTOMER)* {{
               for $c in c:CUSTOMER() return $c
             }};
             declare function v:layer2() as element(CUSTOMER)* {{
               for $c in v:layer1() return $c
             }};
             declare function v:byId($id as xs:string) as element(CUSTOMER)* {{
               v:layer2()[CID eq $id]
             }};"
        ))
        .expect("deploys");
    let user = Principal::new("bench", &[]);
    let direct = format!(
        "{PROLOG}
         declare variable $id as xs:string external;
         for $c in c:CUSTOMER() where $c/CID eq $id return $c"
    );
    let layered = format!(
        "{PROLOG}
         declare namespace v = \"urn:views\";
         declare variable $id as xs:string external;
         v:byId($id)"
    );
    let arg = vec![Item::str("C001000")];
    let mut group = c.benchmark_group("view_unfold");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("direct_base_query", |b| {
        b.iter(|| {
            world
                .server
                .execute(
                    QueryRequest::new(&direct)
                        .principal(user.clone())
                        .bind("id", arg.clone()),
                )
                .expect("query")
        })
    });
    group.bench_function("through_three_view_layers", |b| {
        b.iter(|| {
            world
                .server
                .execute(
                    QueryRequest::new(&layered)
                        .principal(user.clone())
                        .bind("id", arg.clone()),
                )
                .expect("query")
        })
    });
    // sanity: both return the same customer
    let a = world
        .server
        .execute(
            QueryRequest::new(&direct)
                .principal(user.clone())
                .bind("id", arg.clone()),
        )
        .expect("query");
    let b = world
        .server
        .execute(
            QueryRequest::new(&layered)
                .principal(user.clone())
                .bind("id", arg.clone()),
        )
        .expect("query");
    assert_eq!(
        aldsp::xdm::xml::serialize_sequence(a.items()),
        aldsp::xdm::xml::serialize_sequence(b.items())
    );
    let _ = QName::local("x");
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
