//! PP-k block-size sweep (§4.2): "A small value of k means many
//! roundtrips, while large k approximates a full middleware index join;
//! by default, ALDSP uses a medium-sized k value (20)."
//!
//! The cross-source profile query runs against db2 with a simulated
//! per-roundtrip latency; block size is the compiler knob. Expectation:
//! k=1 is dominated by roundtrips, large k converges, k=20 sits at the
//! paper's sweet spot.

use aldsp::compiler::LocalJoinMethod;
use aldsp::relational::LatencyModel;
use aldsp::security::Principal;
use aldsp_bench::fixtures::{build_world_opts, run, WorldSize, PROLOG};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const QUERY: &str = r#"
    for $c in c:CUSTOMER()
    return <P>{ $c/CID, <CARDS>{
      for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN
    }</CARDS> }</P>"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppk_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for k in [1usize, 5, 20, 100] {
        // a fresh world per k: the block size is a compile-time knob
        let size = WorldSize {
            customers: 200,
            orders_per_customer: 0,
            cards_per_customer: 2,
        };
        let world = build_world_opts(size, k, LocalJoinMethod::IndexNestedLoop);
        world.db2.set_latency(LatencyModel::lan(200)); // 200µs per roundtrip
        let q = format!("{PROLOG}\n{QUERY}");
        let user = Principal::new("bench", &[]);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| run(&world.server, &user, &q))
        });
        let stats = world.db2.stats();
        eprintln!(
            "k={k}: {} roundtrips to db2 across the measured runs",
            stats.roundtrips
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
