//! Figure 4: the three tuple representations. "The stream representation
//! … has fairly low memory requirements but … expensive processing if
//! some of the content of a tuple … needs to be skipped over. The single
//! token representation … is cheap when content can be skipped. The
//! array version … has higher memory requirements but provides cheap
//! access to all fields."

use aldsp::xdm::tokens::{approx_size, encode_tuple, extract_field, Token, TupleRepr};
use aldsp::xdm::value::AtomicValue;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const WIDTH: usize = 32;

fn fields() -> Vec<Vec<Token>> {
    (0..WIDTH)
        .map(|i| {
            vec![Token::Atomic(if i % 2 == 0 {
                AtomicValue::Integer(i as i64)
            } else {
                AtomicValue::str(&format!("value-{i:04}"))
            })]
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let fs = fields();
    let reprs = [
        ("stream", TupleRepr::Stream),
        ("single_token", TupleRepr::SingleToken),
        ("array", TupleRepr::Array),
    ];
    let mut encode = c.benchmark_group("tuple_encode");
    for (name, repr) in reprs {
        encode.bench_with_input(BenchmarkId::from_parameter(name), &repr, |b, r| {
            b.iter(|| encode_tuple(black_box(&fs), *r))
        });
    }
    encode.finish();

    // field access: last field — the stream form must scan everything,
    // the array form indexes directly
    let mut access = c.benchmark_group("tuple_extract_last_field");
    for (name, repr) in reprs {
        let enc = encode_tuple(&fs, repr);
        access.bench_with_input(BenchmarkId::from_parameter(name), &enc, |b, e| {
            b.iter(|| extract_field(black_box(e), WIDTH - 1).expect("field"))
        });
    }
    access.finish();

    // copy/skip cost: cloning the whole tuple (what a pass-through
    // operator does) — single token is one refcount bump
    let mut skip = c.benchmark_group("tuple_passthrough_clone");
    for (name, repr) in reprs {
        let enc = encode_tuple(&fs, repr);
        skip.bench_with_input(BenchmarkId::from_parameter(name), &enc, |b, e| {
            b.iter(|| black_box(e.clone()))
        });
    }
    skip.finish();

    for (name, repr) in reprs {
        eprintln!(
            "{name}: approx heap size {} bytes",
            approx_size(&encode_tuple(&fs, repr))
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
