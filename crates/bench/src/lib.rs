//! Criterion benches and the experiments harness live in benches/ and src/bin/.
//!
//! This library crate hosts the shared workload fixtures used by both.
pub mod fixtures;
