//! Shared workload fixtures: a scalable version of the paper's running
//! example (Figure 3) — CUSTOMER/ORDER on an Oracle-dialect connection,
//! CREDIT_CARD on a DB2-dialect connection, the credit-rating web
//! service, and the `int2date`/`date2int` library pair (§4.4).
//!
//! Sizes are parameters so benches can sweep; data is generated
//! deterministically from a seed so runs are reproducible.

use aldsp::adaptors::{NativeFunction, SimulatedWebService};
use aldsp::metadata::{WebServiceDescription, WebServiceOperation};
use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::security::Principal;
use aldsp::xdm::schema::ShapeBuilder;
use aldsp::xdm::types::{ItemType, Occurrence, SequenceType};
use aldsp::xdm::value::{AtomicType, AtomicValue, Decimal};
use aldsp::xdm::{Node, QName};
use aldsp::{
    AldspServer, ExecutionOptions, QueryRequest, QueryResponse, ServerBuilder, TraceLevel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Workload size knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorldSize {
    /// Number of customers.
    pub customers: usize,
    /// Average orders per customer.
    pub orders_per_customer: usize,
    /// Average credit cards per customer.
    pub cards_per_customer: usize,
}

impl Default for WorldSize {
    fn default() -> Self {
        WorldSize {
            customers: 100,
            orders_per_customer: 3,
            cards_per_customer: 2,
        }
    }
}

/// The assembled world: the server plus handles used to inject latency
/// and read statistics.
pub struct World {
    /// The ALDSP server.
    pub server: AldspServer,
    /// The customer/order database (Oracle dialect, connection `db1`).
    pub db1: Arc<RelationalServer>,
    /// The credit-card database (DB2 dialect, connection `db2`).
    pub db2: Arc<RelationalServer>,
    /// The credit-rating web service.
    pub rating: Arc<SimulatedWebService>,
}

/// The standard query prolog binding the fixture namespaces.
pub const PROLOG: &str = r#"
    declare namespace c = "urn:custDS";
    declare namespace cc = "urn:ccDS";
    declare namespace ws = "urn:ratingWS";
    declare namespace lib = "urn:lib";
    declare namespace r = "urn:ratingTypes";
"#;

/// Deterministic last names.
const LAST_NAMES: &[&str] = &[
    "Jones", "Smith", "Chen", "Garcia", "Kim", "Patel", "Muller", "Tanaka", "Okafor", "Silva",
];

/// Build the world at the given size with the default PP-k settings.
pub fn build_world(size: WorldSize) -> World {
    build_world_opts(size, 20, aldsp::compiler::LocalJoinMethod::IndexNestedLoop)
}

/// The fixture world *without* the `int2date` inverse declaration — the
/// §4.4 ablation baseline (the predicate stays in the middleware).
pub fn build_world_no_inverse(size: WorldSize) -> World {
    build_world_full(
        size,
        20,
        aldsp::compiler::LocalJoinMethod::IndexNestedLoop,
        1,
        false,
        |b| b,
    )
}

/// Build the world with a hook to tune the [`ServerBuilder`] before
/// `build()` — admission limits, memory budgets, source caps — for the
/// workload-governor experiments.
pub fn build_world_tuned(
    size: WorldSize,
    tune: impl FnOnce(ServerBuilder) -> ServerBuilder,
) -> World {
    build_world_full(
        size,
        20,
        aldsp::compiler::LocalJoinMethod::IndexNestedLoop,
        1,
        true,
        tune,
    )
}

/// Build the world with explicit PP-k knobs (block size and local join
/// method, §4.2/§5.2) for the sweep benchmarks.
pub fn build_world_opts(
    size: WorldSize,
    ppk_block_size: usize,
    ppk_local_method: aldsp::compiler::LocalJoinMethod,
) -> World {
    build_world_full(size, ppk_block_size, ppk_local_method, 1, true, |b| b)
}

/// Build the world with an explicit PP-k prefetch depth (0 = fetch each
/// block on demand) for the pipeline-overlap experiments.
pub fn build_world_prefetch(
    size: WorldSize,
    ppk_block_size: usize,
    ppk_prefetch_depth: usize,
) -> World {
    build_world_full(
        size,
        ppk_block_size,
        aldsp::compiler::LocalJoinMethod::IndexNestedLoop,
        ppk_prefetch_depth,
        true,
        |b| b,
    )
}

fn build_world_full(
    size: WorldSize,
    ppk_block_size: usize,
    ppk_local_method: aldsp::compiler::LocalJoinMethod,
    ppk_prefetch_depth: usize,
    declare_inverse: bool,
    tune: impl FnOnce(ServerBuilder) -> ServerBuilder,
) -> World {
    let mut rng = StdRng::seed_from_u64(0x0A1D5);
    // --- db1: CUSTOMER + ORDER ------------------------------------------
    let mut cat1 = Catalog::new();
    cat1.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col_null("FIRST_NAME", SqlType::Varchar)
            .col_null("SINCE", SqlType::Integer)
            .col_null("SSN", SqlType::Varchar)
            .pk(&["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat1.add(
        TableSchema::builder("ORDER")
            .col("OID", SqlType::Integer)
            .col("CID", SqlType::Varchar)
            .col("AMOUNT", SqlType::Decimal)
            .pk(&["OID"])
            .fk(&["CID"], "CUSTOMER", &["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    let mut db1 = Database::new();
    for t in cat1.tables() {
        db1.create_table(t.clone()).expect("fresh db");
    }
    let mut oid = 0i64;
    for i in 0..size.customers {
        let cid = format!("C{i:06}");
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(&cid),
                SqlValue::str(LAST_NAMES[i % LAST_NAMES.len()]),
                if i % 7 == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::str(&format!("First{i}"))
                },
                SqlValue::Int(rng.gen_range(0..2_000_000_000)),
                SqlValue::str(&format!("{:03}-{:02}-{:04}", i % 900, i % 90, i % 9000)),
            ],
        )
        .expect("generated row");
        let n_orders = multiplicity(i, size.orders_per_customer);
        for _ in 0..n_orders {
            oid += 1;
            db1.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(&cid),
                    SqlValue::Dec(Decimal::from_int(rng.gen_range(1..500))),
                ],
            )
            .expect("generated row");
        }
    }
    // --- db2: CREDIT_CARD -------------------------------------------------
    let mut cat2 = Catalog::new();
    cat2.add(
        TableSchema::builder("CREDIT_CARD")
            .col("CCN", SqlType::Varchar)
            .col("CID", SqlType::Varchar)
            .col("LIMIT_AMT", SqlType::Integer)
            .pk(&["CCN"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    let mut db2 = Database::new();
    for t in cat2.tables() {
        db2.create_table(t.clone()).expect("fresh db");
    }
    let mut ccn = 0u64;
    for i in 0..size.customers {
        let cid = format!("C{i:06}");
        for _ in 0..multiplicity(i, size.cards_per_customer) {
            ccn += 1;
            db2.insert(
                "CREDIT_CARD",
                vec![
                    SqlValue::str(&format!("4000-{ccn:08}")),
                    SqlValue::str(&cid),
                    SqlValue::Int(rng.gen_range(1..50) * 1000),
                ],
            )
            .expect("generated row");
        }
    }
    // --- the rating web service ------------------------------------------
    let ws_ns = "urn:ratingTypes";
    let wsin = ShapeBuilder::element(QName::new(ws_ns, "getRating"))
        .required("lName", AtomicType::String)
        .required("ssn", AtomicType::String)
        .build();
    let wsout = ShapeBuilder::element(QName::new(ws_ns, "getRatingResponse"))
        .required("getRatingResult", AtomicType::Integer)
        .build();
    let rating = Arc::new(SimulatedWebService::new("ratingWS").operation(
        "getRating",
        wsin.clone(),
        wsout.clone(),
        Arc::new(|req| {
            let ssn = req
                .child_elements(&QName::new("urn:ratingTypes", "ssn"))
                .next()
                .map(|n| n.string_value())
                .unwrap_or_default();
            let score = 600 + (ssn.bytes().map(u64::from).sum::<u64>() % 250) as i64;
            Ok(Node::element(
                QName::new("urn:ratingTypes", "getRatingResponse"),
                vec![],
                vec![Node::simple_element(
                    QName::new("urn:ratingTypes", "getRatingResult"),
                    AtomicValue::Integer(score),
                )],
            ))
        }),
    ));
    // --- assemble -----------------------------------------------------------
    let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
    let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
    let (i2d, d2i) = aldsp::adaptors::native::int2date_pair();
    let opt_int = SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional);
    let opt_dt = SequenceType::Seq(ItemType::Atomic(AtomicType::DateTime), Occurrence::Optional);
    let mut builder = ServerBuilder::new()
        .ppk_block_size(ppk_block_size)
        .ppk_local_method(ppk_local_method)
        .execution(ExecutionOptions::new().ppk_prefetch_depth(ppk_prefetch_depth))
        .relational_source(db1.clone(), &cat1, "urn:custDS")
        .expect("register db1")
        .relational_source(db2.clone(), &cat2, "urn:ccDS")
        .expect("register db2")
        .web_service(
            &WebServiceDescription {
                name: "ratingWS".into(),
                namespace: "urn:ratingWS".into(),
                operations: vec![WebServiceOperation {
                    name: "getRating".into(),
                    input: wsin,
                    output: wsout,
                }],
            },
            rating.clone(),
        )
        .expect("register ws")
        .native_function(
            QName::new("urn:lib", "int2date"),
            opt_int.clone(),
            opt_dt.clone(),
            i2d,
        )
        .expect("register int2date")
        .native_function(QName::new("urn:lib", "date2int"), opt_dt, opt_int, d2i)
        .expect("register date2int");
    if declare_inverse {
        builder = builder.inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        );
    }
    let server = tune(builder).build();
    World {
        server,
        db1,
        db2,
        rating,
    }
}

/// Deterministic per-customer multiplicity around the average (some
/// customers have none — the outer-join cases).
fn multiplicity(customer: usize, avg: usize) -> usize {
    if avg == 0 {
        return 0;
    }
    match customer % 4 {
        0 => avg.saturating_sub(1),
        1 => avg,
        2 => avg + 1,
        _ => {
            if customer % 8 == 3 {
                0
            } else {
                avg
            }
        }
    }
}

/// Helper for native-function registration in examples.
pub fn native_pair() -> (NativeFunction, NativeFunction) {
    aldsp::adaptors::native::int2date_pair()
}

/// Execute `source` as `user` (no bindings, no tracing) — the benches'
/// one-liner for the common materialized case.
pub fn run(server: &AldspServer, user: &Principal, source: &str) -> QueryResponse {
    server
        .execute(QueryRequest::new(source).principal(user.clone()))
        .expect("query executes")
}

/// [`run`] with morsel-driven parallelism at `workers` workers — the
/// benches' multi-core dimension. Everything else stays at the
/// server's defaults.
pub fn run_parallel(
    server: &AldspServer,
    user: &Principal,
    source: &str,
    workers: usize,
) -> QueryResponse {
    server
        .execute(
            QueryRequest::new(source)
                .principal(user.clone())
                .execution(ExecutionOptions::new().workers(workers)),
        )
        .expect("query executes")
}

/// [`run`] with per-operator tracing enabled, for the tracing-overhead
/// experiments.
pub fn run_traced(server: &AldspServer, user: &Principal, source: &str) -> QueryResponse {
    server
        .execute(
            QueryRequest::new(source)
                .principal(user.clone())
                .trace(TraceLevel::Operators),
        )
        .expect("query executes")
}
