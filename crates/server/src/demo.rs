//! A self-contained demo deployment for the `aldspd` binary and the
//! loopback bench: the paper's running-example relational sources
//! (CUSTOMER/ORDER on an Oracle-dialect db, CREDIT_CARD on a
//! DB2-dialect db) without the web-service and native-function
//! registrations the integration tests add on top.

use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::xdm::value::Decimal;
use aldsp::{AldspServer, ServerBuilder};
use std::sync::Arc;

/// Namespace declarations matching the demo deployment, for pasting in
/// front of ad-hoc queries.
pub const PROLOG: &str = r#"
    declare namespace c = "urn:custDS";
    declare namespace cc = "urn:ccDS";
"#;

/// A built demo deployment plus its backing simulated sources.
pub struct DemoWorld {
    pub server: Arc<AldspServer>,
    pub db1: Arc<RelationalServer>,
    pub db2: Arc<RelationalServer>,
}

fn customer_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col_null("FIRST_NAME", SqlType::Varchar)
            .col_null("SINCE", SqlType::Integer)
            .col_null("SSN", SqlType::Varchar)
            .pk(&["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat.add(
        TableSchema::builder("ORDER")
            .col("OID", SqlType::Integer)
            .col("CID", SqlType::Varchar)
            .col("AMOUNT", SqlType::Decimal)
            .pk(&["OID"])
            .fk(&["CID"], "CUSTOMER", &["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat
}

fn card_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        TableSchema::builder("CREDIT_CARD")
            .col("CCN", SqlType::Varchar)
            .col("CID", SqlType::Varchar)
            .pk(&["CCN"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat
}

/// [`demo_world`] with a hook to tune the [`ServerBuilder`] before
/// `build()` — admission limits, security policy, execution defaults.
pub fn demo_world_tuned(
    customers: usize,
    tune: impl FnOnce(ServerBuilder) -> ServerBuilder,
) -> DemoWorld {
    let cat1 = customer_catalog();
    let cat2 = card_catalog();
    let mut db1 = Database::new();
    for t in cat1.tables() {
        db1.create_table(t.clone()).expect("fresh db");
    }
    // same data scheme as the integration-test world so wire results
    // can be compared against in-process references over it
    let mut oid = 0;
    for i in 0..customers {
        let cid = format!("C{i:04}");
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(&cid),
                SqlValue::str(["Jones", "Smith", "Chen"][i % 3]),
                if i % 7 == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::str(&format!("F{i}"))
                },
                SqlValue::Int(1000 + i as i64),
                SqlValue::str(&format!("{i:09}")),
            ],
        )
        .expect("generated row");
        for _ in 0..(i % 3) {
            oid += 1;
            db1.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(&cid),
                    SqlValue::Dec(Decimal::from_int((i as i64 % 50) + 1)),
                ],
            )
            .expect("generated row");
        }
    }
    let mut db2 = Database::new();
    for t in cat2.tables() {
        db2.create_table(t.clone()).expect("fresh db");
    }
    let mut ccn = 0;
    for i in 0..customers {
        let cid = format!("C{i:04}");
        for _ in 0..(i % 2) {
            ccn += 1;
            db2.insert(
                "CREDIT_CARD",
                vec![
                    SqlValue::str(&format!("4000-{ccn:06}")),
                    SqlValue::str(&cid),
                ],
            )
            .expect("generated row");
        }
    }
    let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
    let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
    let server = tune(
        ServerBuilder::new()
            .relational_source(db1.clone(), &cat1, "urn:custDS")
            .expect("register db1")
            .relational_source(db2.clone(), &cat2, "urn:ccDS")
            .expect("register db2"),
    )
    .build();
    DemoWorld {
        server: Arc::new(server),
        db1,
        db2,
    }
}

/// Build the demo deployment with `customers` customers (customer i
/// has i%3 orders and i%2 cards; every 7th has no FIRST_NAME).
pub fn demo_world(customers: usize) -> DemoWorld {
    demo_world_tuned(customers, |b| b)
}
