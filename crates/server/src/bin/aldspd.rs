//! `aldspd` — the ALDSP demo daemon.
//!
//! Serves the built-in running-example deployment (CUSTOMER/ORDER +
//! CREDIT_CARD over two simulated relational sources) on a TCP port,
//! then runs until stdin reaches EOF (or the process is killed). The
//! stdin convention keeps shutdown scriptable without signal handling:
//! `tier1.sh` spawns `aldspd`, pipes queries through `aldsp-client`,
//! closes the daemon's stdin, and asserts a clean zero exit.
//!
//! ```text
//! aldspd [--port N] [--customers N] [--token T] [--admission MAX QUEUE]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; the actual
//! address is printed as `aldspd listening on 127.0.0.1:<port>`.

use aldsp_server::{serve, WireConfig};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    port: u16,
    customers: usize,
    token: Option<String>,
    admission: Option<(usize, usize)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 0,
        customers: 25,
        token: None,
        admission: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--port" => {
                args.port = val("--port")?.parse().map_err(|e| format!("--port: {e}"))?;
            }
            "--customers" => {
                args.customers = val("--customers")?
                    .parse()
                    .map_err(|e| format!("--customers: {e}"))?;
            }
            "--token" => args.token = Some(val("--token")?),
            "--admission" => {
                let max = val("--admission MAX")?
                    .parse()
                    .map_err(|e| format!("--admission MAX: {e}"))?;
                let queue = val("--admission QUEUE")?
                    .parse()
                    .map_err(|e| format!("--admission QUEUE: {e}"))?;
                args.admission = Some((max, queue));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: aldspd [--port N] [--customers N] [--token T] [--admission MAX QUEUE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let world = aldsp_server::demo::demo_world_tuned(args.customers, |b| match args.admission {
        Some((max, queue)) => b.admission(max, queue),
        None => b,
    });
    let config = WireConfig {
        token: args.token.clone(),
    };
    let mut listener = match serve(("127.0.0.1", args.port), Arc::clone(&world.server), config) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("aldspd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("aldspd listening on {}", listener.local_addr());
    let _ = std::io::stdout().flush();
    // serve until our stdin closes — the scriptable shutdown signal
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    listener.shutdown();
    println!("aldspd: clean shutdown");
    ExitCode::SUCCESS
}
