//! # aldsp-server — the `aldspd` network front door
//!
//! The paper's ALDSP is a *server*: clients connect, authenticate, and
//! run queries whose cached plans stay user-independent because
//! element-level security is applied post-cache (§7). This crate is
//! that front door: a threaded TCP server speaking the
//! `aldsp-protocol` length-prefixed wire protocol over an existing
//! [`AldspServer`].
//!
//! * **Session security.** The handshake carries the protocol version,
//!   the session's [`Principal`] (name + roles), and an optional
//!   shared-secret token. The principal is pinned into per-connection
//!   session state and stamped onto every [`QueryRequest`], so results
//!   flow through the existing post-cache element-level security path —
//!   one cached plan, per-principal redaction.
//! * **Plan-handle cache.** `Prepare` compiles through the engine's
//!   options-qualified plan cache and returns a numeric handle shared
//!   across sessions: two connections preparing the same text get the
//!   *same* handle (and the same cached plan). Handles are
//!   session-refcounted and evicted when the last holder closes.
//! * **Governance at the socket.** Deadline, priority class, memory
//!   budget and a full `ExecutionOptions` override are all expressible
//!   on the wire; admission shed, mid-stream deadline and budget trips
//!   surface as *typed* error frames ([`aldsp_protocol::code`]), after
//!   any already-streamed result prefix.
//!
//! Result items stream one frame each (individual serialization + an
//! atomic flag); the client reassembles them byte-identically to a
//! server-side serialization — the property the differential `wire`
//! cell pins against the in-process engine.

pub mod demo;

use aldsp::security::Principal;
use aldsp::workload::WorkloadError;
use aldsp::xdm::item::Item;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{
    AldspServer, ExecutionOptions, JoinStrategy, Priority, PushdownLevel, QueryRequest, ServerError,
};
use aldsp_protocol as proto;
use aldsp_protocol::{code, ClientMsg, ServerMsg, WireError, WireOptions};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often blocked reads wake up to check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Write timeout on session sockets: a peer that stops *reading*
/// mid-stream fills the send buffer and would otherwise park the
/// session thread in `write_all` forever (and with it, shutdown's
/// join). A timed-out write is treated as a disconnect.
const WRITE_STALL: Duration = Duration::from_secs(10);

/// Front-door configuration.
#[derive(Debug, Clone, Default)]
pub struct WireConfig {
    /// When set, every handshake must present exactly this token;
    /// anything else is rejected with [`code::AUTH`] and the
    /// connection is closed. `None` accepts any principal unchecked
    /// (the paper delegates authentication to the container).
    pub token: Option<String>,
}

/// The server half of the §2.2 plan cache seen from the wire: a
/// process-wide map from prepared query text to a numeric handle.
/// Handles are deliberately *not* per-session — the whole point of the
/// paper's post-cache security design is that one compiled plan (and
/// one handle) serves every principal, with redaction applied to each
/// session's results afterwards. Entries are refcounted by holding
/// sessions and evicted when the last reference closes.
#[derive(Default)]
pub struct HandleRegistry {
    state: Mutex<HandleState>,
}

#[derive(Default)]
struct HandleState {
    by_source: HashMap<Arc<str>, u64>,
    by_id: HashMap<u64, HandleEntry>,
    next: u64,
}

struct HandleEntry {
    source: Arc<str>,
    sessions: usize,
}

impl HandleRegistry {
    /// Register a reference to `source` for one session; returns
    /// `(handle, shared)` where `shared` is `true` when the handle
    /// already existed (created by this or another session).
    fn acquire(&self, source: &str, already_held: bool) -> (u64, bool) {
        let mut st = self.state.lock();
        if let Some(&id) = st.by_source.get(source) {
            if !already_held {
                st.by_id
                    .get_mut(&id)
                    .expect("by_source and by_id agree")
                    .sessions += 1;
            }
            return (id, true);
        }
        st.next += 1;
        let id = st.next;
        let source: Arc<str> = source.into();
        st.by_source.insert(source.clone(), id);
        st.by_id.insert(
            id,
            HandleEntry {
                source,
                sessions: 1,
            },
        );
        (id, false)
    }

    /// Release one session's reference; the entry (and its source-text
    /// key) is dropped when the last reference goes.
    fn release(&self, id: u64) {
        let mut st = self.state.lock();
        let Some(entry) = st.by_id.get_mut(&id) else {
            return;
        };
        entry.sessions -= 1;
        if entry.sessions == 0 {
            let source = entry.source.clone();
            st.by_id.remove(&id);
            st.by_source.remove(&source);
        }
    }

    fn source_of(&self, id: u64) -> Option<Arc<str>> {
        self.state.lock().by_id.get(&id).map(|e| e.source.clone())
    }

    /// The existing handle for `source`, if any.
    fn id_of(&self, source: &str) -> Option<u64> {
        self.state.lock().by_source.get(source).copied()
    }

    /// Live (referenced) handles.
    pub fn len(&self) -> usize {
        self.state.lock().by_id.len()
    }

    /// No live handles?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A live session: its thread plus a handle on the socket so
/// [`WireListener::shutdown`] can force blocked reads *and writes* to
/// error out before joining.
struct SessionSlot {
    thread: std::thread::JoinHandle<()>,
    stream: TcpStream,
}

/// A running front door. Dropping (or [`WireListener::shutdown`])
/// stops accepting, wakes every session, and joins all threads.
pub struct WireListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<SessionSlot>>>,
    handles: Arc<HandleRegistry>,
}

impl WireListener {
    /// The bound address (`--port 0` binds an ephemeral port; read the
    /// real one here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared plan-handle registry (for tests and introspection).
    pub fn handles(&self) -> &Arc<HandleRegistry> {
        &self.handles
    }

    /// Stop accepting, wake blocked sessions, and join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // accept is joined, so no new slots can appear after the take
        let sessions = std::mem::take(&mut *self.sessions.lock());
        // force-close the sockets first: a session parked in write_all
        // behind a peer that stopped reading errors out immediately
        // instead of holding the join until its write timeout fires
        for s in &sessions {
            let _ = s.stream.shutdown(Shutdown::Both);
        }
        for s in sessions {
            let _ = s.thread.join();
        }
    }
}

impl Drop for WireListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start serving `server` on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port): one accept thread, one thread per connection.
pub fn serve(
    addr: impl ToSocketAddrs,
    server: Arc<AldspServer>,
    config: WireConfig,
) -> std::io::Result<WireListener> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let sessions: Arc<Mutex<Vec<SessionSlot>>> = Arc::default();
    let handles = Arc::new(HandleRegistry::default());
    let accept_thread = {
        let shutdown = shutdown.clone();
        let sessions = sessions.clone();
        let handles = handles.clone();
        std::thread::Builder::new()
            .name("aldspd-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // without a second handle shutdown() could never
                    // unblock this socket, so refuse the connection
                    let Ok(stream_handle) = stream.try_clone() else {
                        continue;
                    };
                    let session = Session {
                        server: server.clone(),
                        handles: handles.clone(),
                        config: config.clone(),
                        shutdown: shutdown.clone(),
                        held: HashSet::new(),
                        principal: Principal::new("anonymous", &[]),
                    };
                    let t = std::thread::Builder::new()
                        .name("aldspd-session".into())
                        .spawn(move || session.run(stream))
                        .expect("spawn session thread");
                    let mut live = sessions.lock();
                    // reap finished sessions so a long-lived server
                    // doesn't accumulate join handles forever
                    live.retain(|s: &SessionSlot| !s.thread.is_finished());
                    live.push(SessionSlot {
                        thread: t,
                        stream: stream_handle,
                    });
                }
            })?
    };
    Ok(WireListener {
        local_addr,
        shutdown,
        accept_thread: Some(accept_thread),
        sessions,
        handles,
    })
}

/// Map a [`ServerError`] onto its typed wire code.
pub fn error_code(e: &ServerError) -> u16 {
    match e {
        ServerError::Compile(_) => code::COMPILE,
        ServerError::Security(_) => code::SECURITY,
        ServerError::Workload(WorkloadError::Overloaded { .. }) => code::OVERLOADED,
        ServerError::Workload(WorkloadError::DeadlineExceeded { .. }) => code::DEADLINE,
        ServerError::Workload(WorkloadError::BudgetExceeded { .. }) => code::BUDGET,
        ServerError::Execute(_) => code::EXECUTE,
        ServerError::Submit(_) | ServerError::Io(_) | ServerError::Other(_) => code::INTERNAL,
    }
}

/// Encode `msg` into one buffer and write it with a single syscall —
/// `write_frame` directly on a `TcpStream` would issue three. Encoding
/// fails (`InvalidData`, nothing written) when the frame would exceed
/// `MAX_FRAME_LEN`; see the oversized-item handling in `run_query`.
fn send(writer: &mut TcpStream, msg: &ServerMsg) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(64);
    msg.write(&mut buf)?;
    writer.write_all(&buf)
}

/// Constant-time handshake-token check: both values are digested
/// through one per-call randomly keyed SipHash and the fixed-width
/// digests compared without early exit, so neither the outcome's
/// timing nor its variance leaks prefix or length information about
/// the required token to unauthenticated peers. (A forged collision
/// would need to beat a keyed 64-bit PRF blind, once per connection.)
fn token_matches(presented: &str, required: &str) -> bool {
    use std::hash::{BuildHasher, Hasher};
    let keys = std::collections::hash_map::RandomState::new();
    let digest = |s: &str| {
        let mut h = keys.build_hasher();
        h.write(s.as_bytes());
        h.finish().to_be_bytes()
    };
    let (a, b) = (digest(presented), digest(required));
    a.iter().zip(b).fold(0u8, |diff, (x, y)| diff | (x ^ y)) == 0
}

/// Why a session loop ended (internal control flow).
enum SessionEnd {
    /// Peer said Goodbye, closed cleanly between frames, or broke the
    /// protocol and was told so.
    Clean,
    /// Transport failed or the peer vanished; nothing more to say.
    Disconnected,
}

struct Session {
    server: Arc<AldspServer>,
    handles: Arc<HandleRegistry>,
    config: WireConfig,
    shutdown: Arc<AtomicBool>,
    held: HashSet<u64>,
    principal: Principal,
}

impl Session {
    fn run(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let _ = stream.set_write_timeout(Some(WRITE_STALL));
        let _ = self.serve_connection(&stream);
        // close the TCP connection explicitly: the listener's
        // SessionSlot holds a clone of this socket (so shutdown() can
        // unblock it), and dropping our handles alone would leave the
        // peer without a FIN until that slot is reaped
        let _ = stream.shutdown(Shutdown::Both);
        // release this session's plan-handle references whatever the
        // exit path — clean Goodbye, mid-stream disconnect, or error
        for id in std::mem::take(&mut self.held) {
            self.handles.release(id);
        }
    }

    /// Read frames until the peer leaves, a protocol error closes the
    /// connection, or the listener shuts down.
    fn serve_connection(&mut self, stream: &TcpStream) -> std::io::Result<SessionEnd> {
        let mut reader = stream.try_clone()?;
        let mut writer = stream.try_clone()?;
        // one resumable frame reader for the connection's lifetime, so
        // a poll timeout mid-frame never discards consumed bytes
        let mut frames = proto::FrameReader::new();
        if !self.handshake(&mut frames, &mut reader, &mut writer)? {
            return Ok(SessionEnd::Clean);
        }
        loop {
            let msg = match self.read_polling(&mut frames, &mut reader) {
                Ok(None) => return Ok(SessionEnd::Clean),
                Ok(Some(m)) => m,
                Err(WireError::Io(_)) | Err(WireError::Truncated) => {
                    return Ok(SessionEnd::Disconnected)
                }
                Err(e) => {
                    // malformed/oversized/unknown frames get a typed
                    // reply, then the connection closes — resyncing a
                    // corrupt byte stream is not possible
                    let _ = send(
                        &mut writer,
                        &ServerMsg::Error {
                            code: code::MALFORMED,
                            message: e.to_string(),
                        },
                    );
                    return Ok(SessionEnd::Clean);
                }
            };
            match msg {
                ClientMsg::Hello { .. } => {
                    send(
                        &mut writer,
                        &ServerMsg::Error {
                            code: code::UNSUPPORTED,
                            message: "duplicate handshake".into(),
                        },
                    )?;
                    return Ok(SessionEnd::Clean);
                }
                ClientMsg::Prepare { source } => self.prepare(&mut writer, &source)?,
                ClientMsg::Execute { source, options } => {
                    if let SessionEnd::Disconnected =
                        self.run_query(&mut writer, &source, &options)?
                    {
                        return Ok(SessionEnd::Disconnected);
                    }
                }
                ClientMsg::ExecutePrepared { handle, options } => {
                    match self.handles.source_of(handle) {
                        None => {
                            // typed and survivable: the connection
                            // stays usable after naming a bad handle
                            send(
                                &mut writer,
                                &ServerMsg::Error {
                                    code: code::UNKNOWN_HANDLE,
                                    message: format!("no prepared plan handle {handle}"),
                                },
                            )?;
                        }
                        Some(source) => {
                            if let SessionEnd::Disconnected =
                                self.run_query(&mut writer, &source, &options)?
                            {
                                return Ok(SessionEnd::Disconnected);
                            }
                        }
                    }
                }
                ClientMsg::CloseHandle { handle } => {
                    let released = self.held.remove(&handle);
                    if released {
                        self.handles.release(handle);
                    }
                    send(&mut writer, &ServerMsg::HandleClosed { released })?;
                }
                ClientMsg::Goodbye => {
                    send(&mut writer, &ServerMsg::Bye)?;
                    return Ok(SessionEnd::Clean);
                }
            }
        }
    }

    /// First frame must be a version-matching, token-passing Hello.
    /// Returns `false` when the connection was rejected (reply already
    /// sent).
    fn handshake(
        &mut self,
        frames: &mut proto::FrameReader,
        reader: &mut TcpStream,
        writer: &mut TcpStream,
    ) -> std::io::Result<bool> {
        let hello = match self.read_polling(frames, reader) {
            Ok(Some(m)) => m,
            Ok(None) | Err(WireError::Io(_)) | Err(WireError::Truncated) => return Ok(false),
            Err(e) => {
                let _ = send(
                    writer,
                    &ServerMsg::Error {
                        code: code::MALFORMED,
                        message: e.to_string(),
                    },
                );
                return Ok(false);
            }
        };
        let ClientMsg::Hello {
            version,
            principal,
            roles,
            token,
        } = hello
        else {
            let _ = send(
                writer,
                &ServerMsg::Error {
                    code: code::UNSUPPORTED,
                    message: "expected Hello as the first frame".into(),
                },
            );
            return Ok(false);
        };
        if version != proto::PROTOCOL_VERSION {
            let _ = send(
                writer,
                &ServerMsg::Error {
                    code: code::VERSION_MISMATCH,
                    message: format!(
                        "client speaks protocol v{version}, server speaks v{}",
                        proto::PROTOCOL_VERSION
                    ),
                },
            );
            return Ok(false);
        }
        if let Some(required) = &self.config.token {
            if !token_matches(&token, required) {
                let _ = send(
                    writer,
                    &ServerMsg::Error {
                        code: code::AUTH,
                        message: "handshake token rejected".into(),
                    },
                );
                return Ok(false);
            }
        }
        let role_refs: Vec<&str> = roles.iter().map(String::as_str).collect();
        self.principal = Principal::new(&principal, &role_refs);
        send(
            writer,
            &ServerMsg::HelloAck {
                version: proto::PROTOCOL_VERSION,
            },
        )?;
        Ok(true)
    }

    /// Blocking read that honors the listener's shutdown flag: the
    /// stream has a [`READ_POLL`] read timeout, so a quiet connection
    /// re-checks the flag a few times a second. The timeout can fire
    /// *inside* a frame (a client that stalls >50ms mid-send is
    /// legitimate); `frames` keeps the consumed prefix buffered so the
    /// retry resumes mid-frame instead of desyncing the stream.
    fn read_polling(
        &self,
        frames: &mut proto::FrameReader,
        reader: &mut TcpStream,
    ) -> Result<Option<ClientMsg>, WireError> {
        loop {
            match frames.read_client(reader) {
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                }
                other => return other,
            }
        }
    }

    /// Compile-check `source` (which lands it in the engine's plan
    /// cache) and hand out a cross-session handle.
    fn prepare(&mut self, writer: &mut TcpStream, source: &str) -> std::io::Result<()> {
        // the explain-only probe compiles through the cached_plan path
        // without executing, so prepare errors surface here and the
        // compiled plan is hot for every later ExecutePrepared
        if let Err(e) = self
            .server
            .execute(QueryRequest::new(source).explain_only())
        {
            return send(
                writer,
                &ServerMsg::Error {
                    code: error_code(&e),
                    message: e.to_string(),
                },
            );
        }
        let already_held = self
            .handles
            .id_of(source)
            .is_some_and(|id| self.held.contains(&id));
        let (handle, shared) = self.handles.acquire(source, already_held);
        self.held.insert(handle);
        send(writer, &ServerMsg::Prepared { handle, shared })
    }

    /// Execute and stream: Item frames as results arrive, then Done —
    /// or a typed Error frame after any already-streamed prefix.
    fn run_query(
        &self,
        writer: &mut TcpStream,
        source: &str,
        options: &WireOptions,
    ) -> std::io::Result<SessionEnd> {
        let mut req = QueryRequest::new(source).principal(self.principal.clone());
        if options.deadline_ms > 0 {
            req = req.deadline(Duration::from_millis(options.deadline_ms));
        }
        if options.batch {
            req = req.priority(Priority::Batch);
        }
        if options.memory_budget > 0 {
            req = req.memory_budget(options.memory_budget);
        }
        if let Some(exec) = &options.exec {
            match decode_exec(exec) {
                Ok(e) => req = req.execution(e),
                Err(msg) => {
                    send(
                        writer,
                        &ServerMsg::Error {
                            code: code::MALFORMED,
                            message: msg.into(),
                        },
                    )?;
                    return Ok(SessionEnd::Clean);
                }
            }
        }
        let mut write_err: Option<std::io::Error> = None;
        let mut oversized: Option<std::io::Error> = None;
        let mut sink = |item: Item| {
            let atomic = matches!(item, Item::Atomic(_));
            let text = serialize_sequence(&[item]);
            match send(&mut *writer, &ServerMsg::Item { atomic, text }) {
                Ok(()) => true,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // the item exceeds MAX_FRAME_LEN — undeliverable
                    // in one frame; abort the stream and report a
                    // typed error (nothing was written, so the
                    // connection stays framed and usable)
                    oversized = Some(e);
                    false
                }
                Err(e) => {
                    // peer gone mid-stream: abort the query cleanly
                    write_err = Some(e);
                    false
                }
            }
        };
        let outcome = self.server.execute(req.stream_to(&mut sink));
        if write_err.is_some() {
            return Ok(SessionEnd::Disconnected);
        }
        if let Some(e) = oversized {
            send(
                writer,
                &ServerMsg::Error {
                    code: code::INTERNAL,
                    message: format!("result item undeliverable: {e}"),
                },
            )?;
            return Ok(SessionEnd::Clean);
        }
        match outcome {
            Ok(resp) => send(
                writer,
                &ServerMsg::Done {
                    delivered: resp.delivered(),
                },
            )?,
            // shed / deadline / budget / runtime errors all surface as
            // typed frames — mid-stream ones arrive after the intact
            // prefix of Item frames
            Err(e) => send(
                writer,
                &ServerMsg::Error {
                    code: error_code(&e),
                    message: e.to_string(),
                },
            )?,
        }
        Ok(SessionEnd::Clean)
    }
}

/// Lift a wire execution override into typed [`ExecutionOptions`].
fn decode_exec(e: &proto::WireExec) -> Result<ExecutionOptions, &'static str> {
    let pushdown = match e.pushdown {
        proto::pushdown::OFF => PushdownLevel::Off,
        proto::pushdown::JOINS => PushdownLevel::Joins,
        proto::pushdown::FULL => PushdownLevel::Full,
        _ => return Err("unknown pushdown level on the wire"),
    };
    let join_strategy = match e.join_strategy {
        proto::join::AUTO => JoinStrategy::Auto,
        proto::join::NESTED_LOOP => JoinStrategy::NestedLoop,
        proto::join::INDEX_NL => JoinStrategy::IndexNl,
        proto::join::HASH => JoinStrategy::Hash,
        proto::join::MERGE => JoinStrategy::Merge,
        _ => return Err("unknown join strategy on the wire"),
    };
    Ok(ExecutionOptions::new()
        .workers(e.workers as usize)
        .morsel_size((e.morsel_size as usize).max(1))
        .ppk_prefetch_depth(e.ppk_prefetch_depth as usize)
        .pushdown(pushdown)
        .join_strategy(join_strategy))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_registry_shares_and_refcounts() {
        let reg = HandleRegistry::default();
        let (h1, shared1) = reg.acquire("q1", false);
        assert!(!shared1);
        let (h2, shared2) = reg.acquire("q1", false);
        assert_eq!(h1, h2, "same text, same handle across sessions");
        assert!(shared2);
        let (h3, _) = reg.acquire("q2", false);
        assert_ne!(h1, h3);
        assert_eq!(reg.len(), 2);
        reg.release(h1);
        assert_eq!(reg.len(), 2, "still referenced by the second session");
        reg.release(h1);
        assert_eq!(reg.len(), 1, "dropped at zero references");
        // a fresh prepare after full release mints a new handle
        let (h4, shared4) = reg.acquire("q1", false);
        assert!(!shared4);
        assert_ne!(h1, h4);
    }

    #[test]
    fn token_comparison_is_exact_across_lengths() {
        assert!(token_matches("s3cret", "s3cret"));
        assert!(token_matches("", ""));
        assert!(!token_matches("s3cret", "s3crex"));
        assert!(!token_matches("s3cre", "s3cret"));
        assert!(!token_matches("s3cret-and-more", "s3cret"));
        assert!(!token_matches("", "s3cret"));
    }

    #[test]
    fn exec_decoding_validates_enums() {
        let mut e = proto::WireExec::default();
        assert!(decode_exec(&e).is_ok());
        e.pushdown = 9;
        assert!(decode_exec(&e).is_err());
        e.pushdown = proto::pushdown::OFF;
        e.join_strategy = 9;
        assert!(decode_exec(&e).is_err());
    }
}
