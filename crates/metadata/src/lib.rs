//! # aldsp-metadata — source metadata and introspection
//!
//! Implements §2.1/§3.2 of the paper: data sources are introspected into
//! *physical data services* whose functions carry typed signatures and
//! pragma-style source annotations. [`model`] defines the function/
//! binding model, [`introspect`] generates it from relational catalogs
//! and web-service descriptions (read functions per table, navigation
//! functions per foreign key), and [`registry`] is the lookup surface
//! shared by the compiler, optimizer and runtime.

pub mod introspect;
pub mod model;
pub mod registry;

pub use introspect::{
    introspect_relational, introspect_web_service, row_shape, WebServiceDescription,
    WebServiceOperation,
};
pub use model::{FunctionKind, ParamDecl, PhysicalDataService, PhysicalFunction, SourceBinding};
pub use registry::{Registry, TableStats};
