//! Data-source introspection (§2.1, §3.2).
//!
//! "When pointed at an enterprise data source by a developer, ALDSP
//! introspects the data source's metadata. … Applying introspection to a
//! relational data source yields one data service (with one read method
//! and one update method) per table or view. … In the presence of
//! foreign key constraints, introspection also produces navigation
//! functions that encapsulate the join paths provided by the
//! constraints." This module reproduces that: it reads a
//! [`aldsp_relational::Catalog`] (or a web-service description)
//! and emits the corresponding [`PhysicalDataService`].

use crate::model::{FunctionKind, ParamDecl, PhysicalDataService, PhysicalFunction, SourceBinding};
use aldsp_relational::{Catalog, TableSchema};
use aldsp_xdm::schema::ShapeBuilder;
use aldsp_xdm::types::{ElementType, ItemType, Occurrence, SequenceType};
use aldsp_xdm::QName;

/// The natural typed XML-ification of a row of `schema` (§2.1): one
/// element per table row, one simple-typed child per column, nullable
/// columns optional (NULLs are missing elements, §4.3).
pub fn row_shape(schema: &TableSchema, namespace: &str) -> ElementType {
    // the row element is namespaced (it belongs to the data service);
    // column elements are unqualified, matching the paper's Figure 3
    // paths ($CUSTOMER/CID with no prefix)
    let mut b = ShapeBuilder::element(QName::new(namespace, &schema.name));
    for col in &schema.columns {
        b = if col.nullable {
            b.optional_local(&col.name, col.ty.xml_type())
        } else {
            b.required_local(&col.name, col.ty.xml_type())
        };
    }
    b.build()
}

/// Introspect a relational catalog into a physical data service:
/// a read function per table plus navigation functions per foreign key,
/// in both directions.
pub fn introspect_relational(
    catalog: &Catalog,
    connection: &str,
    namespace: &str,
) -> Result<PhysicalDataService, String> {
    catalog.validate()?;
    let mut ds = PhysicalDataService {
        namespace: namespace.to_string(),
        functions: Vec::new(),
    };
    for table in catalog.tables() {
        let shape = row_shape(table, namespace);
        ds.functions.push(PhysicalFunction {
            name: QName::new(namespace, &table.name),
            kind: FunctionKind::Read,
            params: Vec::new(),
            return_type: SequenceType::Seq(ItemType::Element(shape.clone()), Occurrence::Star),
            source: SourceBinding::RelationalTable {
                connection: connection.to_string(),
                table: table.name.clone(),
                primary_key: table.primary_key.clone(),
                shape,
            },
        });
    }
    // navigation functions from foreign keys, both directions
    for table in catalog.tables() {
        for fk in &table.foreign_keys {
            let target = catalog.table(&fk.ref_table).expect("validated catalog");
            // many-to-one: FROM row → its referenced TARGET row
            ds.functions.push(navigation(
                catalog,
                connection,
                namespace,
                table,
                target,
                fk.columns
                    .iter()
                    .cloned()
                    .zip(fk.ref_columns.iter().cloned())
                    .collect(),
                false,
            ));
            // one-to-many: TARGET row → the FROM rows referencing it
            // (the paper's getORDER($CUSTOMER) in Figure 3)
            ds.functions.push(navigation(
                catalog,
                connection,
                namespace,
                target,
                table,
                fk.ref_columns
                    .iter()
                    .cloned()
                    .zip(fk.columns.iter().cloned())
                    .collect(),
                true,
            ));
        }
    }
    Ok(ds)
}

fn navigation(
    _catalog: &Catalog,
    connection: &str,
    namespace: &str,
    from: &TableSchema,
    to: &TableSchema,
    key_pairs: Vec<(String, String)>,
    to_many: bool,
) -> PhysicalFunction {
    let from_shape = row_shape(from, namespace);
    let to_shape = row_shape(to, namespace);
    let occ = if to_many {
        Occurrence::Star
    } else {
        Occurrence::Optional
    };
    PhysicalFunction {
        name: QName::new(namespace, &format!("get{}", to.name)),
        kind: FunctionKind::Navigate,
        params: vec![ParamDecl {
            name: "arg".to_string(),
            ty: SequenceType::one(ItemType::Element(from_shape)),
        }],
        return_type: SequenceType::Seq(ItemType::Element(to_shape.clone()), occ),
        source: SourceBinding::RelationalNavigation {
            connection: connection.to_string(),
            from_table: from.name.clone(),
            to_table: to.name.clone(),
            key_pairs,
            shape: to_shape,
            to_many,
        },
    }
}

/// A declarative description of a simulated web service (the WSDL
/// analogue): document-style operations with typed request/response
/// elements.
#[derive(Debug, Clone)]
pub struct WebServiceDescription {
    /// Service name.
    pub name: String,
    /// Target namespace for the generated functions.
    pub namespace: String,
    /// Operations.
    pub operations: Vec<WebServiceOperation>,
}

/// One web-service operation.
#[derive(Debug, Clone)]
pub struct WebServiceOperation {
    /// Operation name (becomes the function's local name).
    pub name: String,
    /// Request element shape.
    pub input: ElementType,
    /// Response element shape.
    pub output: ElementType,
}

/// Introspect a web service description: one function per operation
/// ("Introspecting a Web service yields one data service per distinct
/// Web service operation return type", §2.1).
pub fn introspect_web_service(desc: &WebServiceDescription) -> PhysicalDataService {
    let functions = desc
        .operations
        .iter()
        .map(|op| PhysicalFunction {
            name: QName::new(&desc.namespace, &op.name),
            kind: FunctionKind::Read,
            params: vec![ParamDecl {
                name: "request".to_string(),
                ty: SequenceType::one(ItemType::Element(op.input.clone())),
            }],
            return_type: SequenceType::one(ItemType::Element(op.output.clone())),
            source: SourceBinding::WebService {
                service: desc.name.clone(),
                operation: op.name.clone(),
                input: op.input.clone(),
                output: op.output.clone(),
            },
        })
        .collect();
    PhysicalDataService {
        namespace: desc.namespace.clone(),
        functions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_relational::SqlType;
    use aldsp_xdm::types::ContentType;
    use aldsp_xdm::value::AtomicType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add(
            TableSchema::builder("CUSTOMER")
                .col("CID", SqlType::Varchar)
                .col("LAST_NAME", SqlType::Varchar)
                .col_null("FIRST_NAME", SqlType::Varchar)
                .pk(&["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add(
            TableSchema::builder("ORDER")
                .col("OID", SqlType::Integer)
                .col("CID", SqlType::Varchar)
                .pk(&["OID"])
                .fk(&["CID"], "CUSTOMER", &["CID"])
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn one_read_function_per_table() {
        let ds = introspect_relational(&catalog(), "db1", "urn:custDS").unwrap();
        let cust = ds.function("CUSTOMER").unwrap();
        assert_eq!(cust.kind, FunctionKind::Read);
        assert!(cust.params.is_empty());
        // element(CUSTOMER)* with structural row shape
        let SequenceType::Seq(ItemType::Element(e), Occurrence::Star) = &cust.return_type else {
            panic!("unexpected return type {:?}", cust.return_type)
        };
        assert_eq!(e.name.as_ref().unwrap().local_name(), "CUSTOMER");
        let ContentType::Complex(c) = &e.content else {
            panic!()
        };
        assert_eq!(c.children.len(), 3);
        // nullable column → optional element
        assert_eq!(c.children[2].occ, Occurrence::Optional);
        assert_eq!(c.children[0].occ, Occurrence::One);
        assert!(ds.function("ORDER").is_some());
    }

    #[test]
    fn navigation_functions_from_foreign_keys() {
        let ds = introspect_relational(&catalog(), "db1", "urn:custDS").unwrap();
        // Figure 3's ns3:getORDER($CUSTOMER): one-to-many
        let nav = ds.function("getORDER").unwrap();
        assert_eq!(nav.kind, FunctionKind::Navigate);
        assert_eq!(nav.params.len(), 1);
        let SourceBinding::RelationalNavigation {
            key_pairs,
            to_many,
            from_table,
            to_table,
            ..
        } = &nav.source
        else {
            panic!()
        };
        assert!(*to_many);
        assert_eq!(from_table, "CUSTOMER");
        assert_eq!(to_table, "ORDER");
        assert_eq!(key_pairs, &[("CID".to_string(), "CID".to_string())]);
        // and the many-to-one direction
        let back = ds.function("getCUSTOMER").unwrap();
        let SourceBinding::RelationalNavigation { to_many, .. } = &back.source else {
            panic!()
        };
        assert!(!*to_many);
        assert_eq!(back.return_type.occurrence(), Occurrence::Optional);
    }

    #[test]
    fn pragma_rendering() {
        let ds = introspect_relational(&catalog(), "db1", "urn:custDS").unwrap();
        let p = ds.function("CUSTOMER").unwrap().to_pragma();
        assert!(p.contains("kind=\"read\""), "{p}");
        assert!(p.contains("connection=\"db1\""), "{p}");
        assert!(p.contains("key=\"CID\""), "{p}");
        let p = ds.function("getORDER").unwrap().to_pragma();
        assert!(p.contains("kind=\"navigate\""), "{p}");
        assert!(p.contains("joinKeys=\"CID=CID\""), "{p}");
        // the pragma text parses back with the parser's pragma scanner
        let parsed = aldsp_parser::Pragma::parse(&p);
        assert_eq!(parsed.get("kind"), Some("navigate"));
    }

    #[test]
    fn web_service_introspection() {
        // the Figure 3 credit-rating service
        let input = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRating"))
            .required("lName", AtomicType::String)
            .required("ssn", AtomicType::String)
            .build();
        let output = ShapeBuilder::element(QName::new("urn:ratingTypes", "getRatingResponse"))
            .required("getRatingResult", AtomicType::Integer)
            .build();
        let ds = introspect_web_service(&WebServiceDescription {
            name: "ratingWS".into(),
            namespace: "urn:ratingWS".into(),
            operations: vec![WebServiceOperation {
                name: "getRating".into(),
                input,
                output,
            }],
        });
        let f = ds.function("getRating").unwrap();
        assert_eq!(f.params.len(), 1);
        assert!(
            matches!(&f.source, SourceBinding::WebService { operation, .. } if operation == "getRating")
        );
        assert!(!f.source.is_queryable());
    }

    #[test]
    fn invalid_catalog_rejected() {
        let mut c = Catalog::new();
        c.add(
            TableSchema::builder("X")
                .col("A", SqlType::Integer)
                .fk(&["A"], "MISSING", &["A"])
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(introspect_relational(&c, "db1", "urn:x").is_err());
    }
}
