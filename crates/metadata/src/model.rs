//! The metadata model for physical data services.
//!
//! "Backend data source accesses are modeled as XQuery functions with
//! typed signatures" (§3.2). A [`PhysicalFunction`] is one such function:
//! its resolved signature plus a [`SourceBinding`] that tells the
//! compiler and runtime *what* it reads (which table/operation/file,
//! over which connection, with which keys). ALDSP persists this in
//! pragma annotations; [`PhysicalFunction::to_pragma`] reproduces that
//! surface form.

use aldsp_xdm::types::{ElementType, SequenceType};
use aldsp_xdm::QName;

/// The role of a data-service function (the pragma `kind` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionKind {
    /// A read method — returns instances of the service's shape.
    Read,
    /// A navigation method — traverses a relationship from one business
    /// object to another (§2.1).
    Navigate,
    /// A library/helper function registered for use in queries (e.g. the
    /// `int2date` example of §4.4).
    Library,
}

impl FunctionKind {
    /// The pragma attribute value.
    pub fn as_str(self) -> &'static str {
        match self {
            FunctionKind::Read => "read",
            FunctionKind::Navigate => "navigate",
            FunctionKind::Library => "library",
        }
    }
}

/// One declared parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: SequenceType,
}

/// What a physical function is bound to.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceBinding {
    /// A relational table surfaced as `TABLE() as element(TABLE)*`:
    /// queryable — SQL can be pushed to it (§4.3).
    RelationalTable {
        /// Connection name (resolved to a server by the adaptor layer).
        connection: String,
        /// Table name.
        table: String,
        /// Primary-key column names (drives PP-k and lineage).
        primary_key: Vec<String>,
        /// The typed row shape.
        shape: ElementType,
    },
    /// A navigation function derived from a foreign key (§2.1): given a
    /// row element of `from_table`, return the joined rows of `to_table`.
    RelationalNavigation {
        /// Connection name.
        connection: String,
        /// Source table of the traversal.
        from_table: String,
        /// Target table of the traversal.
        to_table: String,
        /// `(from_column, to_column)` join pairs from the constraint.
        key_pairs: Vec<(String, String)>,
        /// The target row shape.
        shape: ElementType,
        /// `true` for the one-to-many direction.
        to_many: bool,
    },
    /// A web-service operation (functional source, §2.2): call-only.
    WebService {
        /// Service name (resolved by the adaptor layer).
        service: String,
        /// Operation name.
        operation: String,
        /// Input message shape.
        input: ElementType,
        /// Output message shape.
        output: ElementType,
    },
    /// A registered custom function (the paper's external Java functions;
    /// Rust closures here).
    Native {
        /// Registration id resolved by the adaptor layer.
        id: String,
    },
    /// An XML file validated against a registered schema (§5.3).
    XmlFile {
        /// File path.
        path: String,
        /// Root-element shape.
        shape: ElementType,
    },
    /// A delimited (CSV) file with a declared row shape (§5.3).
    CsvFile {
        /// File path.
        path: String,
        /// Row shape (one element per record).
        shape: ElementType,
    },
}

impl SourceBinding {
    /// The connection/service identifier, if the binding has one.
    pub fn connection(&self) -> Option<&str> {
        match self {
            SourceBinding::RelationalTable { connection, .. }
            | SourceBinding::RelationalNavigation { connection, .. } => Some(connection),
            SourceBinding::WebService { service, .. } => Some(service),
            _ => None,
        }
    }

    /// Is this a queryable (SQL-pushable) source?
    pub fn is_queryable(&self) -> bool {
        matches!(
            self,
            SourceBinding::RelationalTable { .. } | SourceBinding::RelationalNavigation { .. }
        )
    }
}

/// One physical data-service function: typed signature + source binding.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalFunction {
    /// The function's qualified name.
    pub name: QName,
    /// Its role.
    pub kind: FunctionKind,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Return type.
    pub return_type: SequenceType,
    /// What it reads/calls.
    pub source: SourceBinding,
}

impl PhysicalFunction {
    /// Render the pragma annotation ALDSP would persist for this
    /// function (§3.2) — `(::pragma function … ::)` attribute content.
    pub fn to_pragma(&self) -> String {
        let mut s = format!("function kind=\"{}\"", self.kind.as_str());
        match &self.source {
            SourceBinding::RelationalTable {
                connection,
                table,
                primary_key,
                ..
            } => {
                s.push_str(&format!(
                    " sourceType=\"relational\" connection=\"{connection}\" nativeName=\"{table}\""
                ));
                if !primary_key.is_empty() {
                    s.push_str(&format!(" key=\"{}\"", primary_key.join(",")));
                }
            }
            SourceBinding::RelationalNavigation {
                connection,
                from_table,
                to_table,
                key_pairs,
                ..
            } => {
                let pairs: Vec<String> =
                    key_pairs.iter().map(|(a, b)| format!("{a}={b}")).collect();
                s.push_str(&format!(
                    " sourceType=\"relational\" connection=\"{connection}\" from=\"{from_table}\" to=\"{to_table}\" joinKeys=\"{}\"",
                    pairs.join(",")
                ));
            }
            SourceBinding::WebService {
                service, operation, ..
            } => {
                s.push_str(&format!(
                    " sourceType=\"webService\" service=\"{service}\" operation=\"{operation}\""
                ));
            }
            SourceBinding::Native { id } => {
                s.push_str(&format!(" sourceType=\"native\" id=\"{id}\""));
            }
            SourceBinding::XmlFile { path, .. } => {
                s.push_str(&format!(" sourceType=\"xmlFile\" path=\"{path}\""));
            }
            SourceBinding::CsvFile { path, .. } => {
                s.push_str(&format!(" sourceType=\"csvFile\" path=\"{path}\""));
            }
        }
        s
    }
}

/// A physical data service: the functions introspection produced for one
/// data source (§2.1 — e.g. one read method and navigation methods per
/// table).
#[derive(Debug, Clone, Default)]
pub struct PhysicalDataService {
    /// The service's target namespace.
    pub namespace: String,
    /// Its functions.
    pub functions: Vec<PhysicalFunction>,
}

impl PhysicalDataService {
    /// Find a function by local name.
    pub fn function(&self, local: &str) -> Option<&PhysicalFunction> {
        self.functions.iter().find(|f| f.name.local_name() == local)
    }
}
