//! The metadata registry the compiler resolves against.
//!
//! Captured source metadata "is used by the ALDSP compiler, graphical
//! UI, query optimizer, and runtime" (§3.2). The [`Registry`] is that
//! shared lookup surface: physical functions by qualified name, plus
//! imported schemas by target namespace (for `schema-element(N)` and
//! shape resolution).

use crate::model::{PhysicalDataService, PhysicalFunction};
use aldsp_xdm::schema::Schema;
use aldsp_xdm::QName;
use std::collections::HashMap;

/// Shared metadata: physical functions and schemas.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    functions: HashMap<QName, PhysicalFunction>,
    schemas: HashMap<String, Schema>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register every function of a physical data service. Duplicate
    /// names are an error: data-service function names are global.
    pub fn register_service(&mut self, ds: &PhysicalDataService) -> Result<(), String> {
        for f in &ds.functions {
            self.register_function(f.clone())?;
        }
        Ok(())
    }

    /// Register a single physical function.
    pub fn register_function(&mut self, f: PhysicalFunction) -> Result<(), String> {
        if self.functions.contains_key(&f.name) {
            return Err(format!("duplicate physical function {}", f.name));
        }
        self.functions.insert(f.name.clone(), f);
        Ok(())
    }

    /// Register an imported schema by target namespace.
    pub fn register_schema(&mut self, schema: Schema) {
        let ns = schema.target_namespace.clone().unwrap_or_default();
        self.schemas.insert(ns, schema);
    }

    /// Look up a physical function.
    pub fn function(&self, name: &QName) -> Option<&PhysicalFunction> {
        self.functions.get(name)
    }

    /// Look up a schema by target namespace.
    pub fn schema(&self, namespace: &str) -> Option<&Schema> {
        self.schemas.get(namespace)
    }

    /// Resolve a global element declaration across all schemas.
    pub fn schema_element(&self, name: &QName) -> Option<&aldsp_xdm::types::ElementType> {
        let ns = name.uri().unwrap_or_default();
        self.schemas.get(ns).and_then(|s| s.element(name))
    }

    /// Iterate all registered functions.
    pub fn functions(&self) -> impl Iterator<Item = &PhysicalFunction> {
        self.functions.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FunctionKind, SourceBinding};
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::types::SequenceType;
    use aldsp_xdm::value::AtomicType;

    fn func(name: &str) -> PhysicalFunction {
        PhysicalFunction {
            name: QName::new("urn:t", name),
            kind: FunctionKind::Read,
            params: vec![],
            return_type: SequenceType::any(),
            source: SourceBinding::Native {
                id: name.to_string(),
            },
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        r.register_function(func("A")).unwrap();
        assert!(r.function(&QName::new("urn:t", "A")).is_some());
        assert!(r.function(&QName::new("urn:other", "A")).is_none());
        assert!(r.register_function(func("A")).is_err());
        assert_eq!(r.functions().count(), 1);
    }

    #[test]
    fn schema_element_resolution() {
        let mut r = Registry::new();
        let mut s = Schema::new(Some("urn:shapes"));
        s.declare(
            ShapeBuilder::element(QName::new("urn:shapes", "PROFILE"))
                .required("CID", AtomicType::String)
                .build(),
        );
        r.register_schema(s);
        assert!(r
            .schema_element(&QName::new("urn:shapes", "PROFILE"))
            .is_some());
        assert!(r
            .schema_element(&QName::new("urn:shapes", "NOPE"))
            .is_none());
        assert!(r.schema("urn:shapes").is_some());
    }
}
