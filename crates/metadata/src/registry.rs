//! The metadata registry the compiler resolves against.
//!
//! Captured source metadata "is used by the ALDSP compiler, graphical
//! UI, query optimizer, and runtime" (§3.2). The [`Registry`] is that
//! shared lookup surface: physical functions by qualified name, plus
//! imported schemas by target namespace (for `schema-element(N)` and
//! shape resolution).

use crate::model::{PhysicalDataService, PhysicalFunction};
use aldsp_xdm::schema::Schema;
use aldsp_xdm::QName;
use std::collections::HashMap;

/// Statistics introspected from one source table, consumed by the
/// cost-based join planner. Counts are estimates captured at
/// registration time: sources keep changing underneath the mediator, so
/// the optimizer treats them as magnitudes, never as exact answers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Total rows in the table.
    pub row_count: u64,
    /// Estimated distinct values per column, by column name.
    pub column_distinct: HashMap<String, u64>,
}

/// Shared metadata: physical functions, schemas, and per-source
/// statistics (table cardinalities + the latency model's per-roundtrip
/// cost, both feeding the join cost model).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    functions: HashMap<QName, PhysicalFunction>,
    schemas: HashMap<String, Schema>,
    stats: HashMap<(String, String), TableStats>,
    source_latency: HashMap<String, u64>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register every function of a physical data service. Duplicate
    /// names are an error: data-service function names are global.
    pub fn register_service(&mut self, ds: &PhysicalDataService) -> Result<(), String> {
        for f in &ds.functions {
            self.register_function(f.clone())?;
        }
        Ok(())
    }

    /// Register a single physical function.
    pub fn register_function(&mut self, f: PhysicalFunction) -> Result<(), String> {
        if self.functions.contains_key(&f.name) {
            return Err(format!("duplicate physical function {}", f.name));
        }
        self.functions.insert(f.name.clone(), f);
        Ok(())
    }

    /// Register an imported schema by target namespace.
    pub fn register_schema(&mut self, schema: Schema) {
        let ns = schema.target_namespace.clone().unwrap_or_default();
        self.schemas.insert(ns, schema);
    }

    /// Look up a physical function.
    pub fn function(&self, name: &QName) -> Option<&PhysicalFunction> {
        self.functions.get(name)
    }

    /// Look up a schema by target namespace.
    pub fn schema(&self, namespace: &str) -> Option<&Schema> {
        self.schemas.get(namespace)
    }

    /// Resolve a global element declaration across all schemas.
    pub fn schema_element(&self, name: &QName) -> Option<&aldsp_xdm::types::ElementType> {
        let ns = name.uri().unwrap_or_default();
        self.schemas.get(ns).and_then(|s| s.element(name))
    }

    /// Iterate all registered functions.
    pub fn functions(&self) -> impl Iterator<Item = &PhysicalFunction> {
        self.functions.values()
    }

    /// Record statistics for `connection.table` (replacing any earlier
    /// capture).
    pub fn set_table_stats(&mut self, connection: &str, table: &str, stats: TableStats) {
        self.stats
            .insert((connection.to_string(), table.to_string()), stats);
    }

    /// Statistics for `connection.table`, if captured.
    pub fn table_stats(&self, connection: &str, table: &str) -> Option<&TableStats> {
        self.stats.get(&(connection.to_string(), table.to_string()))
    }

    /// Record a source's per-roundtrip latency (nanoseconds).
    pub fn set_source_latency(&mut self, connection: &str, nanos: u64) {
        self.source_latency.insert(connection.to_string(), nanos);
    }

    /// A source's per-roundtrip latency (nanoseconds), if recorded.
    pub fn source_latency(&self, connection: &str) -> Option<u64> {
        self.source_latency.get(connection).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FunctionKind, SourceBinding};
    use aldsp_xdm::schema::ShapeBuilder;
    use aldsp_xdm::types::SequenceType;
    use aldsp_xdm::value::AtomicType;

    fn func(name: &str) -> PhysicalFunction {
        PhysicalFunction {
            name: QName::new("urn:t", name),
            kind: FunctionKind::Read,
            params: vec![],
            return_type: SequenceType::any(),
            source: SourceBinding::Native {
                id: name.to_string(),
            },
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        r.register_function(func("A")).unwrap();
        assert!(r.function(&QName::new("urn:t", "A")).is_some());
        assert!(r.function(&QName::new("urn:other", "A")).is_none());
        assert!(r.register_function(func("A")).is_err());
        assert_eq!(r.functions().count(), 1);
    }

    #[test]
    fn table_stats_and_latency_round_trip() {
        let mut r = Registry::new();
        assert!(r.table_stats("db1", "CUSTOMER").is_none());
        assert!(r.source_latency("db1").is_none());
        let mut s = TableStats {
            row_count: 1000,
            column_distinct: HashMap::new(),
        };
        s.column_distinct.insert("CID".into(), 1000);
        r.set_table_stats("db1", "CUSTOMER", s.clone());
        r.set_source_latency("db1", 250_000);
        assert_eq!(r.table_stats("db1", "CUSTOMER"), Some(&s));
        assert_eq!(r.source_latency("db1"), Some(250_000));
        assert!(r.table_stats("db2", "CUSTOMER").is_none());
    }

    #[test]
    fn schema_element_resolution() {
        let mut r = Registry::new();
        let mut s = Schema::new(Some("urn:shapes"));
        s.declare(
            ShapeBuilder::element(QName::new("urn:shapes", "PROFILE"))
                .required("CID", AtomicType::String)
                .build(),
        );
        r.register_schema(s);
        assert!(r
            .schema_element(&QName::new("urn:shapes", "PROFILE"))
            .is_some());
        assert!(r
            .schema_element(&QName::new("urn:shapes", "NOPE"))
            .is_none());
        assert!(r.schema("urn:shapes").is_some());
    }
}
