//! # aldsp-security — data security (§7)
//!
//! ALDSP provides "a flexible, fine-grained access control model for
//! data services": coarse control on *data service functions* (who may
//! call what) and fine control on *element-level resources* in the
//! return shapes — "unauthorized accessors will either see nothing (the
//! data may be silently removed, if the presence of the subtree is
//! optional in the schema) or they will see an administratively-
//! specified replacement value."
//!
//! The query-processing-relevant property the paper stresses: security
//! filtering runs **late**, after the function cache, "so that compiled
//! query plans and function results can still be effectively cached and
//! reused across different users." [`SecurityPolicy::filter_result`] is
//! that late filter; the `aldsp` server crate applies it to results
//! after execution (and after any cache hit).
//!
//! An [`AuditLog`] records access decisions (§7's auditing service).

use aldsp_xdm::item::{Item, Sequence};
use aldsp_xdm::node::{Node, NodeKind, NodeRef};
use aldsp_xdm::value::AtomicValue;
use aldsp_xdm::QName;
use parking_lot::Mutex;
use std::collections::HashMap;

/// An authenticated caller with roles (authentication itself is the
/// container's job — WebLogic in the paper, out of scope here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principal {
    /// User name.
    pub name: String,
    /// Granted roles.
    pub roles: Vec<String>,
}

impl Principal {
    /// Construct a principal.
    pub fn new(name: &str, roles: &[&str]) -> Principal {
        Principal {
            name: name.to_string(),
            roles: roles.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Does the principal hold any of the given roles?
    pub fn has_any(&self, roles: &[String]) -> bool {
        roles.iter().any(|r| self.roles.contains(r))
    }
}

/// What an unauthorized accessor sees at a protected subtree (§7).
#[derive(Debug, Clone, PartialEq)]
pub enum DenialAction {
    /// Silently remove the subtree (valid when the schema makes it
    /// optional).
    Remove,
    /// Show an administratively-specified replacement value.
    Replace(AtomicValue),
}

/// A labeled element-level security resource: a path in a data shape
/// plus the roles allowed to see it.
#[derive(Debug, Clone)]
pub struct ElementResource {
    /// Path of element names from the result root (root excluded).
    pub path: Vec<QName>,
    /// Roles that may see the subtree.
    pub allowed_roles: Vec<String>,
    /// What everyone else sees.
    pub denial: DenialAction,
}

/// Security error (function-level denial).
#[derive(Debug, Clone, PartialEq)]
pub struct AccessDenied {
    /// Who was denied.
    pub principal: String,
    /// What they tried to call.
    pub function: String,
}

impl std::fmt::Display for AccessDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access denied: {} may not call {}",
            self.principal, self.function
        )
    }
}

impl std::error::Error for AccessDenied {}

/// The policy store: function-level rules plus element resources.
#[derive(Debug, Clone, Default)]
pub struct SecurityPolicy {
    function_rules: HashMap<QName, Vec<String>>,
    resources: Vec<ElementResource>,
}

impl SecurityPolicy {
    /// An empty (allow-everything) policy.
    pub fn new() -> SecurityPolicy {
        SecurityPolicy::default()
    }

    /// Restrict calling `function` to the given roles.
    pub fn restrict_function(&mut self, function: QName, roles: &[&str]) {
        self.function_rules
            .insert(function, roles.iter().map(|s| s.to_string()).collect());
    }

    /// Register an element-level resource.
    pub fn add_resource(&mut self, resource: ElementResource) {
        self.resources.push(resource);
    }

    /// Function-level check (§7: "who is allowed to call what").
    /// Unrestricted functions are callable by everyone.
    pub fn check_function_access(
        &self,
        principal: &Principal,
        function: &QName,
        audit: &AuditLog,
    ) -> Result<(), AccessDenied> {
        let decision = match self.function_rules.get(function) {
            None => true,
            Some(roles) => principal.has_any(roles),
        };
        audit.record(AuditEntry {
            principal: principal.name.clone(),
            subject: format!("call {function}"),
            allowed: decision,
        });
        if decision {
            Ok(())
        } else {
            Err(AccessDenied {
                principal: principal.name.clone(),
                function: function.to_string(),
            })
        }
    }

    /// The late, per-user result filter (§7): applied after execution and
    /// after the function cache, so plans and cached results stay shared
    /// across users.
    pub fn filter_result(
        &self,
        principal: &Principal,
        result: Sequence,
        audit: &AuditLog,
    ) -> Sequence {
        if self.resources.is_empty() {
            return result;
        }
        result
            .into_iter()
            .map(|item| match item {
                Item::Node(n) => Item::Node(self.filter_node(principal, &n, &[], audit)),
                atomic => atomic,
            })
            .collect()
    }

    fn filter_node(
        &self,
        principal: &Principal,
        node: &NodeRef,
        path: &[QName],
        audit: &AuditLog,
    ) -> NodeRef {
        let NodeKind::Element {
            name,
            attributes,
            children,
        } = node.kind()
        else {
            return node.clone();
        };
        let mut new_children = Vec::with_capacity(children.len());
        for c in children {
            let Some(cname) = c.name() else {
                new_children.push(c.clone());
                continue;
            };
            let mut child_path: Vec<QName> = path.to_vec();
            child_path.push(cname.clone());
            match self.resource_at(&child_path) {
                Some(res) if !principal.has_any(&res.allowed_roles) => {
                    audit.record(AuditEntry {
                        principal: principal.name.clone(),
                        subject: format!(
                            "read /{}",
                            child_path
                                .iter()
                                .map(|q| q.local_name())
                                .collect::<Vec<_>>()
                                .join("/")
                        ),
                        allowed: false,
                    });
                    match &res.denial {
                        DenialAction::Remove => {} // silently removed
                        DenialAction::Replace(v) => {
                            new_children.push(Node::simple_element(cname.clone(), v.clone()))
                        }
                    }
                }
                _ => {
                    new_children.push(self.filter_node(principal, c, &child_path, audit));
                }
            }
        }
        Node::element(name.clone(), attributes.clone(), new_children)
    }

    fn resource_at(&self, path: &[QName]) -> Option<&ElementResource> {
        self.resources.iter().find(|r| r.path == path)
    }
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// Who.
    pub principal: String,
    /// What.
    pub subject: String,
    /// Allowed?
    pub allowed: bool,
}

/// The auditing service (§7): administratively enabled, records security
/// decisions.
#[derive(Debug, Default)]
pub struct AuditLog {
    enabled: std::sync::atomic::AtomicBool,
    entries: Mutex<Vec<AuditEntry>>,
}

impl AuditLog {
    /// A disabled log (no overhead).
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Enable or disable auditing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Record a decision (no-op when disabled).
    pub fn record(&self, entry: AuditEntry) {
        if self.enabled.load(std::sync::atomic::Ordering::SeqCst) {
            self.entries.lock().push(entry);
        }
    }

    /// Snapshot the recorded entries.
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aldsp_xdm::value::AtomicValue as V;

    fn profile() -> NodeRef {
        Node::element(
            QName::local("PROFILE"),
            vec![],
            vec![
                Node::simple_element(QName::local("CID"), V::str("C1")),
                Node::simple_element(QName::local("SSN"), V::str("111-11-1111")),
                Node::element(
                    QName::local("CREDIT"),
                    vec![],
                    vec![Node::simple_element(
                        QName::local("RATING"),
                        V::Integer(720),
                    )],
                ),
            ],
        )
    }

    fn policy() -> SecurityPolicy {
        let mut p = SecurityPolicy::new();
        p.restrict_function(QName::new("urn:t", "getProfile"), &["csr", "admin"]);
        p.add_resource(ElementResource {
            path: vec![QName::local("SSN")],
            allowed_roles: vec!["admin".into()],
            denial: DenialAction::Replace(V::str("###-##-####")),
        });
        p.add_resource(ElementResource {
            path: vec![QName::local("CREDIT"), QName::local("RATING")],
            allowed_roles: vec!["admin".into(), "credit".into()],
            denial: DenialAction::Remove,
        });
        p
    }

    #[test]
    fn function_level_access() {
        let p = policy();
        let audit = AuditLog::new();
        let f = QName::new("urn:t", "getProfile");
        assert!(p
            .check_function_access(&Principal::new("alice", &["admin"]), &f, &audit)
            .is_ok());
        assert!(p
            .check_function_access(&Principal::new("bob", &["intern"]), &f, &audit)
            .is_err());
        // unrestricted functions callable by anyone
        assert!(p
            .check_function_access(
                &Principal::new("bob", &[]),
                &QName::new("urn:t", "getPublic"),
                &audit
            )
            .is_ok());
    }

    #[test]
    fn element_replacement_and_removal() {
        let p = policy();
        let audit = AuditLog::new();
        let csr = Principal::new("carol", &["csr"]);
        let out = p.filter_result(&csr, vec![Item::Node(profile())], &audit);
        let s = aldsp_xdm::xml::serialize_sequence(&out);
        // SSN replaced with the administrative value
        assert!(s.contains("<SSN>###-##-####</SSN>"), "{s}");
        // nested RATING silently removed
        assert!(!s.contains("RATING"), "{s}");
        assert!(s.contains("<CREDIT/>"), "{s}");
        // admin sees everything
        let admin = Principal::new("alice", &["admin"]);
        let out = p.filter_result(&admin, vec![Item::Node(profile())], &audit);
        let s = aldsp_xdm::xml::serialize_sequence(&out);
        assert!(s.contains("111-11-1111") && s.contains("720"), "{s}");
    }

    #[test]
    fn audit_records_decisions_when_enabled() {
        let p = policy();
        let audit = AuditLog::new();
        let bob = Principal::new("bob", &[]);
        // disabled: nothing recorded
        p.filter_result(&bob, vec![Item::Node(profile())], &audit);
        assert!(audit.entries().is_empty());
        audit.set_enabled(true);
        p.filter_result(&bob, vec![Item::Node(profile())], &audit);
        let entries = audit.entries();
        assert_eq!(entries.len(), 2, "{entries:?}");
        assert!(entries.iter().all(|e| !e.allowed));
        assert!(entries.iter().any(|e| e.subject.contains("/SSN")));
        assert!(entries.iter().any(|e| e.subject.contains("/CREDIT/RATING")));
    }

    #[test]
    fn empty_policy_is_passthrough() {
        let p = SecurityPolicy::new();
        let audit = AuditLog::new();
        let bob = Principal::new("bob", &[]);
        let input = vec![Item::Node(profile())];
        let out = p.filter_result(&bob, input.clone(), &audit);
        assert_eq!(out, input);
    }
}
