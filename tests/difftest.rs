//! Differential query-correctness harness (the tier-1 smoke slice; see
//! `scripts/difftest.sh` for the dialable runner and the nightly job).
//!
//! Seeded random FLWGOR queries from `aldsp-qgen` run under a matrix of
//! optimizer/runtime configurations — SQL pushdown {off, joins, full},
//! PP-k prefetch {0, 2}, streaming vs. materialized delivery, budgeted
//! vs. unbudgeted — and every cell must produce byte-identical
//! serialized output to the naive reference (pushdown off, fully
//! interpreted). A second mode attaches seeded fault schedules to the
//! simulated relational servers and asserts every run ends in either an
//! identical result or a typed error, with any streamed prefix intact.
//!
//! Reproduce a failing seed:
//!
//! ```text
//! DIFFTEST_SEED_START=<seed> DIFFTEST_SEEDS=1 cargo test -p aldsp --test difftest
//! ```

mod common;

use aldsp::relational::{Fault, FaultKind, FaultTrigger};
use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{AldspServer, ExecutionOptions, JoinStrategy, Mutation, PushdownLevel, QueryRequest};
use aldsp_qgen::gen::Pred;
use aldsp_qgen::{
    default_matrix, generate, generate_plan, run_fault_trial, shrink, CatalogModel, CellSpec,
    ColTy, Oracle,
};
use common::{card_catalog, customer_catalog, world, world_tuned, PROLOG};
use std::time::Duration;

/// Fixture size: big enough for joins/groups to have real shape, small
/// enough that an 8-cell × 50-seed matrix stays fast.
const WORLD_N: usize = 25;

fn demo() -> Principal {
    Principal::new("demo", &[])
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The generator's model of the running-example world, with sample
/// literals chosen to land inside `world(25)`'s value ranges.
fn model() -> CatalogModel {
    CatalogModel::new()
        .source(&customer_catalog(), "c", "urn:custDS")
        .source(&card_catalog(), "cc", "urn:ccDS")
        .link(("cc", "CREDIT_CARD", "CID"), ("c", "CUSTOMER", "CID"))
        .transform("lib", "urn:lib", "int2date", ColTy::Int)
        .samples(
            "c",
            "CUSTOMER",
            "CID",
            &["\"C0003\"", "\"C0010\"", "\"C0017\""],
        )
        .samples(
            "c",
            "CUSTOMER",
            "LAST_NAME",
            &["\"Jones\"", "\"Smith\"", "\"Chen\"", "\"Nobody\""],
        )
        .samples("c", "CUSTOMER", "SINCE", &["1005", "1011", "1019"])
        .samples("c", "ORDER", "OID", &["3", "7", "12"])
        .samples("c", "ORDER", "CID", &["\"C0004\"", "\"C0008\""])
        .samples("cc", "CREDIT_CARD", "CID", &["\"C0005\"", "\"C0009\""])
        .samples("cc", "CREDIT_CARD", "CCN", &["\"4000-000003\""])
}

fn build_cell(spec: &CellSpec) -> AldspServer {
    world_tuned(WORLD_N, |b| {
        b.execution(
            ExecutionOptions::new()
                .pushdown(spec.pushdown)
                .ppk_prefetch_depth(spec.prefetch_depth)
                .join_strategy(spec.join_strategy),
        )
        .vm(spec.vm)
    })
    .server
}

fn run(server: &AldspServer, q: &str) -> String {
    match server.execute(QueryRequest::new(q).principal(demo())) {
        Ok(resp) => serialize_sequence(resp.items()),
        Err(e) => format!("<error: {e}>"),
    }
}

// ---- the differential matrix ------------------------------------------------

/// The tentpole check: every configuration cell is byte-identical to
/// the naive reference on every generated seed. On failure the seed is
/// shrunk to a minimal query and (when `DIFFTEST_ARTIFACT` is set) the
/// report is written there for CI to upload.
#[test]
fn differential_matrix_over_seeds() {
    let model = model();
    let oracle = Oracle::new(default_matrix(), demo(), build_cell);
    let n = env_u64("DIFFTEST_SEEDS", 50);
    let start = env_u64("DIFFTEST_SEED_START", 0);
    let mut failures: Vec<String> = Vec::new();
    for seed in start..start + n {
        let q = generate(&model, seed);
        let text = q.render(&model);
        if let Err(m) = oracle.check(&text) {
            let minimized = shrink(&model, &q, |cand| {
                oracle.check(&cand.render(&model)).is_err()
            });
            failures.push(format!(
                "seed {seed}: {m}\n--- query ---\n{text}\n--- minimized ---\n{}",
                minimized.render(&model)
            ));
            if failures.len() >= 3 {
                break; // enough to debug; don't spam
            }
        }
    }
    if !failures.is_empty() {
        let report = failures.join("\n\n========\n\n");
        if let Ok(path) = std::env::var("DIFFTEST_ARTIFACT") {
            let _ = std::fs::write(path, &report);
        }
        panic!("{report}");
    }
}

/// Transformed-value predicates are part of the generated grammar (the
/// §4.4 inverse-rewrite surface must be *reachable* by the fuzzer, not
/// just by hand-written goldens).
#[test]
fn generator_emits_transform_predicates() {
    let model = model();
    let hit = (0..200).any(|seed| {
        generate(&model, seed)
            .preds
            .iter()
            .any(|p| matches!(p, Pred::Transform { .. }))
    });
    assert!(hit, "no transformed-value predicate in 200 seeds");
}

/// Determinism of the harness itself: same seed, same query text.
#[test]
fn generator_is_deterministic() {
    let model = model();
    for seed in [0u64, 1, 17, 999, u64::MAX] {
        assert_eq!(
            generate(&model, seed).render(&model),
            generate(&model, seed).render(&model),
            "seed {seed} not stable"
        );
    }
}

// ---- the matview cell -------------------------------------------------------

/// Materialized data services under an interleaved, seeded write
/// workload: a materialized server and an uncached twin share the same
/// simulated sources; after *every* submitted write, each materialized
/// function must answer byte-identically to the twin's cold recompute
/// — whether the registry skipped, patched, or invalidated.
#[test]
fn matview_cell_identical_under_interleaved_writes() {
    use aldsp::updates::ConcurrencyPolicy;
    use aldsp::xdm::QName;
    use aldsp::{CallCriteria, MatViewPolicy};
    use aldsp_qgen::generate_writes;
    use common::twin_server;

    const MODULE: &str = r#"
        declare namespace tns = "urn:mvDS";
        declare namespace c = "urn:custDS";
        declare namespace lib = "urn:lib";

        declare function tns:writer() as element(W)* {
          for $c in c:CUSTOMER()
          return
            <W>
              <CID>{fn:data($c/CID)}</CID>
              <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
              <FIRST_NAME>{fn:data($c/FIRST_NAME)}</FIRST_NAME>
              <SINCE>{lib:int2date($c/SINCE)}</SINCE>
              <SSN>{fn:data($c/SSN)}</SSN>
            </W>
        };

        declare function tns:profile() as element(P)* {
          for $c in c:CUSTOMER()
          return
            <P>
              <CID>{fn:data($c/CID)}</CID>
              <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
              <SINCE>{lib:int2date($c/SINCE)}</SINCE>
            </P>
        };

        declare function tns:smiths() as element(S)* {
          for $c in c:CUSTOMER()
          where $c/LAST_NAME = "Smith"
          return <S><CID>{fn:data($c/CID)}</CID></S>
        };

        declare function tns:spenders() as element(T)* {
          for $c in c:CUSTOMER()
          for $o in c:getORDER($c)
          order by $o/OID
          return <T><CID>{fn:data($c/CID)}</CID><A>{fn:data($o/AMOUNT)}</A></T>
        };
    "#;
    let f = |name: &str| QName::new("urn:mvDS", name);
    let views = ["profile", "smiths", "spenders"];
    let w = world_tuned(WORLD_N, |b| {
        b.materialize(f("profile"), MatViewPolicy::PatchOrInvalidate)
            .materialize(f("smiths"), MatViewPolicy::PatchOrInvalidate)
            .materialize(f("spenders"), MatViewPolicy::InvalidateOnly)
    });
    let reference = twin_server(&w, |b| b);
    w.server.deploy(MODULE).expect("deploys on live");
    reference.deploy(MODULE).expect("deploys on twin");
    let call = |server: &AldspServer, name: &str| -> String {
        serialize_sequence(
            server
                .execute(QueryRequest::call(f(name)).principal(demo()))
                .expect("materializable call executes")
                .items(),
        )
    };
    let write_seeds = env_u64("DIFFTEST_WRITE_SEEDS", 4);
    for seed in 0..write_seeds {
        for op in generate_writes(seed, 8, WORLD_N) {
            let criteria = CallCriteria {
                filter: vec![("CID".into(), aldsp::xdm::value::AtomicValue::str(&op.cid))],
                ..Default::default()
            };
            let mut sdo = w
                .server
                .read_object(&demo(), &f("writer"), vec![], &criteria)
                .expect("reads writer SDO")
                .expect("customer exists");
            sdo.set(&op.field, op.value.clone()).expect("writable path");
            w.server
                .submit(
                    &demo(),
                    &f("writer"),
                    &sdo,
                    ConcurrencyPolicy::UpdatedValues,
                )
                .expect("submits");
            for name in views {
                // first read may hit a patched entry or recompute; the
                // second must hit — both byte-identical to the twin
                let expected = call(&reference, name);
                for pass in 0..2 {
                    let got = call(&w.server, name);
                    assert_eq!(
                        got,
                        expected,
                        "view {name} diverged (pass {pass}, seed {seed}, write {})",
                        op.describe()
                    );
                }
            }
        }
    }
    // the workload actually exercised the maintenance machinery
    let stats = w.server.stats();
    assert!(stats.matview_hits > 0, "{stats:?}");
    assert!(stats.matview_patches > 0, "{stats:?}");
    assert!(stats.matview_invalidations > 0, "{stats:?}");
    assert!(stats.matview_recomputes > 0, "{stats:?}");
}

// ---- mutation smoke ---------------------------------------------------------

/// The harness must be able to catch a real optimizer bug: plant one
/// (a pushdown rewrite that silently drops a pushed `where` conjunct)
/// and demand the differential comparison finds it within 100 seeds.
#[test]
fn planted_rewrite_bug_caught_within_100_seeds() {
    let model = model();
    let honest = world(WORLD_N).server;
    let mutant = world_tuned(WORLD_N, |b| b.mutation(Mutation::DropPushedPredicate)).server;
    for seed in 0..100 {
        let text = generate(&model, seed).render(&model);
        if run(&honest, &text) != run(&mutant, &text) {
            return; // caught
        }
    }
    panic!("mutation smoke test: DropPushedPredicate survived 100 seeds undetected");
}

// ---- fault injection --------------------------------------------------------

/// Seeded fault schedules (transient errors, latency spikes under
/// deadlines, disconnects) against generated queries: every run must
/// end byte-identical or in a typed error, and a streaming consumer
/// must never see a non-prefix of the true result.
#[test]
fn fault_schedules_end_typed_or_identical() {
    let model = model();
    let w = world_tuned(WORLD_N, |b| b);
    let n = env_u64("DIFFTEST_FAULT_SEEDS", 25);
    let start = env_u64("DIFFTEST_SEED_START", 0);
    for seed in start..start + n {
        let q = generate(&model, seed).render(&model);
        // known-good baseline without faults
        let baseline = w
            .server
            .execute(QueryRequest::new(&q).principal(demo()))
            .expect("fault-free baseline executes")
            .into_items();
        let plan = generate_plan(seed, &["db1", "db2"]);
        let outcome = run_fault_trial(
            &w.server,
            &demo(),
            &q,
            &baseline,
            &plan,
            |src, faults| {
                let h = if src == "db1" { &w.db1 } else { &w.db2 };
                h.set_faults(faults);
            },
            || {
                w.db1.clear_faults();
                w.db2.clear_faults();
            },
        );
        if let Err(violation) = outcome {
            panic!("fault seed {seed}: {violation}\n--- query ---\n{q}");
        }
    }
}

// ---- inverse-rewrite and typematch goldens ----------------------------------

/// §4.4 transformed-value predicate: identical answers with the
/// rewrite-and-push enabled and with everything interpreted.
#[test]
fn inverse_rewrite_identical_on_off() {
    let on = world(WORLD_N).server;
    let off = world_tuned(WORLD_N, |b| {
        b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off))
    })
    .server;
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         where lib:int2date($c/SINCE) gt lib:int2date(1004)
         order by $c/CID
         return $c/CID"
    );
    let a = run(&on, &q);
    assert_eq!(a, run(&off, &q));
    assert!(a.contains("C0005") && !a.contains("C0004"), "{a}");
}

/// Same contract when the inverse call sits on the *literal* side and
/// the comparison direction is flipped.
#[test]
fn inverse_rewrite_flipped_identical_on_off() {
    let on = world(WORLD_N).server;
    let off = world_tuned(WORLD_N, |b| {
        b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off))
    })
    .server;
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         where lib:int2date(1010) ge lib:int2date($c/SINCE)
         order by $c/CID descending
         return $c/SINCE"
    );
    assert_eq!(run(&on, &q), run(&off, &q));
}

/// The optimistic-typing typematch fallback: a conditional whose
/// branches surface different nullabilities forces a runtime type
/// dispatch; results must not depend on where the filter ran.
#[test]
fn typematch_fallback_identical_on_off() {
    let on = world(WORLD_N).server;
    let off = world_tuned(WORLD_N, |b| {
        b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off))
    })
    .server;
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         where (if ($c/CID eq \"C0007\") then $c/FIRST_NAME else $c/LAST_NAME) eq \"Smith\"
         order by $c/CID
         return <m>{{ $c/CID }}{{ $c/FIRST_NAME }}</m>"
    );
    let a = run(&on, &q);
    assert_eq!(a, run(&off, &q));
    assert!(!a.starts_with("<error"), "{a}");
}

// ---- EXPLAIN surface --------------------------------------------------------

/// The compile option is observable: EXPLAIN reports the pushdown
/// level the plan was compiled under.
#[test]
fn explain_reports_pushdown_level() {
    let q = format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID");
    for (level, tag) in [
        (PushdownLevel::Full, "pushdown: full"),
        (PushdownLevel::Joins, "pushdown: joins"),
        (PushdownLevel::Off, "pushdown: off"),
    ] {
        let server = world_tuned(WORLD_N, |b| {
            b.execution(ExecutionOptions::new().pushdown(level))
        })
        .server;
        let resp = server
            .execute(QueryRequest::new(&q).principal(demo()).explain_only())
            .expect("explain");
        let plan = resp.plan_explain().expect("explain text");
        assert!(plan.contains(tag), "missing '{tag}' in:\n{plan}");
    }
}

/// The `-- join:` EXPLAIN header is golden: the exact planner decision
/// — strategy, both cardinality estimates from the introspected
/// catalog statistics, and the reorder bit — for every strategy knob.
/// world(25) registers CUSTOMER=25 rows and CREDIT_CARD=12 rows
/// (customers 1,3,…,23), so the estimates are exact.
#[test]
fn explain_join_header_is_golden() {
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
         where $k/CID eq $c/CID
         return <R>{{ $c/CID, $k/CCN }}</R>"
    );
    for (strategy, line) in [
        // auto leaves a 25×13 join on the per-tuple plan (< 256 rows)
        (JoinStrategy::Auto, "-- join: none"),
        (JoinStrategy::NestedLoop, "-- join: none"),
        (JoinStrategy::IndexNl, "-- join: none"),
        (
            JoinStrategy::Hash,
            "-- join: #1.1 strategy=hash est-build=12 est-probe=25 reordered=false",
        ),
        (
            JoinStrategy::Merge,
            "-- join: #1.1 strategy=merge est-build=12 est-probe=25 reordered=false",
        ),
    ] {
        let server = world_tuned(WORLD_N, |b| {
            b.execution(ExecutionOptions::new().join_strategy(strategy))
        })
        .server;
        let resp = server
            .execute(QueryRequest::new(&q).principal(demo()).explain_only())
            .expect("explain");
        let plan = resp.plan_explain().expect("explain text");
        assert!(
            plan.lines().any(|l| l == line),
            "{strategy}: missing '{line}' in:\n{plan}"
        );
    }
}

/// With pushdown off, no SQL region may appear in the plan at all —
/// the reference cell really is the naive middleware path.
#[test]
fn pushdown_off_compiles_no_sql_regions() {
    let server = world_tuned(WORLD_N, |b| {
        b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off))
    })
    .server;
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         for $o in c:getORDER($c)
         where $c/LAST_NAME eq \"Smith\"
         order by $o/OID
         return $o/AMOUNT"
    );
    let resp = server
        .execute(QueryRequest::new(&q).principal(demo()).explain_only())
        .expect("explain");
    let plan = resp.plan_explain().expect("explain text");
    assert!(
        !plan.contains("SqlRegion") && !plan.contains("SELECT"),
        "pushdown=off plan still contains SQL:\n{plan}"
    );
}

// ---- governor edges ---------------------------------------------------------

/// A latency spike injected at a row boundary under a deadline: the
/// stream stops *between* tuples with a typed deadline error — the
/// delivered prefix is intact, never a torn or reordered tail.
#[test]
fn deadline_at_tuple_boundary_keeps_prefix_intact() {
    let w = world_tuned(60, |b| b);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         order by $c/CID
         return $c/CID"
    );
    let baseline = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("baseline")
        .into_items();
    // spike fires once the source has returned 20 rows; the 400 ms
    // stall dwarfs the 60 ms deadline
    w.db1.set_faults(vec![Fault {
        trigger: FaultTrigger::RowsReturned(20),
        kind: FaultKind::LatencySpike(Duration::from_millis(400)),
    }]);
    let mut delivered = Vec::new();
    let mut sink = |item| {
        delivered.push(item);
        true
    };
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .deadline(Duration::from_millis(60))
                .stream_to(&mut sink),
        )
        .expect_err("deadline should fire");
    w.db1.clear_faults();
    assert!(err.is_deadline_exceeded(), "typed deadline error: {err}");
    let n = delivered.len();
    assert!(n < baseline.len(), "deadline fired after full delivery");
    assert_eq!(
        serialize_sequence(&delivered),
        serialize_sequence(&baseline[..n]),
        "delivered prefix corrupted"
    );
}

/// Budget exhaustion inside a sorted grouping (blocking operators
/// charge their materialization): typed budget error and nothing
/// delivered — a blocking tail must not leak partial groups.
#[test]
fn budget_exhausted_inside_sorted_grouping_is_typed_and_clean() {
    let w = world_tuned(60, |b| b);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         group $c as $p by $c/LAST_NAME as $k
         order by $k
         return <g><k>{{ $k }}</k><c>{{ count($p) }}</c></g>"
    );
    let mut delivered = Vec::new();
    let mut sink = |item| {
        delivered.push(item);
        true
    };
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(1024)
                .stream_to(&mut sink),
        )
        .expect_err("budget should blow inside the grouping");
    assert!(err.is_budget_exceeded(), "typed budget error: {err}");
    assert!(
        delivered.is_empty(),
        "partial groups escaped a blocking operator: {}",
        serialize_sequence(&delivered)
    );
    // the same query under a workable budget still answers correctly
    let roomy = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(1 << 20),
        )
        .expect("roomy budget executes");
    assert!(serialize_sequence(roomy.items()).contains("<k>Chen</k>"));
}

/// The hash join's build side is charged against the query's memory
/// budget: under a tight budget the bulk buffering trips a *typed*
/// budget error before any row escapes, and a workable budget returns
/// output byte-identical to the per-tuple nested-loop reference.
#[test]
fn hash_join_build_respects_memory_budget() {
    let w = world_tuned(60, |b| {
        b.execution(ExecutionOptions::new().join_strategy(JoinStrategy::Hash))
    });
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
         where $k/CID eq $c/CID
         return <R>{{ $c/CID, $k/CCN }}</R>"
    );
    let mut delivered = Vec::new();
    let mut sink = |item| {
        delivered.push(item);
        true
    };
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(1024)
                .stream_to(&mut sink),
        )
        .expect_err("30 buffered build rows must blow a 1 KiB budget");
    assert!(err.is_budget_exceeded(), "typed budget error: {err}");
    assert!(
        delivered.is_empty(),
        "rows escaped before the build finished: {}",
        serialize_sequence(&delivered)
    );

    // a workable budget answers, byte-identical to nested loop
    let hashed = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(1 << 20),
        )
        .expect("roomy budget executes");
    let reference = world_tuned(60, |b| b)
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("nested-loop reference");
    assert_eq!(
        serialize_sequence(hashed.items()),
        serialize_sequence(reference.items())
    );
}

// ---- the wire cell ----------------------------------------------------------

/// The network front door as an oracle cell: every generated seed runs
/// once in-process and once over a real loopback connection through
/// `aldsp-client`, and the reassembled wire text must be byte-identical
/// (typed server errors compare against the reference's error
/// rendering). Odd seeds exercise the prepared-handle path so plan
/// handles get the same coverage as ad-hoc execution. 50 seeds in
/// tier-1; the nightly runs it at 2,000 via `DIFFTEST_SEEDS`.
#[test]
fn wire_cell_identical_over_loopback() {
    use aldsp_client::{Client, ClientError};
    use aldsp_protocol::WireOptions;
    use aldsp_server::{serve, WireConfig};
    use std::sync::Arc;

    let model = model();
    let server = Arc::new(world(WORLD_N).server);
    let listener =
        serve("127.0.0.1:0", server.clone(), WireConfig::default()).expect("bind loopback");
    let mut client = Client::connect(listener.local_addr(), "demo", &[]).expect("connect");
    let n = env_u64("DIFFTEST_SEEDS", 50);
    let start = env_u64("DIFFTEST_SEED_START", 0);
    let mut failures: Vec<String> = Vec::new();
    for seed in start..start + n {
        let text = generate(&model, seed).render(&model);
        let reference = run(&server, &text);
        let outcome = if seed % 2 == 0 {
            client.execute(&text, &WireOptions::default())
        } else {
            match client.prepare(&text) {
                Ok(p) => {
                    let r = client.execute_prepared(p.handle, &WireOptions::default());
                    assert!(client.close_handle(p.handle).expect("close"), "seed {seed}");
                    r
                }
                Err(e) => Err(e),
            }
        };
        let wire = match outcome {
            Ok(rs) => rs.text(),
            // the server renders the same ServerError Display the
            // in-process reference wraps
            Err(ClientError::Server { message, .. }) => format!("<error: {message}>"),
            Err(e) => panic!("seed {seed}: transport failure: {e}"),
        };
        if wire != reference {
            failures.push(format!(
                "seed {seed}: wire differs from in-process\n--- query ---\n{text}\n\
                 --- in-process ---\n{reference}\n--- wire ---\n{wire}"
            ));
            if failures.len() >= 3 {
                break; // enough to debug; don't spam
            }
        }
    }
    client.goodbye().expect("clean close");
    if !failures.is_empty() {
        let report = failures.join("\n\n========\n\n");
        if let Ok(path) = std::env::var("DIFFTEST_ARTIFACT") {
            let _ = std::fs::write(path, &report);
        }
        panic!("{report}");
    }
}
