//! End-to-end tests for the `aldspd` network front door: a real TCP
//! loopback, the real wire protocol, the real engine behind it.
//!
//! The suite covers the session lifecycle (handshake, version and
//! token rejection), the cross-session plan-handle cache, governance
//! surfaced as typed wire errors (shed at the socket, mid-stream
//! deadline), protocol robustness under seeded corrupt byte streams,
//! client disconnect mid-stream, and the paper's §7 post-cache
//! security property: one shared plan handle, per-principal redaction.

mod common;

use aldsp::relational::{Fault, FaultKind, FaultTrigger, LatencyModel, RelationalServer};
use aldsp::security::{DenialAction, ElementResource, Principal, SecurityPolicy};
use aldsp::xdm::value::AtomicValue;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::QName;
use aldsp::{AldspServer, QueryRequest, ServerBuilder};
use aldsp_client::{Client, ClientError};
use aldsp_protocol as proto;
use aldsp_protocol::{code, ClientMsg, ServerMsg, WireError, WireExec, WireOptions};
use aldsp_server::{serve, WireConfig, WireListener};
use common::{world_tuned, PROLOG};
use rand::{RngCore, SeedableRng, StdRng};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// The running-example world served over a loopback socket.
struct Wired {
    server: Arc<AldspServer>,
    db1: Arc<RelationalServer>,
    listener: WireListener,
}

impl Wired {
    fn addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }
}

fn wired_cfg(
    n: usize,
    tune: impl FnOnce(ServerBuilder) -> ServerBuilder,
    config: WireConfig,
) -> Wired {
    let common::World { server, db1, .. } = world_tuned(n, tune);
    let server = Arc::new(server);
    let listener = serve("127.0.0.1:0", server.clone(), config).expect("bind loopback");
    Wired {
        server,
        db1,
        listener,
    }
}

fn wired(n: usize, tune: impl FnOnce(ServerBuilder) -> ServerBuilder) -> Wired {
    wired_cfg(n, tune, WireConfig::default())
}

fn customers_query() -> String {
    format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         order by $c/CID
         return <P>{{$c/CID}}{{$c/LAST_NAME}}</P>"
    )
}

/// Poll until the shared handle registry drains (sessions release
/// asynchronously when their connection thread unwinds).
fn wait_handles_empty(w: &Wired) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !w.listener.handles().is_empty() {
        assert!(
            Instant::now() < deadline,
            "handle registry never drained: {} live",
            w.listener.handles().len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---- handshake --------------------------------------------------------------

#[test]
fn handshake_rejects_version_mismatch() {
    let w = wired(3, |b| b);
    let mut s = TcpStream::connect(w.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    ClientMsg::Hello {
        version: proto::PROTOCOL_VERSION + 1,
        principal: "time-traveler".into(),
        roles: vec![],
        token: String::new(),
    }
    .write(&mut s)
    .expect("send hello");
    let reply = ServerMsg::read(&mut s)
        .expect("typed reply")
        .expect("frame");
    match reply {
        ServerMsg::Error { code: c, message } => {
            assert_eq!(c, code::VERSION_MISMATCH, "{message}");
        }
        other => panic!("expected version-mismatch error, got {other:?}"),
    }
    // the server closes after rejecting
    assert!(ServerMsg::read(&mut s).expect("clean close").is_none());
}

#[test]
fn handshake_enforces_token_when_configured() {
    let w = wired_cfg(
        3,
        |b| b,
        WireConfig {
            token: Some("open-sesame".into()),
        },
    );
    let err = Client::connect_with_token(w.addr(), "eve", &[], "guess")
        .expect_err("wrong token rejected");
    assert_eq!(err.code(), Some(code::AUTH), "{err}");
    // and the right token connects and queries
    let mut ok = Client::connect_with_token(w.addr(), "alice", &[], "open-sesame")
        .expect("right token accepted");
    let r = ok
        .execute("1 + 1", &WireOptions::default())
        .expect("query runs");
    assert_eq!(r.text(), "2");
}

#[test]
fn first_frame_must_be_hello() {
    let w = wired(3, |b| b);
    let mut s = TcpStream::connect(w.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    ClientMsg::Prepare {
        source: "1 + 1".into(),
    }
    .write(&mut s)
    .expect("send");
    let reply = ServerMsg::read(&mut s)
        .expect("typed reply")
        .expect("frame");
    assert!(
        matches!(reply, ServerMsg::Error { code: c, .. } if c == code::UNSUPPORTED),
        "{reply:?}"
    );
    assert!(ServerMsg::read(&mut s).expect("clean close").is_none());
}

#[test]
fn client_stalling_mid_frame_does_not_desync_the_stream() {
    // the session socket polls with a 50ms read timeout; a client that
    // stalls longer than that *inside* a frame must not lose the
    // already-consumed prefix (regression: the retry used to restart
    // from scratch and misparse the remainder of the frame)
    let w = wired(3, |b| b);
    let mut s = TcpStream::connect(w.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_nodelay(true).unwrap();
    let drip = |s: &mut TcpStream, frame: &[u8]| {
        // stall past the poll timeout inside the header, on the
        // header/body boundary, and inside the body
        for chunk in [&frame[..2], &frame[2..4], &frame[4..7], &frame[7..]] {
            s.write_all(chunk).expect("send chunk");
            s.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(120));
        }
    };
    let mut hello = Vec::new();
    ClientMsg::Hello {
        version: proto::PROTOCOL_VERSION,
        principal: "slowpoke".into(),
        roles: vec![],
        token: String::new(),
    }
    .write(&mut hello)
    .unwrap();
    drip(&mut s, &hello);
    let reply = ServerMsg::read(&mut s).expect("reply").expect("frame");
    assert!(matches!(reply, ServerMsg::HelloAck { .. }), "{reply:?}");
    // and the connection keeps working for a stalled query frame too
    let mut exec = Vec::new();
    ClientMsg::Execute {
        source: "1 + 1".into(),
        options: WireOptions::default(),
    }
    .write(&mut exec)
    .unwrap();
    drip(&mut s, &exec);
    let reply = ServerMsg::read(&mut s).expect("reply").expect("frame");
    assert!(
        matches!(reply, ServerMsg::Item { ref text, .. } if text == "2"),
        "{reply:?}"
    );
    let reply = ServerMsg::read(&mut s).expect("reply").expect("frame");
    assert!(
        matches!(reply, ServerMsg::Done { delivered: 1 }),
        "{reply:?}"
    );
}

// ---- plan handles -----------------------------------------------------------

#[test]
fn prepared_handles_are_shared_across_sessions_and_refcounted() {
    let w = wired(10, |b| b);
    let q = customers_query();
    let mut c1 = Client::connect(w.addr(), "alice", &[]).expect("connect");
    let mut c2 = Client::connect(w.addr(), "bob", &[]).expect("connect");
    let p1 = c1.prepare(&q).expect("prepare");
    assert!(!p1.shared, "first prepare mints the handle");
    let p2 = c2.prepare(&q).expect("prepare");
    assert_eq!(p1.handle, p2.handle, "same text, same handle");
    assert!(p2.shared, "second session sees the shared handle");
    assert_eq!(w.listener.handles().len(), 1);

    // both sessions execute the shared handle and agree byte-for-byte
    let r1 = c1
        .execute_prepared(p1.handle, &WireOptions::default())
        .expect("execute");
    let r2 = c2
        .execute_prepared(p2.handle, &WireOptions::default())
        .expect("execute");
    assert_eq!(r1.text(), r2.text());
    assert!(r1.delivered > 0);

    // refcounting: the handle outlives the first release
    assert!(c1.close_handle(p1.handle).expect("close"));
    assert!(
        !c1.close_handle(p1.handle).expect("close"),
        "double close reports not-held"
    );
    assert_eq!(w.listener.handles().len(), 1, "bob still holds it");
    let r3 = c2
        .execute_prepared(p2.handle, &WireOptions::default())
        .expect("still executable");
    assert_eq!(r3.text(), r1.text());
    assert!(c2.close_handle(p2.handle).expect("close"));
    assert_eq!(w.listener.handles().len(), 0, "dropped at zero refs");

    // a fresh prepare mints a new handle id
    let p3 = c2.prepare(&q).expect("prepare");
    assert!(!p3.shared);
    assert_ne!(p3.handle, p1.handle);
    c1.goodbye().expect("clean close");
    c2.goodbye().expect("clean close");
    wait_handles_empty(&w);
}

#[test]
fn compile_error_is_typed_and_the_session_survives() {
    let w = wired(3, |b| b);
    let mut c = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let err = c
        .prepare("for $x in syntax error here")
        .expect_err("bogus query");
    assert_eq!(err.code(), Some(code::COMPILE), "{err}");
    // the connection is still usable afterwards
    let r = c
        .execute("1 + 1", &WireOptions::default())
        .expect("session survived");
    assert_eq!(r.text(), "2");
    c.goodbye().expect("clean close");
}

#[test]
fn unknown_handle_is_typed_and_the_session_survives() {
    let w = wired(3, |b| b);
    let mut c = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let err = c
        .execute_prepared(12345, &WireOptions::default())
        .expect_err("nobody prepared 12345");
    assert_eq!(err.code(), Some(code::UNKNOWN_HANDLE), "{err}");
    let r = c
        .execute("2 + 3", &WireOptions::default())
        .expect("session survived");
    assert_eq!(r.text(), "5");
    c.goodbye().expect("clean close");
}

// ---- wire results match the in-process engine -------------------------------

#[test]
fn wire_results_are_byte_identical_to_in_process_execution() {
    let w = wired(25, |b| b);
    let q = customers_query();
    let reference = serialize_sequence(
        &w.server
            .execute(QueryRequest::new(&q).principal(Principal::new("demo", &[])))
            .expect("in-process reference")
            .into_items(),
    );
    let mut c = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let over_wire = c.execute(&q, &WireOptions::default()).expect("wire run");
    assert_eq!(over_wire.text(), reference);
    c.goodbye().expect("clean close");
}

// ---- governance at the socket -----------------------------------------------

#[test]
fn mid_stream_deadline_is_a_typed_wire_error_after_an_intact_prefix() {
    let w = wired(60, |b| b);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         order by $c/CID
         return $c/CID"
    );
    let baseline = w
        .server
        .execute(QueryRequest::new(&q).principal(Principal::new("demo", &[])))
        .expect("baseline")
        .into_items();
    // a 400 ms stall once the source has returned 20 rows dwarfs the
    // 60 ms deadline
    w.db1.set_faults(vec![Fault {
        trigger: FaultTrigger::RowsReturned(20),
        kind: FaultKind::LatencySpike(Duration::from_millis(400)),
    }]);
    let mut c = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let mut prefix = Vec::new();
    let err = c
        .execute_streaming(
            &q,
            &WireOptions {
                deadline_ms: 60,
                ..WireOptions::default()
            },
            |item| {
                prefix.push((item.atomic, item.text.clone()));
                true
            },
        )
        .expect_err("deadline should fire");
    w.db1.clear_faults();
    assert!(
        err.is_deadline_exceeded(),
        "typed deadline on the wire: {err}"
    );
    assert!(
        prefix.len() < baseline.len(),
        "deadline fired after full delivery"
    );
    // whatever was streamed before the error is an intact prefix
    assert_eq!(
        proto::join_items(prefix.iter().map(|(a, t)| (*a, t.as_str()))),
        serialize_sequence(&baseline[..prefix.len()]),
        "streamed prefix corrupted"
    );
    // the connection survives a mid-stream error
    let r = c
        .execute("1 + 1", &WireOptions::default())
        .expect("session survived the deadline");
    assert_eq!(r.text(), "2");
    c.goodbye().expect("clean close");
}

#[test]
fn admission_shed_surfaces_as_overloaded_at_the_socket() {
    let w = wired(6, |b| b.admission(1, 1));
    w.db1.set_latency(LatencyModel::lan(100_000)); // 100 ms per roundtrip
    let q = customers_query();
    let addr = w.addr();
    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let mut threads = Vec::new();
    for i in 0..clients {
        let barrier = barrier.clone();
        let q = q.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("shed-client-{i}"))
                .spawn(move || {
                    let mut c = Client::connect(addr, "demo", &[]).expect("connect");
                    barrier.wait();
                    c.execute(&q, &WireOptions::default())
                })
                .expect("spawn"),
        );
    }
    let mut ok = 0;
    let mut shed = 0;
    for t in threads {
        match t.join().expect("client thread") {
            Ok(_) => ok += 1,
            Err(e) => {
                assert!(e.is_overloaded(), "only typed shed errors expected: {e}");
                shed += 1;
            }
        }
    }
    assert!(
        ok >= 1,
        "at least one query admitted ({ok} ok, {shed} shed)"
    );
    assert!(
        shed >= 1,
        "the governor should shed at the socket ({ok} ok, {shed} shed)"
    );
}

// ---- protocol robustness ----------------------------------------------------

#[test]
fn oversized_frame_announcement_is_rejected_before_allocation() {
    let w = wired(3, |b| b);
    let mut s = TcpStream::connect(w.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // a 4-byte header announcing 2 GiB must not reserve 2 GiB
    s.write_all(&(proto::MAX_FRAME_LEN * 128).to_be_bytes())
        .expect("send header");
    let reply = ServerMsg::read(&mut s)
        .expect("typed reply")
        .expect("frame");
    assert!(
        matches!(reply, ServerMsg::Error { code: c, .. } if c == code::MALFORMED),
        "{reply:?}"
    );
    assert!(ServerMsg::read(&mut s).expect("clean close").is_none());
}

/// Property-style fuzz over seeded corrupt byte streams: whatever
/// garbage a connection sends — cold or after a valid handshake — the
/// server must answer with at most typed error frames, close the
/// connection (never hang), and keep serving well-formed clients.
#[test]
fn seeded_corrupt_streams_never_hang_or_poison_the_server() {
    let w = wired(4, |b| b);
    let addr = w.addr();
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xA1D5_0000 + seed);
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // half the seeds handshake first so corruption lands mid-session
        if seed % 2 == 1 {
            ClientMsg::Hello {
                version: proto::PROTOCOL_VERSION,
                principal: format!("fuzzer-{seed}"),
                roles: vec![],
                token: String::new(),
            }
            .write(&mut s)
            .expect("send hello");
            match ServerMsg::read(&mut s).expect("ack").expect("frame") {
                ServerMsg::HelloAck { .. } => {}
                other => panic!("expected HelloAck, got {other:?}"),
            }
        }
        let n = 1 + (rng.next_u64() % 96) as usize;
        let garbage: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        // the server may already have replied and closed (reset) —
        // both sends are best-effort
        let _ = s.write_all(&garbage);
        let _ = s.shutdown(Shutdown::Write);
        // drain replies; the server must reach EOF, not hang
        loop {
            match proto::read_frame(&mut s) {
                Ok(None) => break,
                Ok(Some(_)) => continue,
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    panic!("seed {seed}: server kept the corrupt connection open")
                }
                Err(_) => break, // connection reset is as good as EOF
            }
        }
        // the server is still healthy for a well-formed client
        let mut c = Client::connect(addr, "demo", &[]).expect("connect after corruption");
        let r = c
            .execute("1 + 1", &WireOptions::default())
            .expect("server poisoned by corrupt stream");
        assert_eq!(r.text(), "2", "seed {seed}");
        c.goodbye().expect("clean close");
    }
    wait_handles_empty(&w);
}

#[test]
fn client_disconnect_mid_stream_leaves_the_server_healthy() {
    let w = wired(40, |b| b);
    let q = customers_query();
    // stall the source mid-scan so the client is provably mid-stream
    // when it vanishes
    w.db1.set_faults(vec![Fault {
        trigger: FaultTrigger::RowsReturned(10),
        kind: FaultKind::LatencySpike(Duration::from_millis(200)),
    }]);
    let mut c = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let _ = c.prepare(&q).expect("hold a handle across the disconnect");
    let mut seen = 0;
    let err = c
        .execute_streaming(&q, &WireOptions::default(), |_| {
            seen += 1;
            seen < 3
        })
        .expect_err("the consumer aborts");
    assert!(matches!(err, ClientError::Aborted), "{err}");
    drop(c); // the socket is already torn down
    w.db1.clear_faults();
    // the session thread must clean up its handle references …
    wait_handles_empty(&w);
    // … and the server keeps serving: a fresh client runs the same
    // query to completion
    let mut c2 = Client::connect(w.addr(), "demo", &[]).expect("connect");
    let r = c2.execute(&q, &WireOptions::default()).expect("full run");
    assert!(r.delivered > 3, "full delivery after the disconnect");
    c2.goodbye().expect("clean close");
}

// ---- §7: shared plans, per-principal results --------------------------------

/// The paper's post-cache security property, end to end over
/// concurrent connections: ONE plan handle shared by two principals,
/// redaction applied per-session after the cache, byte-stable results
/// under parallel execution (`workers > 1`).
#[test]
fn concurrent_sessions_share_one_handle_with_per_principal_redaction() {
    let mut policy = SecurityPolicy::new();
    policy.add_resource(ElementResource {
        path: vec![QName::local("SSN")],
        allowed_roles: vec!["admin".into()],
        denial: DenialAction::Replace(AtomicValue::str("###-##-####")),
    });
    let w = wired(30, |b| b.security(policy));
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         order by $c/CID
         return <P><CID>{{fn:data($c/CID)}}</CID><SSN>{{fn:data($c/SSN)}}</SSN></P>"
    );
    // in-process per-principal references
    let reference = |name: &str, roles: &[&str]| {
        serialize_sequence(
            &w.server
                .execute(QueryRequest::new(&q).principal(Principal::new(name, roles)))
                .expect("reference run")
                .into_items(),
        )
    };
    let admin_ref = reference("admin", &["admin"]);
    let csr_ref = reference("csr", &["csr"]);
    assert!(admin_ref.contains("<SSN>000000001</SSN>"), "{admin_ref}");
    assert!(!admin_ref.contains("###-##-####"));
    assert!(csr_ref.contains("<SSN>###-##-####</SSN>"), "{csr_ref}");
    assert!(!csr_ref.contains("<SSN>000000001</SSN>"));

    // both sessions prepare the same text: ONE handle
    let mut admin = Client::connect(w.addr(), "admin", &["admin"]).expect("connect");
    let mut csr = Client::connect(w.addr(), "csr", &["csr"]).expect("connect");
    let pa = admin.prepare(&q).expect("prepare");
    let pc = csr.prepare(&q).expect("prepare");
    assert_eq!(pa.handle, pc.handle, "plans are user-independent");
    assert!(pc.shared, "second principal sees the shared handle");
    assert_eq!(w.listener.handles().len(), 1);

    // run both sessions concurrently, parallel execution stressed
    let options = WireOptions {
        exec: Some(WireExec {
            workers: 4,
            morsel_size: 2,
            ..WireExec::default()
        }),
        ..WireOptions::default()
    };
    let barrier = Arc::new(Barrier::new(2));
    let run = |mut client: Client, handle: u64, options: WireOptions, barrier: Arc<Barrier>| {
        std::thread::spawn(move || {
            barrier.wait();
            let runs: Vec<String> = (0..4)
                .map(|_| {
                    client
                        .execute_prepared(handle, &options)
                        .expect("shared-handle run")
                        .text()
                })
                .collect();
            client.goodbye().expect("clean close");
            runs
        })
    };
    let ta = run(admin, pa.handle, options.clone(), barrier.clone());
    let tc = run(csr, pc.handle, options, barrier);
    let admin_runs = ta.join().expect("admin session");
    let csr_runs = tc.join().expect("csr session");

    // byte-stable within a principal, correctly redacted per principal
    for r in &admin_runs {
        assert_eq!(r, &admin_ref, "admin results byte-stable and unredacted");
    }
    for r in &csr_runs {
        assert_eq!(r, &csr_ref, "csr results byte-stable and redacted");
    }
    // and the engine really shared one compiled plan under the handle
    let (hits, _misses) = w.server.plan_cache_stats();
    assert!(hits >= 2, "shared plan cache should be hot (hits={hits})");
    wait_handles_empty(&w);
}
