//! Integration tests for §6 (updates through the server facade) and §7
//! (security around cached, shared plans and results).

mod common;

use aldsp::security::{DenialAction, ElementResource, Principal, SecurityPolicy};
use aldsp::updates::ConcurrencyPolicy;
use aldsp::xdm::value::AtomicValue;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::QName;
use aldsp::{CallCriteria, QueryRequest, ServerError};
use common::{world, PROLOG};

const PROFILE_MODULE: &str = r#"
    declare namespace tns = "urn:profileDS";
    declare namespace ns3 = "urn:custDS";
    declare namespace lib = "urn:lib";

    declare function tns:getProfile() as element(PROFILE)* {
      for $c in ns3:CUSTOMER()
      return
        <PROFILE>
          <CID>{fn:data($c/CID)}</CID>
          <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
          <SINCE>{lib:int2date($c/SINCE)}</SINCE>
        </PROFILE>
    };
"#;

fn provider() -> QName {
    QName::new("urn:profileDS", "getProfile")
}

#[test]
fn figure5_flow_through_the_server() {
    let w = world(5);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let user = Principal::new("demo", &[]);
    let criteria = CallCriteria {
        filter: vec![("CID".into(), AtomicValue::str("C0002"))],
        ..Default::default()
    };
    let mut sdo = w
        .server
        .read_object(&user, &provider(), vec![], &criteria)
        .expect("reads")
        .expect("C0002 exists");
    sdo.set("LAST_NAME", Some(AtomicValue::str("Smithers")))
        .expect("writable path");
    let report = w
        .server
        .submit(&user, &provider(), &sdo, ConcurrencyPolicy::UpdatedValues)
        .expect("submits");
    assert_eq!(report.rows_affected, 1);
    assert_eq!(report.sources_touched, vec!["db1"]);
    // the write really landed
    let after = w
        .server
        .read_object(&user, &provider(), vec![], &criteria)
        .expect("reads")
        .expect("still there");
    assert_eq!(after.get("LAST_NAME"), Some(AtomicValue::str("Smithers")));
    // the conditioned UPDATE carried the optimistic check
    let (_, sql) = &report.statements[0];
    assert!(sql.contains("\"LAST_NAME\" = ?"), "{sql}");
    assert!(sql.contains("WHERE"), "{sql}");
}

#[test]
fn transformed_since_written_through_inverse() {
    let w = world(3);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let user = Principal::new("demo", &[]);
    let criteria = CallCriteria {
        filter: vec![("CID".into(), AtomicValue::str("C0001"))],
        ..Default::default()
    };
    let mut sdo = w
        .server
        .read_object(&user, &provider(), vec![], &criteria)
        .expect("reads")
        .expect("C0001 exists");
    // surfaced as dateTime (SINCE column is 1001)
    assert_eq!(
        sdo.get("SINCE"),
        Some(AtomicValue::DateTime(aldsp::xdm::value::DateTime(1001)))
    );
    sdo.set(
        "SINCE",
        Some(AtomicValue::DateTime(aldsp::xdm::value::DateTime(2_000))),
    )
    .expect("writable");
    w.server
        .submit(&user, &provider(), &sdo, ConcurrencyPolicy::UpdatedValues)
        .expect("submits");
    let stored = w
        .db1
        .with_db(|d| d.table("CUSTOMER").expect("table").rows()[1][3].clone());
    assert_eq!(stored, aldsp::relational::SqlValue::Int(2000));
}

#[test]
fn security_function_level_denial() {
    let mut policy = SecurityPolicy::new();
    policy.restrict_function(provider(), &["csr"]);
    // rebuild a world with the policy (security is configured at build)
    let w = world_with_policy(policy);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let intern = Principal::new("intern", &[]);
    let err = w
        .server
        .execute(QueryRequest::call(provider()).principal(intern))
        .expect_err("denied");
    assert!(matches!(err, ServerError::Security(_)), "{err}");
    let csr = Principal::new("csr", &["csr"]);
    assert!(w
        .server
        .execute(QueryRequest::call(provider()).principal(csr))
        .is_ok());
}

#[test]
fn element_security_is_per_user_over_shared_plans() {
    // §7: plans/results are cached user-independently; filtering applies
    // per user afterwards
    let mut policy = SecurityPolicy::new();
    policy.add_resource(ElementResource {
        path: vec![QName::local("SSN")],
        allowed_roles: vec!["admin".into()],
        denial: DenialAction::Replace(AtomicValue::str("###")),
    });
    let w = world_with_policy(policy);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         return <P><CID>{{fn:data($c/CID)}}</CID><SSN>{{fn:data($c/SSN)}}</SSN></P>"
    );
    let intern = Principal::new("intern", &[]);
    let admin = Principal::new("admin", &["admin"]);
    let masked = w
        .server
        .execute(QueryRequest::new(&q).principal(intern))
        .expect("executes")
        .into_items();
    let full = w
        .server
        .execute(QueryRequest::new(&q).principal(admin))
        .expect("executes")
        .into_items();
    assert!(serialize_sequence(&masked).contains("<SSN>###</SSN>"));
    assert!(!serialize_sequence(&full).contains("###"));
    // both users shared one compiled plan
    let (hits, misses) = w.server.plan_cache_stats();
    assert_eq!((hits, misses), (1, 1));
}

#[test]
fn audit_log_records_denials() {
    let mut policy = SecurityPolicy::new();
    policy.restrict_function(provider(), &["csr"]);
    let w = world_with_policy(policy);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    w.server.audit().set_enabled(true);
    let intern = Principal::new("eve", &[]);
    let _ = w
        .server
        .execute(QueryRequest::call(provider()).principal(intern));
    let entries = w.server.audit().entries();
    assert!(
        entries.iter().any(|e| e.principal == "eve" && !e.allowed),
        "{entries:?}"
    );
}

/// A world(5) variant with a security policy installed.
fn world_with_policy(policy: SecurityPolicy) -> common::World {
    // common::world builds without policy; rebuild with the same data and
    // the policy using the underlying pieces
    let base = world(5);
    // easiest faithful route: new server over the same adaptors isn't
    // exposed, so build a fresh world and re-create with policy by
    // stitching a new builder over fresh databases
    drop(base);
    build_with(policy)
}

fn build_with(policy: SecurityPolicy) -> common::World {
    use aldsp::relational::{Database, Dialect, RelationalServer, SqlValue};
    use aldsp::xdm::types::{ItemType, Occurrence, SequenceType};
    use aldsp::xdm::value::AtomicType;
    use std::sync::Arc;
    let cat1 = common::customer_catalog();
    let cat2 = common::card_catalog();
    let mut db1 = Database::new();
    for t in cat1.tables() {
        db1.create_table(t.clone()).expect("fresh db");
    }
    for i in 0..5 {
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(&format!("C{i:04}")),
                SqlValue::str(["Jones", "Smith", "Chen"][i % 3]),
                SqlValue::str(&format!("F{i}")),
                SqlValue::Int(1000 + i as i64),
                SqlValue::str(&format!("{i:09}")),
            ],
        )
        .expect("row");
    }
    let mut db2 = Database::new();
    for t in cat2.tables() {
        db2.create_table(t.clone()).expect("fresh db");
    }
    let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
    let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
    let (i2d, d2i) = aldsp::adaptors::native::int2date_pair();
    let opt_int = SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional);
    let opt_dt = SequenceType::Seq(ItemType::Atomic(AtomicType::DateTime), Occurrence::Optional);
    let rating = Arc::new(aldsp::adaptors::SimulatedWebService::new("ratingWS"));
    let server = aldsp::ServerBuilder::new()
        .relational_source(db1.clone(), &cat1, "urn:custDS")
        .expect("db1")
        .relational_source(db2.clone(), &cat2, "urn:ccDS")
        .expect("db2")
        .native_function(
            QName::new("urn:lib", "int2date"),
            opt_int.clone(),
            opt_dt.clone(),
            i2d,
        )
        .expect("i2d")
        .native_function(QName::new("urn:lib", "date2int"), opt_dt, opt_int, d2i)
        .expect("d2i")
        .inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        )
        .security(policy)
        .build();
    common::World {
        server,
        db1,
        db2,
        rating,
    }
}

#[test]
fn update_override_replaces_default_handling() {
    // §6: "an update override facility that allows user code to extend
    // or replace ALDSP's default update handling"
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let w = world(3);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let user = Principal::new("demo", &[]);
    let called = Arc::new(AtomicBool::new(false));
    let called2 = called.clone();
    w.server.register_update_override(
        provider(),
        Arc::new(move |sdo, lineage| {
            called2.store(true, Ordering::SeqCst);
            // user code can consult the lineage and veto/replace
            assert!(lineage
                .entry(&vec![(QName::local("LAST_NAME"), 0)])
                .is_some());
            if sdo.get("LAST_NAME") == Some(AtomicValue::str("FORBIDDEN")) {
                return Err("business rule: that name is not allowed".into());
            }
            Ok(None) // fall through to the default decomposition
        }),
    );
    let criteria = CallCriteria {
        filter: vec![("CID".into(), AtomicValue::str("C0001"))],
        ..Default::default()
    };
    let mut sdo = w
        .server
        .read_object(&user, &provider(), vec![], &criteria)
        .expect("reads")
        .expect("exists");
    sdo.set("LAST_NAME", Some(AtomicValue::str("FORBIDDEN")))
        .expect("writable");
    let err = w
        .server
        .submit(&user, &provider(), &sdo, ConcurrencyPolicy::UpdatedValues)
        .expect_err("vetoed");
    assert!(err.to_string().contains("business rule"), "{err}");
    assert!(called.load(Ordering::SeqCst));
    // a permitted change falls through and applies normally
    sdo.set("LAST_NAME", Some(AtomicValue::str("Allowed")))
        .expect("writable");
    let report = w
        .server
        .submit(&user, &provider(), &sdo, ConcurrencyPolicy::UpdatedValues)
        .expect("submits");
    assert_eq!(report.rows_affected, 1);
}
