//! Shared world-building helpers for the integration tests: the paper's
//! running example (Figure 3) at a configurable size.

// Each test binary compiles this module independently and uses a
// different subset of it.
#![allow(dead_code)]

use aldsp::adaptors::SimulatedWebService;
use aldsp::metadata::{WebServiceDescription, WebServiceOperation};
use aldsp::relational::{
    Catalog, Database, Dialect, RelationalServer, SqlType, SqlValue, TableSchema,
};
use aldsp::xdm::schema::ShapeBuilder;
use aldsp::xdm::types::{ItemType, Occurrence, SequenceType};
use aldsp::xdm::value::{AtomicType, AtomicValue, Decimal};
use aldsp::xdm::{Node, QName};
use aldsp::{AldspServer, ServerBuilder};
use std::sync::Arc;

pub struct World {
    pub server: AldspServer,
    pub db1: Arc<RelationalServer>,
    pub db2: Arc<RelationalServer>,
    pub rating: Arc<SimulatedWebService>,
}

pub const PROLOG: &str = r#"
    declare namespace c = "urn:custDS";
    declare namespace cc = "urn:ccDS";
    declare namespace ws = "urn:ratingWS";
    declare namespace lib = "urn:lib";
    declare namespace r = "urn:ratingTypes";
"#;

pub fn customer_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        TableSchema::builder("CUSTOMER")
            .col("CID", SqlType::Varchar)
            .col("LAST_NAME", SqlType::Varchar)
            .col_null("FIRST_NAME", SqlType::Varchar)
            .col_null("SINCE", SqlType::Integer)
            .col_null("SSN", SqlType::Varchar)
            .pk(&["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat.add(
        TableSchema::builder("ORDER")
            .col("OID", SqlType::Integer)
            .col("CID", SqlType::Varchar)
            .col("AMOUNT", SqlType::Decimal)
            .pk(&["OID"])
            .fk(&["CID"], "CUSTOMER", &["CID"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat
}

pub fn card_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add(
        TableSchema::builder("CREDIT_CARD")
            .col("CCN", SqlType::Varchar)
            .col("CID", SqlType::Varchar)
            .pk(&["CCN"])
            .build()
            .expect("static schema"),
    )
    .expect("fresh catalog");
    cat
}

/// Build the running-example world with `n` customers (each customer i
/// has i%3 orders and i%2 cards; every 7th has no FIRST_NAME).
pub fn world(n: usize) -> World {
    world_tuned(n, |b| b)
}

/// A second, independently configured server over the SAME simulated
/// sources as `w` — writes submitted through either server are visible
/// to reads on both. The differential matview cell compares a
/// materialized server against an uncached twin this way.
pub fn twin_server(w: &World, tune: impl FnOnce(ServerBuilder) -> ServerBuilder) -> AldspServer {
    tune(builder_over(w.db1.clone(), w.db2.clone(), w.rating.clone())).build()
}

/// [`world`] with a hook to tune the [`ServerBuilder`] before `build()`
/// — admission limits, memory budgets, source caps, PP-k settings.
pub fn world_tuned(n: usize, tune: impl FnOnce(ServerBuilder) -> ServerBuilder) -> World {
    let cat1 = customer_catalog();
    let cat2 = card_catalog();
    let mut db1 = Database::new();
    for t in cat1.tables() {
        db1.create_table(t.clone()).expect("fresh db");
    }
    let mut oid = 0;
    for i in 0..n {
        let cid = format!("C{i:04}");
        db1.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(&cid),
                SqlValue::str(["Jones", "Smith", "Chen"][i % 3]),
                if i % 7 == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::str(&format!("F{i}"))
                },
                SqlValue::Int(1000 + i as i64),
                SqlValue::str(&format!("{i:09}")),
            ],
        )
        .expect("generated row");
        for _ in 0..(i % 3) {
            oid += 1;
            db1.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(&cid),
                    SqlValue::Dec(Decimal::from_int((i as i64 % 50) + 1)),
                ],
            )
            .expect("generated row");
        }
    }
    let mut db2 = Database::new();
    for t in cat2.tables() {
        db2.create_table(t.clone()).expect("fresh db");
    }
    let mut ccn = 0;
    for i in 0..n {
        let cid = format!("C{i:04}");
        for _ in 0..(i % 2) {
            ccn += 1;
            db2.insert(
                "CREDIT_CARD",
                vec![
                    SqlValue::str(&format!("4000-{ccn:06}")),
                    SqlValue::str(&cid),
                ],
            )
            .expect("generated row");
        }
    }
    let ws_ns = "urn:ratingTypes";
    let wsin = ShapeBuilder::element(QName::new(ws_ns, "getRating"))
        .required("lName", AtomicType::String)
        .required("ssn", AtomicType::String)
        .build();
    let wsout = ShapeBuilder::element(QName::new(ws_ns, "getRatingResponse"))
        .required("getRatingResult", AtomicType::Integer)
        .build();
    let rating = Arc::new(SimulatedWebService::new("ratingWS").operation(
        "getRating",
        wsin.clone(),
        wsout.clone(),
        Arc::new(|req| {
            let ssn = req
                .child_elements(&QName::new("urn:ratingTypes", "ssn"))
                .next()
                .map(|x| x.string_value())
                .unwrap_or_default();
            let score = 600 + (ssn.bytes().map(u64::from).sum::<u64>() % 250) as i64;
            Ok(Node::element(
                QName::new("urn:ratingTypes", "getRatingResponse"),
                vec![],
                vec![Node::simple_element(
                    QName::new("urn:ratingTypes", "getRatingResult"),
                    AtomicValue::Integer(score),
                )],
            ))
        }),
    ));
    let db1 = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db1));
    let db2 = Arc::new(RelationalServer::new("db2", Dialect::Db2, db2));
    let server = tune(builder_over(db1.clone(), db2.clone(), rating.clone())).build();
    World {
        server,
        db1,
        db2,
        rating,
    }
}

/// The running example's standard registrations over already-built
/// sources (shared by [`world_tuned`] and [`twin_server`]).
fn builder_over(
    db1: Arc<RelationalServer>,
    db2: Arc<RelationalServer>,
    rating: Arc<SimulatedWebService>,
) -> ServerBuilder {
    let ws_ns = "urn:ratingTypes";
    let wsin = ShapeBuilder::element(QName::new(ws_ns, "getRating"))
        .required("lName", AtomicType::String)
        .required("ssn", AtomicType::String)
        .build();
    let wsout = ShapeBuilder::element(QName::new(ws_ns, "getRatingResponse"))
        .required("getRatingResult", AtomicType::Integer)
        .build();
    let (i2d, d2i) = aldsp::adaptors::native::int2date_pair();
    let opt_int = SequenceType::Seq(ItemType::Atomic(AtomicType::Integer), Occurrence::Optional);
    let opt_dt = SequenceType::Seq(ItemType::Atomic(AtomicType::DateTime), Occurrence::Optional);
    ServerBuilder::new()
        .relational_source(db1, &customer_catalog(), "urn:custDS")
        .expect("register db1")
        .relational_source(db2, &card_catalog(), "urn:ccDS")
        .expect("register db2")
        .web_service(
            &WebServiceDescription {
                name: "ratingWS".into(),
                namespace: "urn:ratingWS".into(),
                operations: vec![WebServiceOperation {
                    name: "getRating".into(),
                    input: wsin,
                    output: wsout,
                }],
            },
            rating,
        )
        .expect("register ws")
        .native_function(
            QName::new("urn:lib", "int2date"),
            opt_int.clone(),
            opt_dt.clone(),
            i2d,
        )
        .expect("register int2date")
        .native_function(QName::new("urn:lib", "date2int"), opt_dt, opt_int, d2i)
        .expect("register date2int")
        .inverse(
            QName::new("urn:lib", "int2date"),
            QName::new("urn:lib", "date2int"),
        )
}
