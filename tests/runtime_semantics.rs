//! Language-semantics integration tests: XQuery behaviors exercised end
//! to end through the server (builtins, comparisons, typeswitch,
//! quantifiers, ranges, casts, conditional construction details).

mod common;

use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::QueryRequest;
use common::{world, PROLOG};

fn run(w: &common::World, q: &str) -> String {
    let src = format!("{PROLOG}\n{q}");
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(Principal::new("demo", &[])))
        .unwrap_or_else(|e| panic!("query failed: {e}\n{q}"))
        .into_items();
    serialize_sequence(&out)
}

#[test]
fn string_builtins() {
    let w = world(1);
    assert_eq!(run(&w, r#"fn:upper-case("aBc")"#), "ABC");
    assert_eq!(run(&w, r#"fn:lower-case("aBc")"#), "abc");
    assert_eq!(run(&w, r#"fn:string-length("hello")"#), "5");
    assert_eq!(run(&w, r#"fn:substring("hello world", 7)"#), "world");
    assert_eq!(run(&w, r#"fn:substring("hello", 2, 3)"#), "ell");
    assert_eq!(run(&w, r#"fn:concat("a", "b", "c")"#), "abc");
    assert_eq!(run(&w, r#"fn:contains("haystack", "st")"#), "true");
    assert_eq!(run(&w, r#"fn:starts-with("haystack", "hay")"#), "true");
    assert_eq!(run(&w, r#"fn:starts-with("haystack", "stack")"#), "false");
}

#[test]
fn sequence_builtins() {
    let w = world(1);
    assert_eq!(run(&w, "count((1, 2, 3))"), "3");
    assert_eq!(run(&w, "count(())"), "0");
    assert_eq!(run(&w, "sum((1, 2, 3))"), "6");
    assert_eq!(run(&w, "avg((2, 4))"), "3");
    assert_eq!(run(&w, "min((3, 1, 2))"), "1");
    assert_eq!(run(&w, "max((3, 1, 2))"), "3");
    assert_eq!(run(&w, "empty(())"), "true");
    assert_eq!(run(&w, "exists(())"), "false");
    assert_eq!(run(&w, "subsequence((1,2,3,4,5), 2, 2)"), "2 3");
    assert_eq!(run(&w, "distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
    assert_eq!(run(&w, "abs(-7)"), "7");
}

#[test]
fn arithmetic_and_comparison_semantics() {
    let w = world(1);
    assert_eq!(run(&w, "1 + 2 * 3"), "7");
    assert_eq!(run(&w, "7 mod 3"), "1");
    // integer div yields decimal, per XQuery
    assert_eq!(run(&w, "1 div 2"), "0.5");
    // empty operand propagates
    assert_eq!(run(&w, "() + 1"), "");
    // value comparison on empty is empty → EBV false
    assert_eq!(run(&w, "if (() eq 1) then \"y\" else \"n\""), "n");
    // general comparison is existential
    assert_eq!(run(&w, "if ((1, 5) = (5, 9)) then \"y\" else \"n\""), "y");
    assert_eq!(run(&w, "if ((1, 5) != (1, 5)) then \"y\" else \"n\""), "y");
}

#[test]
fn range_and_quantifiers() {
    let w = world(1);
    assert_eq!(run(&w, "count(1 to 10)"), "10");
    assert_eq!(run(&w, "count(5 to 4)"), "0");
    assert_eq!(run(&w, "sum(1 to 4)"), "10");
    assert_eq!(
        run(
            &w,
            "if (some $x in (1,2,3) satisfies $x gt 2) then 1 else 0"
        ),
        "1"
    );
    assert_eq!(
        run(
            &w,
            "if (every $x in (1,2,3) satisfies $x gt 2) then 1 else 0"
        ),
        "0"
    );
    assert_eq!(
        run(&w, "if (every $x in () satisfies $x gt 2) then 1 else 0"),
        "1"
    );
}

#[test]
fn casts_and_type_predicates() {
    let w = world(1);
    assert_eq!(run(&w, r#"xs:integer("42") + 1"#), "43");
    assert_eq!(run(&w, r#"xs:date("2006-09-12")"#), "2006-09-12");
    assert_eq!(run(&w, r#""5" castable as xs:integer"#), "true");
    assert_eq!(run(&w, r#""abc" castable as xs:integer"#), "false");
    assert_eq!(run(&w, "5 instance of xs:integer"), "true");
    assert_eq!(run(&w, r#""x" instance of xs:integer"#), "false");
    assert_eq!(run(&w, "(1, 2) instance of xs:integer"), "false");
    assert_eq!(run(&w, "(1, 2) instance of xs:integer+"), "true");
}

#[test]
fn typeswitch_dispatch() {
    let w = world(1);
    let q = r#"
        for $v in (1, "two", <E>3</E>)
        return typeswitch ($v)
               case xs:integer return "int"
               case xs:string return "str"
               default return "other""#;
    assert_eq!(run(&w, q), "int str other");
}

#[test]
fn constructor_details() {
    let w = world(1);
    // adjacent atomics joined with a space
    assert_eq!(run(&w, "<X>{1, 2}</X>"), "<X>1 2</X>");
    // conditional attribute omitted when its value is empty
    assert_eq!(run(&w, r#"<X a?="{()}"/>"#), "<X/>");
    assert_eq!(run(&w, r#"<X a?="{5}"/>"#), r#"<X a="5"/>"#);
    // conditional element omitted on empty content
    assert_eq!(run(&w, "<X?>{()}</X>"), "");
    assert_eq!(run(&w, "(<A/>, <X?>{1}</X>)"), "<A/><X>1</X>");
    // mixed literal and enclosed attribute parts
    assert_eq!(run(&w, r#"<X a="v{1+1}w"/>"#), r#"<X a="v2w"/>"#);
    // nested constructors preserve order
    assert_eq!(run(&w, "<O><A/><B/>{<C/>}</O>"), "<O><A/><B/><C/></O>");
}

#[test]
fn positional_predicates() {
    let w = world(1);
    assert_eq!(run(&w, "(10, 20, 30)[2]"), "20");
    assert_eq!(run(&w, "(10, 20, 30)[5]"), "");
    let q = "for $x in (<E><V>1</V></E>, <E><V>2</V></E>) return $x[V eq 2]/V";
    assert_eq!(run(&w, q), "<V>2</V>");
}

#[test]
fn path_semantics_on_constructed_trees() {
    let w = world(1);
    let q = r#"
        let $doc := <root><a><b>1</b></a><a><b>2</b></a><c/></root>
        return ($doc/a/b, count($doc//b), $doc/c, $doc/a/@x)"#;
    assert_eq!(run(&w, q), "<b>1</b><b>2</b>2<c/>");
    // attribute steps
    let q = r#"let $e := <e id="7"><k id="8"/></e> return ($e/@id, $e/k/@id)"#;
    assert_eq!(run(&w, q), r#"id="7"id="8""#);
}

#[test]
fn error_paths_surface_cleanly() {
    let w = world(1);
    let user = Principal::new("demo", &[]);
    // static error: unknown function
    let err = w
        .server
        .execute(QueryRequest::new(&format!("{PROLOG} nosuch:fn()")).principal(user.clone()))
        .expect_err("unknown function");
    assert!(
        err.to_string().contains("unbound") || err.to_string().contains("undeclared"),
        "{err}"
    );
    // static error: undeclared variable
    let err = w
        .server
        .execute(QueryRequest::new(&format!("{PROLOG} $nope + 1")).principal(user.clone()))
        .expect_err("undeclared variable");
    assert!(err.to_string().contains("undeclared"), "{err}");
    // dynamic error: cast failure
    let err = w
        .server
        .execute(
            QueryRequest::new(&format!("{PROLOG} xs:integer(\"abc\")")).principal(user.clone()),
        )
        .expect_err("bad cast");
    assert!(err.to_string().contains("cast"), "{err}");
}

#[test]
fn deep_view_stacks_execute_correctly() {
    // five view layers with predicates at different levels
    let w = world(20);
    w.server
        .deploy(&format!(
            "{PROLOG}
             declare namespace v = \"urn:v\";
             declare function v:l1() as element(CUSTOMER)* {{ for $c in c:CUSTOMER() return $c }}
             ;
             declare function v:l2() as element(CUSTOMER)* {{ for $c in v:l1() return $c }};
             declare function v:l3() as element(CUSTOMER)* {{ v:l2()[LAST_NAME eq \"Smith\"] }};
             declare function v:l4() as element(CUSTOMER)* {{ for $c in v:l3() return $c }};
             declare function v:l5($id as xs:string) as element(CUSTOMER)* {{ v:l4()[CID eq $id] }};"
        ))
        .expect("deploys");
    let src = format!(
        "{PROLOG}
         declare namespace v = \"urn:v\";
         v:l5(\"C0004\")"
    );
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(Principal::new("demo", &[])))
        .expect("query")
        .into_items();
    let s = serialize_sequence(&out);
    assert!(s.contains("<CID>C0004</CID>") && s.contains("Smith"), "{s}");
    // the compiled plan pushed everything into one statement
    assert_eq!(
        w.db1.stats().roundtrips,
        1,
        "{:#?}",
        w.db1.stats().statements
    );
}
