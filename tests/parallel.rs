//! Morsel-driven parallel execution: the contract is that worker count
//! is invisible in the answer. Every query here runs at workers
//! {1, 2, 4} and the serialized outputs must be byte-identical — the
//! morsel merges (ordered concat for map tails, stable key-merge for
//! group tails, tie-left merge for sort tails) reproduce sequential
//! output exactly. On top of identity: the worker pool must shut down
//! cleanly under churn, and a 4-worker query must stay inside the same
//! single memory budget a sequential run gets.

mod common;

use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{ExecutionOptions, QueryRequest, QueryResponse, ServerError};
use common::{world, World, PROLOG};

fn demo() -> Principal {
    Principal::new("demo", &[])
}

/// Run `query` at the given worker count and morsel size. The compile
/// knobs stay at their defaults, which match the server's, so the
/// override reuses the cached plan — only the runtime fan-out changes.
fn run_at(
    w: &World,
    query: &str,
    workers: usize,
    morsel_size: usize,
) -> Result<QueryResponse, ServerError> {
    w.server.execute(
        QueryRequest::new(query).principal(demo()).execution(
            ExecutionOptions::new()
                .workers(workers)
                .morsel_size(morsel_size),
        ),
    )
}

/// The identity corpus: single-scan FLWORs with map, group, and sort
/// tails (the three parallel tails), plus shapes the planner must
/// *refuse* to parallelize — a pre-clustered group-by, a fully pushed
/// sort, a pushed join — which pin that the engagement gate changes
/// nothing when it stays closed. The `bool` says whether the plan is
/// expected to carry a parallel mark (middleware clauses survive
/// pushdown because of the `fn:` calls).
const CORPUS: &[(&str, bool)] = &[
    // map tail: computed let + a predicate over it
    (
        "for $o in c:ORDER()
         let $tag := fn:concat($o/CID, \"-\", $o/OID)
         where fn:string-length($tag) ge 6
         return <T>{ $tag }</T>",
        true,
    ),
    // map tail: predicates the SQL dialect won't take
    (
        "for $c in c:CUSTOMER()
         where fn:starts-with($c/LAST_NAME, \"J\") and $c/SINCE mod 2 eq 0
         return $c/CID",
        true,
    ),
    // map tail: nested FLWOR in the return body (inner scans run from
    // worker threads; ordered concat keeps the answer sequential)
    (
        "for $c in c:CUSTOMER()
         where $c/SINCE ge 1005
         return <C>{ $c/CID,
           for $o in c:ORDER() where $o/CID eq $c/CID return $o/OID }</C>",
        true,
    ),
    // group tail: computed (non-pushable) key, aggregate over groups
    (
        "for $o in c:ORDER()
         where $o/AMOUNT ge 3.00
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 3) as $k
         return <G>{ $k, fn:count($ids) }</G>",
        true,
    ),
    // sort tail: two specs, mixed directions, computed key
    (
        "for $o in c:ORDER()
         where $o/OID ge 2
         order by fn:substring($o/CID, 2, 3) descending, $o/OID ascending
         return <O>{ $o/OID }</O>",
        true,
    ),
    // not eligible: plain-column key — SQL pre-clusters the scan, and a
    // pre-clustered group-by needs the globally ordered stream
    (
        "for $c in c:CUSTOMER()
         let $cid := $c/CID
         group $cid as $ids by $c/LAST_NAME as $name
         return <G name=\"{$name}\">{ fn:count($ids) }</G>",
        false,
    ),
    // not eligible: the sort pushes into the SQL ORDER BY
    (
        "for $c in c:CUSTOMER()
         order by $c/LAST_NAME
         return $c/CID",
        false,
    ),
    // not eligible: two-source join collapses into one SQL region
    (
        "for $c in c:CUSTOMER(), $o in c:ORDER()
         where $c/CID eq $o/CID and $o/AMOUNT ge 40.00
         return <CO>{ $c/CID, $o/OID }</CO>",
        false,
    ),
];

/// Workers {1, 2, 4} × morsel sizes {1, 3} over the corpus: every
/// configuration serializes to the workers=1 bytes, and the eligible
/// queries actually fan out (morsels executed > 0) at every multi-
/// worker setting.
#[test]
fn worker_count_is_invisible_in_the_answer() {
    let w = world(40);
    for (q, eligible) in CORPUS {
        let query = format!("{PROLOG}\n{q}");
        let baseline = run_at(&w, &query, 1, 1024).expect("sequential run");
        let expected = serialize_sequence(baseline.items());
        for &(workers, morsel) in &[(2usize, 1usize), (4, 1), (4, 3)] {
            let resp = run_at(&w, &query, workers, morsel)
                .unwrap_or_else(|e| panic!("workers={workers} failed: {e}\n{q}"));
            assert_eq!(
                serialize_sequence(resp.items()),
                expected,
                "workers={workers} morsel_size={morsel} diverged on:\n{q}"
            );
            assert_eq!(
                resp.per_query_stats().morsels_executed > 0,
                *eligible,
                "engagement mismatch at workers={workers} morsel_size={morsel} on:\n{q}"
            );
        }
    }
}

/// Worker-count auto-detection (`workers(0)`) is still byte-identical;
/// it just resolves the count from the machine.
#[test]
fn auto_worker_count_matches_sequential() {
    let w = world(30);
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 5.00
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 1, 3) as $k
         return <G>{{ $k, fn:count($ids) }}</G>"
    );
    let expected = serialize_sequence(run_at(&w, &q, 1, 1024).expect("sequential").items());
    let auto = run_at(&w, &q, 0, 2).expect("auto workers");
    assert_eq!(serialize_sequence(auto.items()), expected);
}

/// Pool churn: servers created, hammered from several threads with
/// 4-worker queries, and dropped in a loop. The pool's shutdown path
/// (close flag + join on drop) must neither hang nor panic, and every
/// query must still produce the sequential answer.
#[test]
fn pool_shutdown_under_load_is_clean() {
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/OID ge 1
         order by fn:substring($o/CID, 2, 3) descending, $o/OID ascending
         return $o/OID"
    );
    for _ in 0..5 {
        let w = world(24);
        let expected = serialize_sequence(run_at(&w, &q, 1, 1024).expect("sequential").items());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..4 {
                        let resp = run_at(&w, &q, 4, 2).expect("parallel run");
                        assert_eq!(serialize_sequence(resp.items()), expected);
                    }
                });
            }
        });
        // dropping the world drops the runtime: shutdown + join here
        drop(w);
    }
}

/// Four workers share ONE memory budget — fan-out must not quadruple a
/// query's allowance. The buffering group-by that blows a 1 KiB budget
/// sequentially blows the same budget at workers=4, and with a roomy
/// budget the 4-worker answer matches the sequential one while staying
/// accounted.
#[test]
fn four_workers_share_a_single_memory_budget() {
    let w = world(50);
    // the substring key keeps the group-by (and its buffering) in the
    // middleware, eligible for fan-out; 50 buffered customers cannot
    // fit 1 KiB no matter how many workers buffer them
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         let $cid := $c/CID
         group $cid as $ids by fn:substring($c/LAST_NAME, 1, 10) as $name
         return <G name=\"{{$name}}\">{{ $ids }}</G>"
    );
    let exec = || ExecutionOptions::new().workers(4).morsel_size(4);
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(1024)
                .execution(exec()),
        )
        .expect_err("50 buffered tuples cannot fit 1 KiB, workers or not");
    assert!(err.is_budget_exceeded(), "typed budget error: {err}");

    let expected = serialize_sequence(run_at(&w, &q, 1, 1024).expect("sequential").items());
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(64 * 1024)
                .execution(exec()),
        )
        .expect("64 KiB is plenty at any worker count");
    assert_eq!(serialize_sequence(resp.items()), expected);
    let stats = resp.per_query_stats();
    assert!(stats.peak_memory_bytes > 0, "peak accounted");
    assert!(
        stats.peak_memory_bytes <= 64 * 1024,
        "peak {} exceeds the promised budget",
        stats.peak_memory_bytes
    );
    assert!(stats.morsels_executed > 0, "the pool actually engaged");
    assert!(stats.worker_busy_ns > 0, "busy time accounted");
}
