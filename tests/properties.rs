//! Property-based tests: data-model invariants and — most importantly —
//! *optimizer semantics preservation*: for randomized data and
//! parameters, the fully optimized, SQL-pushing pipeline must produce
//! exactly what a plain Rust reference computation produces.

mod common;

use aldsp::relational::{Database, Dialect, RelationalServer, SqlValue};
use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::node::Node;
use aldsp::xdm::tokens::{decode_tuple, encode_tuple, extract_field, Token, TupleRepr};
use aldsp::xdm::value::{AtomicValue, Date, Decimal};
use aldsp::xdm::{xml, QName};
use aldsp::{QueryRequest, ServerBuilder};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn demo() -> Principal {
    Principal::new("demo", &[])
}

// ---- data-model invariants ---------------------------------------------------

proptest! {
    #[test]
    fn decimal_display_parse_roundtrip(units in -1_000_000_000_000i64..1_000_000_000_000i64) {
        let d = Decimal(units as i128);
        let s = d.to_string();
        let back = Decimal::parse(&s).expect("own display parses");
        prop_assert_eq!(d, back);
    }

    #[test]
    fn date_roundtrip(days in -40_000i32..40_000i32) {
        let d = Date(days);
        let s = d.to_string();
        let back = Date::parse(&s).expect("own display parses");
        prop_assert_eq!(d, back);
    }

    #[test]
    fn decimal_addition_commutes(a in -1_000_000i64..1_000_000i64, b in -1_000_000i64..1_000_000i64) {
        let (x, y) = (Decimal(a as i128), Decimal(b as i128));
        prop_assert_eq!(x.add(y), y.add(x));
        prop_assert_eq!(x.add(y).sub(y), x);
    }

    #[test]
    fn xml_text_roundtrip(content in "[a-zA-Z0-9<>&\"' ]{0,40}") {
        let n = Node::simple_element(QName::local("T"), AtomicValue::str(&content));
        let serialized = xml::serialize(&n);
        let parsed = xml::parse(&serialized).expect("serializer output parses");
        prop_assert_eq!(parsed.children()[0].string_value(), content);
    }

    #[test]
    fn tuple_representations_agree(
        fields in prop::collection::vec(-1000i64..1000i64, 1..8),
        pick in 0usize..8
    ) {
        let streams: Vec<Vec<Token>> = fields
            .iter()
            .map(|i| vec![Token::Atomic(AtomicValue::Integer(*i))])
            .collect();
        let idx = pick % fields.len();
        let mut decoded = Vec::new();
        for repr in [TupleRepr::Stream, TupleRepr::SingleToken, TupleRepr::Array] {
            let enc = encode_tuple(&streams, repr);
            prop_assert_eq!(&decode_tuple(&enc).expect("round trip"), &streams);
            prop_assert_eq!(
                extract_field(&enc, idx).expect("field access"),
                streams[idx].clone()
            );
            decoded.push(decode_tuple(&enc).expect("round trip"));
        }
        prop_assert_eq!(&decoded[0], &decoded[1]);
        prop_assert_eq!(&decoded[1], &decoded[2]);
    }
}

// ---- optimizer semantics preservation ------------------------------------------

/// Random customer rows: (last_name_idx, amount, has_card).
#[derive(Debug, Clone)]
struct Row {
    last: usize,
    since: i64,
    orders: Vec<i64>,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    (
        0usize..4,
        0i64..10_000,
        prop::collection::vec(1i64..500, 0..5),
    )
        .prop_map(|(last, since, orders)| Row {
            last,
            since,
            orders,
        })
}

const LASTS: [&str; 4] = ["Jones", "Smith", "Chen", "Garcia"];

fn build_server(rows: &[Row]) -> (aldsp::AldspServer, Arc<RelationalServer>) {
    let cat = common::customer_catalog();
    let mut db = Database::new();
    for t in cat.tables() {
        db.create_table(t.clone()).expect("fresh db");
    }
    let mut oid = 0;
    for (i, r) in rows.iter().enumerate() {
        db.insert(
            "CUSTOMER",
            vec![
                SqlValue::str(&format!("C{i:04}")),
                SqlValue::str(LASTS[r.last]),
                SqlValue::Null,
                SqlValue::Int(r.since),
                SqlValue::Null,
            ],
        )
        .expect("row");
        for amt in &r.orders {
            oid += 1;
            db.insert(
                "ORDER",
                vec![
                    SqlValue::Int(oid),
                    SqlValue::str(&format!("C{i:04}")),
                    SqlValue::Dec(Decimal::from_int(*amt)),
                ],
            )
            .expect("row");
        }
    }
    let server_db = Arc::new(RelationalServer::new("db1", Dialect::Oracle, db));
    let server = ServerBuilder::new()
        .relational_source(server_db.clone(), &cat, "urn:custDS")
        .expect("register")
        .build();
    (server, server_db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pushed WHERE ≡ reference filter.
    #[test]
    fn filter_pushdown_preserves_semantics(
        rows in prop::collection::vec(row_strategy(), 0..20),
        threshold in 0i64..10_000
    ) {
        let (server, _) = build_server(&rows);
        let q = r#"declare namespace c = "urn:custDS";
               declare variable $t as xs:integer external;
               for $c in c:CUSTOMER()
               where $c/SINCE ge $t
               return $c/CID"#;
        let out = server
            .execute(
                QueryRequest::new(q)
                    .principal(demo())
                    .bind("t", vec![Item::int(threshold)]),
            )
            .expect("executes")
            .into_items();
        let expected = rows.iter().filter(|r| r.since >= threshold).count();
        prop_assert_eq!(out.len(), expected);
    }

    /// Pushed GROUP BY + COUNT ≡ reference hash aggregation.
    #[test]
    fn group_count_pushdown_preserves_semantics(
        rows in prop::collection::vec(row_strategy(), 0..20)
    ) {
        let (server, _) = build_server(&rows);
        let q = r#"declare namespace c = "urn:custDS";
                   for $c in c:CUSTOMER()
                   group $c as $p by $c/LAST_NAME as $l
                   return <G><N>{$l}</N><K>{count($p)}</K></G>"#;
        let out = server
            .execute(QueryRequest::new(q).principal(demo()))
            .expect("executes")
            .into_items();
        let mut expected: HashMap<&str, usize> = HashMap::new();
        for r in &rows {
            *expected.entry(LASTS[r.last]).or_default() += 1;
        }
        prop_assert_eq!(out.len(), expected.len());
        for item in &out {
            let node = item.as_node().expect("group element");
            let name = node
                .child_elements(&QName::local("N"))
                .next()
                .expect("name")
                .string_value();
            let count: usize = node
                .child_elements(&QName::local("K"))
                .next()
                .expect("count")
                .string_value()
                .parse()
                .expect("integer");
            prop_assert_eq!(expected.get(name.as_str()).copied(), Some(count));
        }
    }

    /// The outer-join + clustered-group re-nesting (Table 1(c)'s plan)
    /// ≡ reference per-customer nesting, including empty groups.
    #[test]
    fn outer_join_renesting_preserves_semantics(
        rows in prop::collection::vec(row_strategy(), 0..16)
    ) {
        let (server, db) = build_server(&rows);
        let q = r#"declare namespace c = "urn:custDS";
                   for $c in c:CUSTOMER()
                   return <X><ID>{fn:data($c/CID)}</ID><OIDS>{
                     for $o in c:ORDER() where $o/CID eq $c/CID return $o/OID
                   }</OIDS></X>"#;
        let out = server
            .execute(QueryRequest::new(q).principal(demo()))
            .expect("executes")
            .into_items();
        prop_assert_eq!(out.len(), rows.len());
        // one SQL statement total (the merged LEFT OUTER JOIN)
        prop_assert_eq!(db.stats().roundtrips, 1);
        for (i, item) in out.iter().enumerate() {
            let node = item.as_node().expect("element");
            let id = node
                .child_elements(&QName::local("ID"))
                .next()
                .expect("id")
                .string_value();
            prop_assert_eq!(id, format!("C{i:04}"));
            let oids = node
                .child_elements(&QName::local("OIDS"))
                .next()
                .expect("oids")
                .all_child_elements()
                .count();
            prop_assert_eq!(oids, rows[i].orders.len());
        }
    }

    /// fn:subsequence pushed as pagination ≡ middleware subsequence.
    #[test]
    fn pagination_pushdown_preserves_semantics(
        rows in prop::collection::vec(row_strategy(), 0..30),
        start in 1i64..12,
        len in 0i64..12
    ) {
        let (server, _) = build_server(&rows);
        let q = format!(
            r#"declare namespace c = "urn:custDS";
               let $cs := for $c in c:CUSTOMER() order by $c/CID return $c/CID
               return subsequence($cs, {start}, {len})"#
        );
        let out = server
            .execute(QueryRequest::new(&q).principal(demo()))
            .expect("executes")
            .into_items();
        let total = rows.len() as i64;
        let expected = ((start + len - 1).min(total) - (start - 1).max(0)).max(0) as usize;
        prop_assert_eq!(out.len(), expected);
    }

    /// Aggregate pushdown (SUM) ≡ reference sum, exactly (decimals).
    #[test]
    fn sum_aggregation_preserves_exactness(
        rows in prop::collection::vec(row_strategy(), 1..12)
    ) {
        let (server, _) = build_server(&rows);
        let q = r#"declare namespace c = "urn:custDS";
                   for $c in c:CUSTOMER()
                   return <S>{ sum(for $o in c:ORDER() where $o/CID eq $c/CID
                                   return $o/AMOUNT) }</S>"#;
        let out = server
            .execute(QueryRequest::new(q).principal(demo()))
            .expect("executes")
            .into_items();
        for (i, item) in out.iter().enumerate() {
            let s = item.as_node().expect("element").string_value();
            let expected: i64 = rows[i].orders.iter().sum();
            if rows[i].orders.is_empty() {
                prop_assert_eq!(s, "");
            } else {
                prop_assert_eq!(s, expected.to_string());
            }
        }
    }
}
