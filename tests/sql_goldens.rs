//! Golden tests for Tables 1 and 2 of the paper, end to end: each
//! XQuery snippet compiles through the full server, the generated SQL is
//! checked against the paper's shape, *and* the query executes against
//! the simulated backend with the expected results.

mod common;

use aldsp::compiler::collect_sql_regions;
use aldsp::relational::{render_select, Dialect};
use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::QueryRequest;
use common::{world, PROLOG};

fn demo() -> Principal {
    Principal::new("demo", &[])
}

/// Compile + run, returning (first generated SQL in Oracle syntax,
/// serialized result).
fn compile_and_run(w: &common::World, query: &str) -> (String, String) {
    let src = format!("{PROLOG}\n{query}");
    let plan = w
        .server
        .compiler()
        .compile_query(&src)
        .unwrap_or_else(|d| panic!("compile failed: {d:?}"));
    let regions = collect_sql_regions(&plan.plan);
    assert!(!regions.is_empty(), "no SQL pushed for:\n{query}");
    let sql = render_select(&regions[0].select, Dialect::Oracle);
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(demo()))
        .expect("execution")
        .into_items();
    (sql, serialize_sequence(&out))
}

#[test]
fn table_1a_simple_select_project() {
    let w = world(5);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER() where $c/CID eq "C0001" return $c/FIRST_NAME"#,
    );
    assert_eq!(
        sql,
        "SELECT t1.\"FIRST_NAME\" AS c1\nFROM \"CUSTOMER\" t1\nWHERE t1.\"CID\" = 'C0001'"
    );
    assert_eq!(out, "<FIRST_NAME>F1</FIRST_NAME>");
}

#[test]
fn table_1b_inner_join() {
    let w = world(6);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER(), $o in c:ORDER()
           where $c/CID eq $o/CID
           return <CUSTOMER_ORDER>{ $c/CID, $o/OID }</CUSTOMER_ORDER>"#,
    );
    assert!(
        sql.contains("FROM \"CUSTOMER\" t1\nJOIN \"ORDER\" t2\nON t1.\"CID\" = t2.\"CID\""),
        "{sql}"
    );
    // customers 1,2,4,5 have i%3 orders → 1+2+1+2 = 6 pairs
    assert_eq!(out.matches("<CUSTOMER_ORDER>").count(), 6);
}

#[test]
fn table_1c_left_outer_join() {
    let w = world(4);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           return <CUSTOMER>{
             $c/CID,
             for $o in c:ORDER() where $c/CID eq $o/CID return $o/OID
           }</CUSTOMER>"#,
    );
    assert!(sql.contains("LEFT OUTER JOIN \"ORDER\""), "{sql}");
    // all four customers appear, including C0000 with no orders
    assert_eq!(out.matches("<CUSTOMER>").count(), 4);
    assert!(
        out.contains("<CUSTOMER><CID>C0000</CID></CUSTOMER>"),
        "{out}"
    );
}

#[test]
fn table_1d_if_then_else_case() {
    let w = world(3);
    let (sql, _) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           where (if ($c/CID eq "C0000") then $c/FIRST_NAME else $c/LAST_NAME) eq "Smith"
           return $c/CID"#,
    );
    assert!(
        sql.contains(
            "CASE\nWHEN t1.\"CID\" = 'C0000'\nTHEN t1.\"FIRST_NAME\"\nELSE t1.\"LAST_NAME\"\nEND"
        ),
        "{sql}"
    );
}

#[test]
fn table_1e_group_by_with_aggregation() {
    let w = world(9);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           group $c as $p by $c/LAST_NAME as $l
           return <CUSTOMER>{ $l, count($p) }</CUSTOMER>"#,
    );
    assert!(sql.contains("COUNT(*)"), "{sql}");
    assert!(sql.contains("GROUP BY t1.\"LAST_NAME\""), "{sql}");
    // three last names, three each
    assert_eq!(out.matches("<CUSTOMER>").count(), 3);
    assert!(out.contains("Jones 3") || out.contains("Jones3"), "{out}");
}

#[test]
fn table_1f_group_by_distinct() {
    let w = world(9);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           group by $c/LAST_NAME as $l
           return $l"#,
    );
    assert!(sql.starts_with("SELECT DISTINCT t1.\"LAST_NAME\""), "{sql}");
    // three distinct names
    let names: Vec<&str> = out.split_whitespace().collect();
    assert_eq!(names.len(), 3, "{out}");
}

#[test]
fn table_2g_outer_join_with_aggregation() {
    let w = world(4);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           return <CUSTOMER>{
             $c/CID,
             <ORDERS>{
               count(for $o in c:ORDER() where $o/CID eq $c/CID return $o)
             }</ORDERS>
           }</CUSTOMER>"#,
    );
    assert!(sql.contains("LEFT OUTER JOIN \"ORDER\""), "{sql}");
    assert!(sql.contains("COUNT("), "{sql}");
    assert!(sql.contains("GROUP BY"), "{sql}");
    // zero counts included (C0000 and C0003 have 0 orders)
    assert!(
        out.contains("<CUSTOMER><CID>C0000</CID><ORDERS>0</ORDERS></CUSTOMER>"),
        "{out}"
    );
    assert!(
        out.contains("<CUSTOMER><CID>C0002</CID><ORDERS>2</ORDERS></CUSTOMER>"),
        "{out}"
    );
}

#[test]
fn table_2h_semi_join_exists() {
    let w = world(5);
    let (sql, out) = compile_and_run(
        &w,
        r#"for $c in c:CUSTOMER()
           where some $o in c:ORDER() satisfies $c/CID eq $o/CID
           return $c/CID"#,
    );
    assert!(
        sql.contains(
            "WHERE EXISTS(\nSELECT 1 AS c1\nFROM \"ORDER\" t2\nWHERE t1.\"CID\" = t2.\"CID\")"
        ),
        "{sql}"
    );
    // only customers with ≥1 order: C0001, C0002, C0004
    assert_eq!(out.matches("<CID>").count(), 3, "{out}");
}

#[test]
fn table_2i_subsequence_rownum_pagination() {
    let w = world(30);
    let src = format!(
        "{PROLOG}
         let $cs :=
           for $c in c:CUSTOMER()
           let $oc := count(for $o in c:ORDER() where $c/CID eq $o/CID return $o)
           order by $oc descending
           return <CUSTOMER>{{ fn:data($c/CID), $oc }}</CUSTOMER>
         return subsequence($cs, 10, 20)"
    );
    let plan = w.server.compiler().compile_query(&src).expect("compiles");
    let regions = collect_sql_regions(&plan.plan);
    let sql = render_select(&regions[0].select, Dialect::Oracle);
    // the paper's nested-ROWNUM pattern
    assert!(sql.contains("ROWNUM"), "{sql}");
    assert!(sql.contains("ORDER BY COUNT("), "{sql}");
    assert!(sql.contains("DESC"), "{sql}");
    assert!(
        sql.contains("(t_out.rn >= 10) AND (t_out.rn < 30)"),
        "{sql}"
    );
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(demo()))
        .expect("executes")
        .into_items();
    assert_eq!(
        out.len(),
        20,
        "subsequence(.., 10, 20) returns 20 instances"
    );
}

#[test]
fn dialect_variants_render_differently() {
    // the same logical query renders per-vendor (§4.3): DB2 pagination
    // uses FETCH FIRST, SQL92 refuses to push it at all
    let w = world(10);
    let src = format!(
        "{PROLOG}
         let $cs := for $c in c:CUSTOMER() order by $c/CID return $c/CID
         return subsequence($cs, 1, 5)"
    );
    let plan = w.server.compiler().compile_query(&src).expect("compiles");
    let regions = collect_sql_regions(&plan.plan);
    let oracle = render_select(&regions[0].select, Dialect::Oracle);
    let db2 = render_select(&regions[0].select, Dialect::Db2);
    assert!(oracle.contains("ROWNUM"), "{oracle}");
    assert!(db2.contains("FETCH FIRST 5 ROWS ONLY"), "{db2}");
}

#[test]
fn inverse_function_parameter_pushdown() {
    // §4.4's worked example, end to end
    let w = world(10);
    let src = format!(
        "{PROLOG}
         declare variable $start as xs:dateTime external;
         for $c in c:CUSTOMER()
         where lib:int2date($c/SINCE) gt $start
         return $c/CID"
    );
    let plan = w.server.compiler().compile_query(&src).expect("compiles");
    let regions = collect_sql_regions(&plan.plan);
    let sql = render_select(&regions[0].select, Dialect::Oracle);
    assert!(sql.contains("WHERE t1.\"SINCE\" > ?"), "{sql}");
    // SINCE = 1000+i; start=1005 → customers 6..9 qualify
    use aldsp::xdm::item::Item;
    use aldsp::xdm::value::{AtomicValue, DateTime};
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(demo()).bind(
            "start",
            vec![Item::Atomic(AtomicValue::DateTime(DateTime(1005)))],
        ))
        .expect("executes")
        .into_items();
    assert_eq!(out.len(), 4, "{}", serialize_sequence(&out));
}
