//! The workload governor end to end: admission control (shedding and
//! priority), deadlines (fast abort of slow roundtrips, mid-stream
//! cutoff), per-source concurrency caps under thread stress, and
//! memory budgets on blocking operators.
//!
//! Latencies are simulated ([`LatencyModel`]), so each test states its
//! timeline explicitly: slots are held for a known duration and the
//! assertions leave generous margins around it.

mod common;

use aldsp::relational::LatencyModel;
use aldsp::security::Principal;
use aldsp::{ExecutionOptions, Priority, QueryRequest, TraceLevel};
use common::{world, world_tuned, PROLOG};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

fn demo() -> Principal {
    Principal::new("demo", &[])
}

/// One customer-scan roundtrip to db1.
fn scan_query() -> String {
    format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID")
}

/// Admission at concurrency 1 with a 2-deep queue: while one query
/// holds the slot, a batch and an interactive request queue (the
/// interactive one jumps ahead), and a fourth is shed immediately with
/// a typed `Overloaded` error.
#[test]
fn admission_sheds_overflow_and_prefers_interactive() {
    let w = world_tuned(6, |b| b.admission(1, 2));
    w.db1.set_latency(LatencyModel::lan(100_000)); // 100 ms per roundtrip
    let q = scan_query();
    let order: Mutex<Vec<&str>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        s.spawn(|| {
            // holds the single slot for ~100 ms
            w.server
                .execute(QueryRequest::new(&q).principal(demo()))
                .expect("slot holder");
            order.lock().unwrap().push("holder");
        });
        std::thread::sleep(Duration::from_millis(25));
        s.spawn(|| {
            let resp = w
                .server
                .execute(
                    QueryRequest::new(&q)
                        .principal(demo())
                        .priority(Priority::Batch),
                )
                .expect("queued batch query");
            order.lock().unwrap().push("batch");
            assert!(
                resp.per_query_stats().admission_wait_ns > 0,
                "queued query reports its admission wait"
            );
        });
        std::thread::sleep(Duration::from_millis(25));
        s.spawn(|| {
            w.server
                .execute(QueryRequest::new(&q).principal(demo()))
                .expect("queued interactive query");
            order.lock().unwrap().push("interactive");
        });
        std::thread::sleep(Duration::from_millis(25));
        // slot busy + queue full (batch + interactive) → immediate shed
        let t0 = Instant::now();
        let err = w
            .server
            .execute(QueryRequest::new(&q).principal(demo()))
            .expect_err("queue is full");
        assert!(err.is_overloaded(), "typed shed error, got: {err}");
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "shedding does not wait for the queue to drain"
        );
    });
    assert_eq!(
        *order.lock().unwrap(),
        vec!["holder", "interactive", "batch"],
        "interactive admitted ahead of the earlier-queued batch request"
    );
    let gov = w.server.governor_stats();
    assert_eq!(gov.shed, 1);
    assert_eq!(gov.admitted, 3);
    assert_eq!(gov.queue_peak, 2);
    // the governor's counters are mirrored into the server-wide stats
    let stats = w.server.stats();
    assert_eq!(stats.queries_shed, 1);
    assert_eq!(stats.admission_queue_peak, 2);
    assert!(stats.admission_wait_ns > 0);
}

/// The acceptance scenario: concurrency 4, queue 8, 32 simultaneous
/// clients. No query ever observes more than 4 in-flight peers at the
/// source, the excess is shed with `Overloaded`, and the governor's
/// ledger adds up.
#[test]
fn thirty_two_clients_against_four_slots() {
    let w = world_tuned(6, |b| b.admission(4, 8));
    w.db1.set_latency(LatencyModel::lan(10_000)); // 10 ms per roundtrip
    let q = scan_query();
    let barrier = Barrier::new(32);
    let (mut ok, mut shed) = (0u64, 0u64);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..32)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    w.server.execute(QueryRequest::new(&q).principal(demo()))
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("no panics") {
                Ok(_) => ok += 1,
                Err(e) => {
                    assert!(e.is_overloaded(), "only typed shedding, got: {e}");
                    shed += 1;
                }
            }
        }
    });
    assert_eq!(ok + shed, 32);
    assert!(shed >= 1, "32 clients into 4+8 slots must shed");
    assert!(ok >= 12, "4 running + 8 queued are served, never shed");
    assert!(
        w.db1.stats().peak_inflight <= 4,
        "admission bounds source-level concurrency: peak {}",
        w.db1.stats().peak_inflight
    );
    let gov = w.server.governor_stats();
    assert_eq!(gov.admitted, ok);
    assert_eq!(gov.shed, shed);
    assert_eq!(w.server.stats().queries_shed, shed);
}

/// A 10 ms deadline against a 50 ms source: the roundtrip's simulated
/// latency is interrupted at the deadline instead of ridden out, so
/// the typed error returns in well under the source latency.
#[test]
fn deadline_interrupts_slow_roundtrip() {
    let w = world(6);
    w.db1.set_latency(LatencyModel::lan(50_000)); // 50 ms per roundtrip
    let q = scan_query();
    let t0 = Instant::now();
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .deadline(Duration::from_millis(10)),
        )
        .expect_err("cannot finish in 10 ms");
    let elapsed = t0.elapsed();
    assert!(err.is_deadline_exceeded(), "typed deadline error: {err}");
    assert!(
        elapsed < Duration::from_millis(20),
        "abandoned the roundtrip at the deadline, not after it: {elapsed:?}"
    );
    assert_eq!(
        w.db1.stats().roundtrips,
        1,
        "the statement did reach the source before the abort"
    );
}

/// A deadline hitting mid-stream: a PP-k block join delivers the
/// early blocks, then the stream ends with `DeadlineExceeded` — and
/// the remaining block roundtrips to db2 are never issued.
#[test]
fn deadline_stops_streaming_mid_flight() {
    let w = world_tuned(60, |b| {
        b.ppk_block_size(5)
            .execution(ExecutionOptions::new().ppk_prefetch_depth(0))
    });
    w.db2.set_latency(LatencyModel::lan(30_000)); // 30 ms per block fetch
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         return <P>{{ $c/CID,
           <CARDS>{{ for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN }}</CARDS> }}</P>"
    );
    let mut delivered = 0u64;
    let mut sink = |_item| {
        delivered += 1;
        true
    };
    let err = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .deadline(Duration::from_millis(80))
                .stream_to(&mut sink),
        )
        .expect_err("12 blocks x 30 ms cannot finish in 80 ms");
    assert!(err.is_deadline_exceeded(), "typed deadline error: {err}");
    assert!(delivered > 0, "early blocks streamed out before the cutoff");
    assert!(delivered < 60, "the stream was cut short");
    let blocks = w.db2.stats().roundtrips;
    assert!(
        (1..12).contains(&blocks),
        "later block fetches were never issued: {blocks} of 12"
    );
}

/// A buffering (sorted-mode) group-by charges its hash-table tuples
/// against the request's memory budget and fails typed when it blows
/// the cap; a roomier budget lets the same query through and reports
/// its peak.
#[test]
fn group_by_respects_memory_budget() {
    let w = world(50);
    // LAST_NAME cycles Jones/Smith/Chen over CIDs, so this group-by is
    // not pre-clustered: it buffers all 50 customers (256 B each).
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         let $cid := $c/CID
         group $cid as $ids by $c/LAST_NAME as $name
         return <G name=\"{{$name}}\">{{ $ids }}</G>"
    );
    let err = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()).memory_budget(1024))
        .expect_err("50 buffered tuples cannot fit 1 KiB");
    assert!(err.is_budget_exceeded(), "typed budget error: {err}");

    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .memory_budget(64 * 1024),
        )
        .expect("64 KiB is plenty");
    assert_eq!(resp.items().len(), 3, "Jones, Smith, Chen");
    assert!(
        resp.per_query_stats().peak_memory_bytes > 0,
        "the operator's high-water mark lands in per-query stats"
    );
}

/// Eight threads hammering a source capped at 2 concurrent roundtrips:
/// the backend never sees more than 2 statements in flight, and the
/// blocked threads' gate waits are accounted.
#[test]
fn source_cap_bounds_backend_concurrency() {
    let w = world_tuned(20, |b| b.source_concurrency_cap(2).admission(16, 16));
    w.db1.set_latency(LatencyModel::lan(5_000)); // 5 ms per roundtrip
    let q = scan_query();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..2 {
                    w.server
                        .execute(QueryRequest::new(&q).principal(demo()))
                        .expect("under the admission limit");
                }
            });
        }
    });
    let peak = w.db1.stats().peak_inflight;
    assert!(
        (1..=2).contains(&peak),
        "gate caps the source at 2 in-flight, saw {peak}"
    );
    assert!(
        w.server.stats().permit_wait_ns > 0,
        "6 of 8 threads had to wait at the gate"
    );
}

/// EXPLAIN carries the workload terms the query would run under; an
/// ungoverned request's plan text is unchanged.
#[test]
fn explain_annotates_governor_terms() {
    let w = world_tuned(6, |b| b.admission(4, 8).default_memory_budget(8192));
    let q = scan_query();
    let explain = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .priority(Priority::Batch)
                .deadline(Duration::from_secs(2))
                .memory_budget(2048)
                .explain_only(),
        )
        .expect("explain only")
        .into_plan_explain()
        .expect("explain requested");
    assert!(explain.contains("-- governor: priority=batch"), "{explain}");
    assert!(explain.contains("deadline=2s"), "{explain}");
    assert!(explain.contains("mem-cap=2048B"), "{explain}");
    assert!(explain.contains("admission=4+8q"), "{explain}");

    // ungoverned server, ungoverned request → no header at all
    let w2 = world(6);
    let plain = w2
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .trace(TraceLevel::Operators),
        )
        .expect("traced run")
        .into_plan_explain()
        .expect("trace implies explain");
    assert!(!plain.contains("governor"), "{plain}");
}
