//! PR 4 safety net: slot-resolved execution must be item-for-item
//! identical to the seed (name-resolved) semantics. The goldens below
//! were captured from the pre-slot engine on the running-example world
//! and cover the binder shapes the frame-layout pass must get right:
//! source-level shadowing (uniquified before layout), typeswitch case
//! variables, quantified binders, positional `at` variables, group-by
//! aliases, and order-by over bound tuples.

mod common;

use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::QueryRequest;
use common::{world, PROLOG};
use proptest::prelude::*;

/// The binder-shape corpus: every query exercises at least one binding
/// form whose resolution moved from name lookup to slot load.
const CORPUS: &[(&str, &str)] = &[
    (
        "shadowed_let",
        r#"for $c in c:CUSTOMER()
           let $x := $c/CID
           let $x := fn:concat($x, "-x")
           return <R>{ $x }</R>"#,
    ),
    (
        "shadowed_for",
        r#"for $x in (1, 2, 3)
           for $x in ($x, $x * 10)
           return $x"#,
    ),
    (
        "typeswitch_case_vars",
        r#"for $v in (1, "two", <E>3</E>)
           return typeswitch ($v)
                  case $i as xs:integer return $i + 1
                  case $s as xs:string return fn:concat($s, "!")
                  default $d return <D>{ $d }</D>"#,
    ),
    (
        "quantified_some",
        r#"for $c in c:CUSTOMER()
           where some $o in c:ORDER() satisfies $c/CID eq $o/CID
           return $c/CID"#,
    ),
    (
        "quantified_every",
        r#"for $c in c:CUSTOMER()
           where every $o in c:ORDER() satisfies $o/AMOUNT ge 1.00
           return $c/CID"#,
    ),
    (
        "positional_at",
        r#"for $x at $i in ("a", "b", "c")
           return <P i="{$i}">{ $x }</P>"#,
    ),
    (
        "middleware_group",
        r#"for $o in c:ORDER()
           let $oid := $o/OID
           group $oid as $ids by fn:substring($o/CID, 1, 4) as $k
           return <G k="{$k}">{ fn:count($ids) }</G>"#,
    ),
    (
        "order_by_bound_tuples",
        r#"for $c in c:CUSTOMER()
           let $n := $c/LAST_NAME
           order by $n, $c/CID descending
           return <O>{ $n, $c/CID }</O>"#,
    ),
    (
        "nested_join",
        r#"for $c in c:CUSTOMER()
           return <C>{ $c/CID,
             for $o in c:ORDER() where $o/CID eq $c/CID return <O>{ $o/OID }</O>
           }</C>"#,
    ),
];

/// Seed-engine outputs, captured before the slot-frame refactor, at
/// world sizes 1 / 7 / 13 (chosen so FIRST_NAME nulls, empty order
/// sets, and multi-group keys all occur).
const GOLDENS: &[(usize, &str, &str)] = &[
    (1, "shadowed_let", "<R>C0000-x</R>"),
    (1, "shadowed_for", "1 10 2 20 3 30"),
    (1, "typeswitch_case_vars", "2 two!<D><E>3</E></D>"),
    (1, "quantified_some", ""),
    (1, "quantified_every", "<CID>C0000</CID>"),
    (
        1,
        "positional_at",
        "<P i=\"1\">a</P><P i=\"2\">b</P><P i=\"3\">c</P>",
    ),
    (1, "middleware_group", ""),
    (
        1,
        "order_by_bound_tuples",
        "<O><LAST_NAME>Jones</LAST_NAME><CID>C0000</CID></O>",
    ),
    (1, "nested_join", "<C><CID>C0000</CID></C>"),
    (
        7,
        "shadowed_let",
        "<R>C0000-x</R><R>C0001-x</R><R>C0002-x</R><R>C0003-x</R><R>C0004-x</R><R>C0005-x</R><R>C0006-x</R>",
    ),
    (7, "shadowed_for", "1 10 2 20 3 30"),
    (7, "typeswitch_case_vars", "2 two!<D><E>3</E></D>"),
    (
        7,
        "quantified_some",
        "<CID>C0001</CID><CID>C0002</CID><CID>C0004</CID><CID>C0005</CID>",
    ),
    (
        7,
        "quantified_every",
        "<CID>C0000</CID><CID>C0001</CID><CID>C0002</CID><CID>C0003</CID><CID>C0004</CID><CID>C0005</CID><CID>C0006</CID>",
    ),
    (
        7,
        "positional_at",
        "<P i=\"1\">a</P><P i=\"2\">b</P><P i=\"3\">c</P>",
    ),
    (7, "middleware_group", "<G k=\"C000\">6</G>"),
    (
        7,
        "order_by_bound_tuples",
        "<O><LAST_NAME>Chen</LAST_NAME><CID>C0005</CID></O><O><LAST_NAME>Chen</LAST_NAME><CID>C0002</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0006</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0003</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0000</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0004</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0001</CID></O>",
    ),
    (
        7,
        "nested_join",
        "<C><CID>C0000</CID></C><C><CID>C0001</CID><O><OID>1</OID></O></C><C><CID>C0002</CID><O><OID>2</OID></O><O><OID>3</OID></O></C><C><CID>C0003</CID></C><C><CID>C0004</CID><O><OID>4</OID></O></C><C><CID>C0005</CID><O><OID>5</OID></O><O><OID>6</OID></O></C><C><CID>C0006</CID></C>",
    ),
    (
        13,
        "shadowed_let",
        "<R>C0000-x</R><R>C0001-x</R><R>C0002-x</R><R>C0003-x</R><R>C0004-x</R><R>C0005-x</R><R>C0006-x</R><R>C0007-x</R><R>C0008-x</R><R>C0009-x</R><R>C0010-x</R><R>C0011-x</R><R>C0012-x</R>",
    ),
    (13, "shadowed_for", "1 10 2 20 3 30"),
    (13, "typeswitch_case_vars", "2 two!<D><E>3</E></D>"),
    (
        13,
        "quantified_some",
        "<CID>C0001</CID><CID>C0002</CID><CID>C0004</CID><CID>C0005</CID><CID>C0007</CID><CID>C0008</CID><CID>C0010</CID><CID>C0011</CID>",
    ),
    (
        13,
        "quantified_every",
        "<CID>C0000</CID><CID>C0001</CID><CID>C0002</CID><CID>C0003</CID><CID>C0004</CID><CID>C0005</CID><CID>C0006</CID><CID>C0007</CID><CID>C0008</CID><CID>C0009</CID><CID>C0010</CID><CID>C0011</CID><CID>C0012</CID>",
    ),
    (
        13,
        "positional_at",
        "<P i=\"1\">a</P><P i=\"2\">b</P><P i=\"3\">c</P>",
    ),
    (13, "middleware_group", "<G k=\"C000\">9</G><G k=\"C001\">3</G>"),
    (
        13,
        "order_by_bound_tuples",
        "<O><LAST_NAME>Chen</LAST_NAME><CID>C0011</CID></O><O><LAST_NAME>Chen</LAST_NAME><CID>C0008</CID></O><O><LAST_NAME>Chen</LAST_NAME><CID>C0005</CID></O><O><LAST_NAME>Chen</LAST_NAME><CID>C0002</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0012</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0009</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0006</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0003</CID></O><O><LAST_NAME>Jones</LAST_NAME><CID>C0000</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0010</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0007</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0004</CID></O><O><LAST_NAME>Smith</LAST_NAME><CID>C0001</CID></O>",
    ),
    (
        13,
        "nested_join",
        "<C><CID>C0000</CID></C><C><CID>C0001</CID><O><OID>1</OID></O></C><C><CID>C0002</CID><O><OID>2</OID></O><O><OID>3</OID></O></C><C><CID>C0003</CID></C><C><CID>C0004</CID><O><OID>4</OID></O></C><C><CID>C0005</CID><O><OID>5</OID></O><O><OID>6</OID></O></C><C><CID>C0006</CID></C><C><CID>C0007</CID><O><OID>7</OID></O></C><C><CID>C0008</CID><O><OID>8</OID></O><O><OID>9</OID></O></C><C><CID>C0009</CID></C><C><CID>C0010</CID><O><OID>10</OID></O></C><C><CID>C0011</CID><O><OID>11</OID></O><O><OID>12</OID></O></C><C><CID>C0012</CID></C>",
    ),
];

fn query_text(name: &str) -> &'static str {
    CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, q)| *q)
        .expect("corpus entry")
}

fn run(w: &common::World, q: &str) -> String {
    let src = format!("{PROLOG}\n{q}");
    let out = w
        .server
        .execute(QueryRequest::new(&src).principal(Principal::new("demo", &[])))
        .unwrap_or_else(|e| panic!("query failed: {e}\n{q}"))
        .into_items();
    serialize_sequence(&out)
}

/// Every corpus query at every captured world size reproduces the seed
/// engine's serialized output byte for byte.
#[test]
fn slot_execution_matches_seed_goldens() {
    for &n in &[1usize, 7, 13] {
        let w = world(n);
        for &(gn, name, expected) in GOLDENS {
            if gn != n {
                continue;
            }
            assert_eq!(
                run(&w, query_text(name)),
                expected,
                "seed-identity broke for {name} at n={n}"
            );
        }
    }
}

proptest! {
    /// Property form of the identity check: a randomly chosen
    /// (world size, corpus query) pair — executed twice, so the second
    /// run goes through the bounded plan cache — still matches the
    /// captured seed output.
    #[test]
    fn random_corpus_point_matches_seed(pick in 0usize..1000) {
        let (n, name, expected) = GOLDENS[pick % GOLDENS.len()];
        let w = world(n);
        let q = query_text(name);
        prop_assert_eq!(run(&w, q), expected, "cold run, {} at n={}", name, n);
        prop_assert_eq!(run(&w, q), expected, "cached run, {} at n={}", name, n);
    }
}

/// EXPLAIN must keep printing human-readable variable names — slots are
/// an execution detail, not a rendering one.
#[test]
fn explain_keeps_variable_names() {
    let w = world(3);
    let q = format!("{PROLOG}\n{}", query_text("middleware_group"));
    let explain = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(Principal::new("demo", &[]))
                .explain_only(),
        )
        .expect("explain only")
        .into_plan_explain()
        .expect("explain requested");
    for base in ["$o", "$oid", "$ids", "$k"] {
        assert!(
            explain.contains(base),
            "EXPLAIN lost the {base} variable name:\n{explain}"
        );
    }
}
