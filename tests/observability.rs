//! Per-query observability: EXPLAIN output, operator traces, and their
//! consistency with each other and with the returned items.
//!
//! The world fixture makes every cardinality hand-computable: customer
//! `i` has `i % 3` orders and `i % 2` credit cards, so each trace
//! assertion below is checked against arithmetic, not against a prior
//! run of the engine.

mod common;

use aldsp::security::Principal;
use aldsp::{ExecutionOptions, JoinStrategy, QueryRequest, TraceKey, TraceLevel};
use common::{world, PROLOG};

fn demo() -> Principal {
    Principal::new("demo", &[])
}

/// The §4.2 PP-k block join (nested CREDIT_CARD lookup per customer):
/// the response carries an EXPLAIN naming the pushed SQL and a trace
/// whose per-node row counts are consistent with the returned items.
#[test]
fn ppk_block_join_trace_and_explain() {
    let w = world(10);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         return <P>{{ $c/CID,
           <CARDS>{{ for $k in cc:CREDIT_CARD() where $k/CID eq $c/CID return $k/CCN }}</CARDS> }}</P>"
    );
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    assert_eq!(resp.items().len(), 10, "one <P> per customer");

    // ---- EXPLAIN names the PP-k spec and the SQL pushed to each source
    let explain = resp.plan_explain().expect("explain with trace");
    assert!(explain.contains("SqlScan connection=db1"), "{explain}");
    assert!(explain.contains("SqlScan connection=db2"), "{explain}");
    assert!(
        explain.contains("ppk: k=20 local-join=index-nested-loop"),
        "{explain}"
    );
    assert!(
        explain.contains("sql> FROM \"CREDIT_CARD\" t1"),
        "{explain}"
    );
    assert!(explain.contains("sql> FROM \"CUSTOMER\" t1"), "{explain}");
    assert!(
        explain.contains("mode=streaming (pre-clustered, constant memory)"),
        "{explain}"
    );

    // ---- the trace's row counts, against the fixture's arithmetic
    let trace = resp.trace().expect("trace requested");
    let node = |key: TraceKey| *trace.node(key).expect("traced node");

    // customer scan: one seed tuple in, ten customers out, one roundtrip
    let scan = node(TraceKey::clause(1, 0));
    assert_eq!((scan.rows_in, scan.rows_out), (1, 10));
    assert_eq!(scan.source_roundtrips, 1);

    // PP-k scan: ten customers fit one block of k=20 → ONE roundtrip to
    // db2; the outer join emits one tuple per customer (five with a
    // card, five null-padded)
    let ppk = node(TraceKey::clause(1, 1));
    assert_eq!((ppk.rows_in, ppk.rows_out), (10, 10));
    assert_eq!(ppk.source_roundtrips, 1, "blocked, not per-customer");
    assert_eq!(
        w.db2.stats().roundtrips,
        1,
        "trace agrees with the backend's own counter"
    );

    // the streaming regroup keeps one group per customer
    let regroup = node(TraceKey::clause(1, 3));
    assert_eq!((regroup.rows_in, regroup.rows_out), (10, 10));

    // root: rows_out equals the delivered item count, and matches what
    // the last clause fed into the return
    let root = node(TraceKey::node(1));
    assert_eq!(root.rows_out, resp.items().len() as u64);
    assert_eq!(root.rows_out, regroup.rows_out);
}

/// A flat correlated join takes the parameterized-scan path instead of
/// PP-k: one db2 roundtrip per outer row, and the join drops the
/// cardless customers.
#[test]
fn correlated_join_trace_row_counts() {
    let w = world(10);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
         where $k/CID eq $c/CID
         return <R>{{ $c/CID, $k/CCN }}</R>"
    );
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    // customers 1,3,5,7,9 have one card each
    assert_eq!(resp.items().len(), 5);
    let trace = resp.trace().expect("trace requested");
    let node = |key: TraceKey| *trace.node(key).expect("traced node");

    let outer = node(TraceKey::clause(1, 0));
    assert_eq!((outer.rows_in, outer.rows_out), (1, 10));
    assert_eq!(outer.source_roundtrips, 1);

    let inner = node(TraceKey::clause(1, 1));
    assert_eq!((inner.rows_in, inner.rows_out), (10, 5));
    assert_eq!(inner.source_roundtrips, 10, "one probe per outer row");

    let root = node(TraceKey::node(1));
    assert_eq!(root.rows_out, 5);
}

/// Forcing the symmetric hash join on the flat cross-source join turns
/// ten-per-outer probe statements into ONE bulk fetch, and every
/// counter is hand-computable: world(40) has 20 credit cards (customers
/// 1,3,…,39), all of which land on the build side.
#[test]
fn forced_hash_join_counters_and_trace() {
    let w = world(40);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
         where $k/CID eq $c/CID
         return <R>{{ $c/CID, $k/CCN }}</R>"
    );
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .execution(ExecutionOptions::new().join_strategy(JoinStrategy::Hash))
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    assert_eq!(resp.items().len(), 20, "one <R> per card-holding customer");

    // ---- per-query counters: one hash join, 20 build rows, no reorder
    // (outer CUSTOMER=40 is the larger side, so the inner is built)
    let pq = resp.per_query_stats();
    assert_eq!(pq.hash_joins, 1);
    assert_eq!(pq.join_build_rows, 20, "every CREDIT_CARD row is buffered");
    assert_eq!(pq.join_reorders, 0);

    // ---- EXPLAIN carries the join planner's decision
    let explain = resp.plan_explain().expect("explain with trace");
    assert!(
        explain.contains("-- join: #1.1 strategy=hash est-build=20 est-probe=40 reordered=false"),
        "{explain}"
    );

    // ---- trace: the join clause fetched ONCE and buffered 20 rows
    let trace = resp.trace().expect("trace requested");
    let node = |key: TraceKey| *trace.node(key).expect("traced node");
    let outer = node(TraceKey::clause(1, 0));
    assert_eq!((outer.rows_in, outer.rows_out), (1, 40));
    assert_eq!(outer.source_roundtrips, 1);
    let join = node(TraceKey::clause(1, 1));
    assert_eq!((join.rows_in, join.rows_out), (40, 20));
    assert_eq!(join.source_roundtrips, 1, "bulk fetch, not per-outer");
    assert_eq!(join.join_build_rows, 20);

    // ---- the backends' own counters agree: one statement each
    assert_eq!(w.db1.stats().roundtrips, 1);
    assert_eq!(w.db2.stats().roundtrips, 1, "40 probes collapsed to 1");
}

/// With the smaller side *outer* (20 cards driving into 40 customers),
/// the planner's cardinality-driven reorder buffers the outer side
/// instead — `join_reorders` ticks, and the build-row count is the
/// outer cardinality.
#[test]
fn reordered_hash_join_buffers_the_smaller_outer_side() {
    let w = world(40);
    let q = format!(
        "{PROLOG}
         for $k in cc:CREDIT_CARD(), $c in c:CUSTOMER()
         where $c/CID eq $k/CID
         return <R>{{ $k/CCN, $c/LAST_NAME }}</R>"
    );
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .execution(ExecutionOptions::new().join_strategy(JoinStrategy::Hash))
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    assert_eq!(resp.items().len(), 20, "each card matches its one holder");

    let pq = resp.per_query_stats();
    assert_eq!(pq.hash_joins, 1);
    assert_eq!(pq.join_reorders, 1, "outer est 20 < inner est 40");
    assert_eq!(pq.join_build_rows, 20, "the buffered side is the outer");

    let explain = resp.plan_explain().expect("explain with trace");
    assert!(
        explain.contains("-- join: #1.1 strategy=hash est-build=20 est-probe=40 reordered=true"),
        "{explain}"
    );

    let trace = resp.trace().expect("trace requested");
    let join = *trace.node(TraceKey::clause(1, 1)).expect("join clause");
    assert_eq!((join.rows_in, join.rows_out), (20, 20));
    assert_eq!(join.source_roundtrips, 1);
    assert_eq!(join.join_build_rows, 20);
    assert_eq!(w.db1.stats().roundtrips, 1, "20 probes collapsed to 1");
    assert_eq!(w.db2.stats().roundtrips, 1);
}

/// A group-by whose key the SQL generator cannot push falls back to the
/// sort-based operator; the trace shows the 9→6 collapse and the
/// EXPLAIN says which mode the optimizer chose.
#[test]
fn sorted_group_by_trace_row_counts() {
    // world(9): customers 1,2,4,5,7,8 have orders (9 rows total); the
    // key — the CID's last digit — yields 6 distinct groups
    let w = world(9);
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         let $oid := $o/OID
         group $oid as $ids by fn:substring($o/CID, 5, 1) as $k
         return <G>{{ $k, $ids }}</G>"
    );
    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    assert_eq!(resp.items().len(), 6);
    let explain = resp.plan_explain().expect("explain with trace");
    assert!(
        explain.contains("GroupBy mode=sorted (buffers groups)"),
        "{explain}"
    );

    let trace = resp.trace().expect("trace requested");
    let node = |key: TraceKey| *trace.node(key).expect("traced node");
    let scan = node(TraceKey::clause(1, 0));
    assert_eq!((scan.rows_in, scan.rows_out), (1, 9));
    let group = node(TraceKey::clause(1, 2));
    assert_eq!((group.rows_in, group.rows_out), (9, 6));
    assert_eq!(node(TraceKey::node(1)).rows_out, 6);
}

/// Two concurrently traced executions over one shared server (and one
/// shared compiled-plan cache) each get their own counters — no bleed.
#[test]
fn concurrent_traces_are_isolated() {
    let w = world(10);
    let join = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $k in cc:CREDIT_CARD()
         where $k/CID eq $c/CID
         return <R>{{ $c/CID, $k/CCN }}</R>"
    );
    let scan = format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID");
    let run = |q: &str| {
        w.server
            .execute(
                QueryRequest::new(q)
                    .principal(demo())
                    .trace(TraceLevel::Operators),
            )
            .expect("executes")
    };
    std::thread::scope(|s| {
        let join_thread = s.spawn(|| {
            for _ in 0..50 {
                let resp = run(&join);
                let t = resp.trace().expect("trace");
                assert_eq!(t.node(TraceKey::node(1)).expect("root").rows_out, 5);
                assert_eq!(
                    t.node(TraceKey::clause(1, 1)).expect("inner").rows_out,
                    5,
                    "join trace polluted by the concurrent scan"
                );
            }
        });
        let scan_thread = s.spawn(|| {
            for _ in 0..50 {
                let resp = run(&scan);
                let t = resp.trace().expect("trace");
                let root = t.node(TraceKey::node(1)).expect("root");
                assert_eq!(root.rows_out, 10);
                assert!(
                    t.node(TraceKey::clause(1, 1)).is_none(),
                    "scan trace polluted by the concurrent join"
                );
            }
        });
        join_thread.join().expect("join workload");
        scan_thread.join().expect("scan workload");
    });
}

/// Untraced requests carry neither a trace nor an EXPLAIN, and
/// `explain_only` compiles without touching any source.
#[test]
fn trace_is_opt_in_and_explain_only_runs_nothing() {
    let w = world(4);
    let q = format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID");
    let plain = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("executes");
    assert!(plain.trace().is_none());
    assert!(plain.plan_explain().is_none());
    assert_eq!(plain.items().len(), 4);

    let before = w.db1.stats().roundtrips;
    let explained = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()).explain_only())
        .expect("explains");
    assert!(explained.items().is_empty());
    let explain = explained.plan_explain().expect("explain");
    assert!(explain.contains("sql> FROM \"CUSTOMER\" t1"), "{explain}");
    assert_eq!(
        w.db1.stats().roundtrips,
        before,
        "explain_only must not execute"
    );
}
