//! The Figure 3 running example, end to end through the server facade:
//! the deployed data-service module, view reuse with predicate pushdown,
//! PP-k economics, the plan cache, and the mediator call criteria.

mod common;

use aldsp::security::Principal;
use aldsp::xdm::item::Item;
use aldsp::xdm::value::AtomicValue;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::QName;
use aldsp::{CallCriteria, QueryRequest};
use common::{world, PROLOG};

const PROFILE_MODULE: &str = r#"
    declare namespace tns = "urn:profileDS";
    declare namespace ns2 = "urn:ccDS";
    declare namespace ns3 = "urn:custDS";
    declare namespace ns4 = "urn:ratingWS";
    declare namespace ns5 = "urn:ratingTypes";

    (::pragma function kind="read" ::)
    declare function tns:getProfile() as element(PROFILE)* {
      for $CUSTOMER in ns3:CUSTOMER()
      return
        <PROFILE>
          <CID>{fn:data($CUSTOMER/CID)}</CID>
          <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
          <ORDERS>{
            for $o in ns3:ORDER() where $o/CID eq $CUSTOMER/CID return $o/OID
          }</ORDERS>
          <CREDIT_CARDS>{
            for $k in ns2:CREDIT_CARD() where $k/CID eq $CUSTOMER/CID return $k/CCN
          }</CREDIT_CARDS>
        </PROFILE>
    };

    (::pragma function kind="read" ::)
    declare function tns:getProfileByID($id as xs:string) as element(PROFILE)* {
      tns:getProfile()[CID eq $id]
    };
"#;

fn demo() -> Principal {
    Principal::new("demo", &[])
}

#[test]
fn get_profile_integrates_both_databases() {
    let w = world(12);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let out = w
        .server
        .execute(QueryRequest::call(QName::new("urn:profileDS", "getProfile")).principal(demo()))
        .expect("executes")
        .into_items();
    assert_eq!(out.len(), 12);
    let s = serialize_sequence(&out);
    // a customer with orders and cards: C0005 (5%3=2 orders, 5%2=1 card)
    assert!(s.contains("<CID>C0005</CID>"), "{s}");
    // a customer with neither: C0000
    assert!(s.contains("<PROFILE><CID>C0000</CID><LAST_NAME>Jones</LAST_NAME><ORDERS/><CREDIT_CARDS/></PROFILE>"), "{s}");
    // PP-k: 12 customers in one block of 20 → exactly one db2 roundtrip
    assert_eq!(
        w.db2.stats().roundtrips,
        1,
        "{:?}",
        w.db2.stats().statements
    );
}

#[test]
fn get_profile_by_id_pushes_the_view_predicate() {
    let w = world(12);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let mark = w.db1.stats().statements.len();
    let out = w
        .server
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getProfileByID"))
                .args(vec![vec![Item::str("C0007")]])
                .principal(demo()),
        )
        .expect("executes")
        .into_items();
    assert_eq!(out.len(), 1);
    assert!(serialize_sequence(&out).contains("<CID>C0007</CID>"));
    // the $id predicate reached db1's SQL — the customer scan returns 1
    // row, not 12 (§4.2's efficiency-through-views requirement)
    let stats = w.db1.stats();
    let scan = stats.statements[mark..]
        .iter()
        .find(|s| s.contains("\"CUSTOMER\""))
        .expect("customer scan");
    assert!(scan.contains("WHERE"), "predicate not pushed: {scan}");
}

#[test]
fn navigation_method_compiles_to_a_join() {
    // the getORDER navigation function introspection created (§2.1)
    let w = world(6);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER(), $o in c:getORDER($c)
         return <CO>{{ $c/CID, $o/OID }}</CO>"
    );
    let out = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("executes")
        .into_items();
    assert_eq!(out.len(), 6); // 0+1+2+0+1+2
    assert_eq!(
        w.db1.stats().roundtrips,
        1,
        "navigation joined into one statement"
    );
}

#[test]
fn plan_cache_reuses_compiled_queries() {
    let w = world(4);
    let q = format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID");
    for _ in 0..5 {
        w.server
            .execute(QueryRequest::new(&q).principal(demo()))
            .expect("executes");
    }
    let (hits, misses) = w.server.plan_cache_stats();
    assert_eq!(misses, 1, "compiled once");
    assert_eq!(hits, 4, "reused four times");
}

#[test]
fn mediator_call_criteria_filter_sort_limit() {
    // §2.2: "the mediator API permits clients to include result filtering
    // and sorting criteria along with their request"
    let w = world(9);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let criteria = CallCriteria {
        filter: vec![("LAST_NAME".into(), AtomicValue::str("Smith"))],
        sort_by: Some("CID".into()),
        descending: true,
        limit: Some(2),
    };
    let out = w
        .server
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getProfile"))
                .criteria(criteria)
                .principal(demo()),
        )
        .expect("executes")
        .into_items();
    assert_eq!(out.len(), 2);
    let s = serialize_sequence(&out);
    // Smiths are customers 1,4,7; descending by CID, limited to 2
    let i7 = s.find("C0007").expect("C0007 present");
    let i4 = s.find("C0004").expect("C0004 present");
    assert!(i7 < i4, "descending order: {s}");
    assert!(!s.contains("C0001"), "limit applied: {s}");
}

#[test]
fn streaming_results_match_materialized() {
    // run the same query twice; the engine's pipeline is deterministic
    let w = world(10);
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         return <X>{{ $c/CID, count(for $o in c:ORDER() where $o/CID eq $c/CID return $o) }}</X>"
    );
    let a = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("first run")
        .into_items();
    let b = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("second run")
        .into_items();
    assert_eq!(serialize_sequence(&a), serialize_sequence(&b));
}

#[test]
fn async_figure3_variant_overlaps_service_calls() {
    let w = world(2);
    w.rating.set_latency(std::time::Duration::from_millis(25));
    let q = format!(
        r#"{PROLOG}
        for $c in c:CUSTOMER()
        return <P>{{
          fn-bea:async(<R1>{{fn:data(ws:getRating(
            <r:getRating><r:lName>{{fn:data($c/LAST_NAME)}}</r:lName><r:ssn>{{fn:data($c/SSN)}}</r:ssn></r:getRating>
          )/r:getRatingResult)}}</R1>),
          fn-bea:async(<R2>{{fn:data(ws:getRating(
            <r:getRating><r:lName>backup</r:lName><r:ssn>{{fn:data($c/SSN)}}</r:ssn></r:getRating>
          )/r:getRatingResult)}}</R2>)
        }}</P>"#
    );
    let t0 = std::time::Instant::now();
    let out = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("executes")
        .into_items();
    // 2 customers × 2 parallel calls of 25ms ≈ 2×25ms, not 4×25ms
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(90),
        "{:?}",
        t0.elapsed()
    );
    assert_eq!(out.len(), 2);
    assert_eq!(w.server.stats().async_spawns, 4);
}

#[test]
fn streaming_delivery_and_early_stop() {
    // §2.2: consume results incrementally without materializing
    let w = world(50);
    let q = format!("{PROLOG} for $c in c:CUSTOMER() return $c/CID");
    let mut seen = Vec::new();
    let mut sink = |item: Item| {
        seen.push(item.string_value());
        seen.len() < 5 // stop after five
    };
    let delivered = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()).stream_to(&mut sink))
        .expect("streams")
        .delivered();
    assert_eq!(delivered, 5);
    assert_eq!(seen, vec!["C0000", "C0001", "C0002", "C0003", "C0004"]);
    // full streaming run matches the materialized result
    let mut all = String::new();
    let n = w
        .server
        .query_to_writer(
            QueryRequest::new(&q).principal(demo()),
            &mut unsafe_writer(&mut all),
        )
        .expect("writes");
    assert_eq!(n, 50);
    let materialized = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("query")
        .into_items();
    assert_eq!(all, serialize_sequence(&materialized));
}

/// A `&mut String` as an `io::Write` shim for the test.
fn unsafe_writer(buf: &mut String) -> StringWriter<'_> {
    StringWriter(buf)
}

struct StringWriter<'a>(&'a mut String);

impl std::io::Write for StringWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.push_str(std::str::from_utf8(data).expect("utf8"));
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn user_defined_navigation_method_figure3() {
    // Figure 3's third function shape: a navigate-kind method taking a
    // PROFILE instance and correlating into another source
    let w = world(6);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    w.server
        .deploy(
            r#"
            declare namespace tns = "urn:profileDS";
            declare namespace ns3 = "urn:custDS";

            (::pragma function kind="navigate" ::)
            declare function tns:getORDERSof($arg as element(PROFILE)) as element(ORDER)* {
              for $o in ns3:ORDER() where $o/CID eq $arg/CID return $o
            };
            "#,
        )
        .expect("deploys the navigation method");
    // fetch a profile, then navigate from it
    let profiles = w
        .server
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getProfile"))
                .criteria(CallCriteria {
                    filter: vec![("CID".into(), AtomicValue::str("C0005"))],
                    ..Default::default()
                })
                .principal(demo()),
        )
        .expect("profile")
        .into_items();
    let orders = w
        .server
        .execute(
            QueryRequest::call(QName::new("urn:profileDS", "getORDERSof"))
                .args(vec![profiles])
                .principal(demo()),
        )
        .expect("navigates")
        .into_items();
    // customer 5 has 5%3 = 2 orders
    assert_eq!(orders.len(), 2, "{}", serialize_sequence(&orders));
}
