//! PR 6 safety net: the bytecode expression VM must be invisible in
//! results and visible in observability.
//!
//! Covers: byte-identical output with the VM on vs. off (the walker is
//! the oracle), the EXPLAIN `-- program:` disassembly, the
//! `vm_ops_executed` / `vm_fallback_subtrees` counters, per-operator
//! `vm_ns` trace attribution (and its absence untraced), and the
//! constant positional filter whose walker and VM paths share one
//! helper.

mod common;

use aldsp::security::Principal;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::{AldspServer, ExecutionOptions, PushdownLevel, QueryRequest, TraceKey, TraceLevel};
use common::{world_tuned, PROLOG};

fn demo() -> Principal {
    Principal::new("demo", &[])
}

fn run(server: &AldspServer, q: &str) -> String {
    match server.execute(QueryRequest::new(q).principal(demo())) {
        Ok(resp) => serialize_sequence(resp.items()),
        Err(e) => format!("<error: {e}>"),
    }
}

fn exec(server: &AldspServer, q: &str) -> aldsp::QueryResponse {
    server
        .execute(QueryRequest::new(q).principal(demo()))
        .expect("executes")
}

/// Middleware-heavy corpus: pushdown stays off so predicates, keys and
/// filters are evaluated by the engine (VM or walker), not the source.
const CORPUS: &[&str] = &[
    // comparison + arithmetic + boolean connectives in a where clause
    r#"for $o in c:ORDER()
       where $o/AMOUNT ge 20.00 and ($o/OID mod 2 eq 1 or $o/AMOUNT lt 100.00)
       return <R>{ $o/OID }</R>"#,
    // let over string builtins, order by a substring key (descending)
    r#"for $c in c:CUSTOMER()
       let $k := fn:concat($c/LAST_NAME, "-", $c/CID)
       order by fn:substring($k, 2, 5) descending, $c/CID
       return <K>{ $k }</K>"#,
    // group by a computed key through the sort-based group operator
    r#"for $o in c:ORDER()
       let $oid := $o/OID
       group $oid as $ids by fn:substring($o/CID, 1, 4) as $g
       return <G k="{$g}">{ fn:count($ids) }</G>"#,
    // casts, castable and instance-of in value space
    r#"for $x in (1, 2, 3)
       return (xs:string($x * 10), $x castable as xs:decimal,
               ($x + 1) instance of xs:integer)"#,
    // constant positional filters, in and out of range
    r#"let $s := (10, 20, 30)
       return ($s[2], $s[1], $s[4], ("a","b")[2])"#,
    // a quantified predicate: not lowerable, must fall back cleanly
    r#"for $c in c:CUSTOMER()
       where some $o in c:ORDER() satisfies $o/CID eq $c/CID
       return $c/CID"#,
    // sequence + range construction feeding an aggregate
    r#"for $x in (1 to 4)
       return fn:sum((1 to $x, 100))"#,
    // string predicates over child steps
    r#"for $c in c:CUSTOMER()
       where fn:contains($c/LAST_NAME, "e") and fn:starts-with($c/CID, "C0")
       return $c/LAST_NAME"#,
];

fn vm_world(n: usize, vm: bool) -> common::World {
    world_tuned(n, |b| {
        b.execution(ExecutionOptions::new().pushdown(PushdownLevel::Off))
            .vm(vm)
    })
}

/// The VM is an implementation detail: every corpus query serializes
/// byte-identically with programs on and off, at sizes that exercise
/// empty groups, nulls and multi-group keys.
#[test]
fn vm_matches_walker_bytes() {
    for n in [1, 7, 13] {
        let on = vm_world(n, true);
        let off = vm_world(n, false);
        for q in CORPUS {
            let q = format!("{PROLOG}{q}");
            assert_eq!(
                run(&on.server, &q),
                run(&off.server, &q),
                "vm/walker divergence at n={n} for {q}"
            );
        }
        // the off server really walked: no program ever executed
        assert_eq!(off.server.stats().vm_ops_executed, 0);
        // the on server really compiled: programs ran
        assert!(on.server.stats().vm_ops_executed > 0);
    }
}

/// EXPLAIN pins the compiled program: the `-- vm:` header counts
/// programs and declined subtrees, and each covered node carries its
/// disassembly.
#[test]
fn explain_pins_program_disassembly() {
    let w = vm_world(3, true);
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 20.00
         return $o/OID"
    );
    let resp = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()).explain_only())
        .expect("explains");
    let explain = resp.plan_explain().expect("explain-only output");
    assert!(explain.contains("-- vm: programs="), "{explain}");
    // the where predicate's program, op for op
    let want = "-- program: ops=5 stack=2\n\
                --   0: var slot=0 ($o__1)\n\
                --   1: child::AMOUNT\n\
                --   2: data\n\
                --   3: const 20\n\
                --   4: compare ge (value)";
    let normalized: String = explain
        .lines()
        .map(|l| l.trim_start())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(normalized.contains(want), "missing disassembly:\n{explain}");
    // with the VM off, no header and no disassembly
    let off = vm_world(3, false);
    let resp = off
        .server
        .execute(QueryRequest::new(&q).principal(demo()).explain_only())
        .expect("explains");
    let explain = resp.plan_explain().expect("explain-only output");
    assert!(!explain.contains("-- program:"), "{explain}");
}

/// The two VM counters: ops executed counts covered work, fallback
/// subtrees counts what lowering declined (once per execution, a
/// static plan property — not per tuple).
#[test]
fn vm_stats_count_ops_and_fallbacks() {
    let w = vm_world(5, true);
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 0.00
         return $o/OID"
    );
    let s1 = *exec(&w.server, &q).per_query_stats();
    assert!(s1.vm_ops_executed > 0, "covered predicate ran on the VM");

    // a quantified where cannot lower: the fallback counter moves, and
    // every execution reports the same static count (not a per-tuple
    // tally — n=5 customers would multiply it otherwise)
    let q = format!(
        "{PROLOG}
         for $c in c:CUSTOMER()
         where some $o in c:ORDER() satisfies $o/CID eq $c/CID
         return $c/CID"
    );
    let a = exec(&w.server, &q).per_query_stats().vm_fallback_subtrees;
    assert!(a > 0, "quantified predicate must be declined");
    assert!(a < 5, "fallbacks are per-execution, not per-tuple");
    let b = exec(&w.server, &q).per_query_stats().vm_fallback_subtrees;
    assert_eq!(b, a, "the declined count is a static plan property");
}

/// Untraced queries pay no VM timing (no trace, just the op counter);
/// traced queries attribute VM time to the owning operator, bounded by
/// that operator's wall time.
#[test]
fn vm_time_only_when_traced() {
    let w = vm_world(13, true);
    let q = format!(
        "{PROLOG}
         for $o in c:ORDER()
         where $o/AMOUNT ge 0.00
         return $o/OID"
    );
    let resp = w
        .server
        .execute(QueryRequest::new(&q).principal(demo()))
        .expect("executes");
    assert!(resp.trace().is_none(), "untraced by default");
    assert!(resp.per_query_stats().vm_ops_executed > 0);

    let resp = w
        .server
        .execute(
            QueryRequest::new(&q)
                .principal(demo())
                .trace(TraceLevel::Operators),
        )
        .expect("executes");
    let trace = resp.trace().expect("trace requested");
    let whole = trace.node(TraceKey::node(1)).expect("flwor node traced");
    let wc = trace
        .node(TraceKey::clause(1, 1))
        .expect("where clause traced");
    assert!(wc.vm_ns > 0, "where predicate time attributed to the VM");
    assert!(
        wc.vm_ns <= whole.wall_ns,
        "vm_ns {} exceeds the pipeline's wall {}",
        wc.vm_ns,
        whole.wall_ns
    );
    assert!(trace.render().contains("vm_us="));
}

/// The constant positional filter (`$s[2]`): one shared helper behind
/// the walker's `Filter` arm and the VM's `pick` op, checked against
/// hand-computed answers and against each other.
#[test]
fn const_positional_filter_picks_item() {
    let on = vm_world(1, true);
    let off = vm_world(1, false);
    for (q, want) in [
        ("let $s := (10, 20, 30) return $s[2]", "20"),
        ("let $s := (10, 20, 30) return $s[1]", "10"),
        ("let $s := (10, 20, 30) return $s[3]", "30"),
        ("let $s := (10, 20, 30) return $s[4]", ""),
        ("let $s := (10, 20, 30) return $s[0]", ""),
        ("(\"a\", \"b\")[2]", "b"),
    ] {
        let q = format!("{PROLOG}{q}");
        let got = run(&on.server, &q);
        assert_eq!(got, want, "{q}");
        assert_eq!(got, run(&off.server, &q), "{q}");
    }
}
