//! Incremental materialized data services (crates/matview): write-through
//! maintenance of cached data-service answers — reads stay live across
//! unrelated writes, point writes patch in place, and anything the
//! dependency record cannot prove sound surgically invalidates. Never a
//! TTL.

mod common;

use aldsp::security::{DenialAction, ElementResource, Principal, SecurityPolicy};
use aldsp::updates::ConcurrencyPolicy;
use aldsp::xdm::value::AtomicValue;
use aldsp::xdm::xml::serialize_sequence;
use aldsp::xdm::QName;
use aldsp::{CallCriteria, MatViewPolicy, QueryRequest};
use common::{world_tuned, World};

const PROFILE_MODULE: &str = r#"
    declare namespace tns = "urn:profileDS";
    declare namespace ns3 = "urn:custDS";
    declare namespace lib = "urn:lib";

    declare function tns:getProfile() as element(PROFILE)* {
      for $c in ns3:CUSTOMER()
      return
        <PROFILE>
          <CID>{fn:data($c/CID)}</CID>
          <LAST_NAME>{fn:data($c/LAST_NAME)}</LAST_NAME>
          <SINCE>{lib:int2date($c/SINCE)}</SINCE>
        </PROFILE>
    };

    declare function tns:getSecure() as element(SEC)* {
      for $c in ns3:CUSTOMER()
      return
        <SEC>
          <CID>{fn:data($c/CID)}</CID>
          <FIRST_NAME>{fn:data($c/FIRST_NAME)}</FIRST_NAME>
          <SSN>{fn:data($c/SSN)}</SSN>
        </SEC>
    };

    declare function tns:getJones() as element(J)* {
      for $c in ns3:CUSTOMER()
      where $c/LAST_NAME = "Jones"
      return <J><CID>{fn:data($c/CID)}</CID></J>
    };
"#;

fn profile() -> QName {
    QName::new("urn:profileDS", "getProfile")
}

fn secure() -> QName {
    QName::new("urn:profileDS", "getSecure")
}

fn jones() -> QName {
    QName::new("urn:profileDS", "getJones")
}

fn mat_world(n: usize) -> World {
    let w = world_tuned(n, |b| {
        b.materialize(profile(), MatViewPolicy::PatchOrInvalidate)
    });
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    w
}

fn read(w: &World, f: &QName) -> aldsp::QueryResponse {
    w.server
        .execute(QueryRequest::call(f.clone()).principal(Principal::new("demo", &[])))
        .expect("executes")
}

/// Change one column of one customer through the submit path (§6), so
/// the write emits per-source deltas for the registry to route.
fn write_through(w: &World, f: &QName, cid: &str, field: &str, value: AtomicValue) {
    let user = Principal::new("demo", &[]);
    let criteria = CallCriteria {
        filter: vec![("CID".into(), AtomicValue::str(cid))],
        ..Default::default()
    };
    let mut sdo = w
        .server
        .read_object(&user, f, vec![], &criteria)
        .expect("reads")
        .expect("row exists");
    sdo.set(field, Some(value)).expect("writable path");
    w.server
        .submit(&user, f, &sdo, ConcurrencyPolicy::UpdatedValues)
        .expect("submits");
}

/// The serialized cold answer: drop the view's entries (re-declaring a
/// materialized function resets it) and recompute from the sources.
fn cold_recompute(w: &World, f: &QName) -> String {
    w.server
        .materialize(f.clone(), MatViewPolicy::PatchOrInvalidate);
    let r = read(w, f);
    assert_eq!(r.per_query_stats().matview_recomputes, 1);
    serialize_sequence(r.items())
}

#[test]
fn second_read_is_a_hit() {
    let w = mat_world(6);
    let first = read(&w, &profile());
    assert_eq!(first.per_query_stats().matview_recomputes, 1);
    assert_eq!(first.per_query_stats().matview_hits, 0);
    let second = read(&w, &profile());
    assert_eq!(second.per_query_stats().matview_hits, 1);
    assert_eq!(second.per_query_stats().matview_recomputes, 0);
    assert_eq!(
        serialize_sequence(first.items()),
        serialize_sequence(second.items())
    );
    // the hit ran no source work at all
    assert_eq!(second.per_query_stats().source_calls, 0);
    assert_eq!(second.per_query_stats().sql_statements, 0);
}

#[test]
fn displayed_write_patches_in_place_and_stays_byte_identical() {
    let w = mat_world(6);
    read(&w, &profile()); // warm
    write_through(
        &w,
        &profile(),
        "C0002",
        "LAST_NAME",
        AtomicValue::str("Patched"),
    );
    let stats = w.server.stats();
    assert!(stats.matview_patches >= 1, "{stats:?}");
    // the patched entry is still live: the post-write read is a hit …
    let after = read(&w, &profile());
    assert_eq!(after.per_query_stats().matview_hits, 1);
    let warm = serialize_sequence(after.items());
    assert!(warm.contains("<LAST_NAME>Patched</LAST_NAME>"), "{warm}");
    // … and byte-identical to a cold recompute over the written sources
    assert_eq!(warm, cold_recompute(&w, &profile()));
    // maintenance was write-driven, not clock-driven: the TTL function
    // cache was never consulted
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_misses, 0);
    assert!(stats.matview_patches + stats.matview_recomputes >= 1);
}

#[test]
fn transformed_column_patches_through_the_forward_function() {
    let w = mat_world(5);
    read(&w, &profile()); // warm
                          // SINCE surfaces through lib:int2date — the delta carries the stored
                          // integer; the patch must re-apply the forward transform
    write_through(
        &w,
        &profile(),
        "C0001",
        "SINCE",
        AtomicValue::DateTime(aldsp::xdm::value::DateTime(7777)),
    );
    assert!(w.server.stats().matview_patches >= 1);
    let after = read(&w, &profile());
    assert_eq!(after.per_query_stats().matview_hits, 1);
    assert_eq!(
        serialize_sequence(after.items()),
        cold_recompute(&w, &profile())
    );
}

#[test]
fn unreferenced_column_write_leaves_entries_live() {
    let w = mat_world(6);
    read(&w, &profile()); // warm
    let before = w.server.stats();
    // SSN feeds getSecure but not getProfile: the delta must skip the
    // materialized view entirely
    write_through(&w, &secure(), "C0003", "SSN", AtomicValue::str("999999999"));
    let after = read(&w, &profile());
    assert_eq!(after.per_query_stats().matview_hits, 1);
    let stats = w.server.stats();
    assert_eq!(stats.matview_hits, before.matview_hits + 1);
    assert_eq!(stats.matview_recomputes, before.matview_recomputes);
    assert_eq!(stats.matview_invalidations, 0);
    assert_eq!(stats.matview_patches, 0);
}

#[test]
fn restricting_column_write_invalidates_and_recomputes() {
    let w = world_tuned(6, |b| {
        b.materialize(jones(), MatViewPolicy::PatchOrInvalidate)
    });
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let initial = read(&w, &jones());
    assert!(serialize_sequence(initial.items()).contains("C0000"));
    // LAST_NAME restricts getJones's membership (its WHERE clause):
    // patching would be unsound, so the write must invalidate
    write_through(
        &w,
        &profile(),
        "C0000",
        "LAST_NAME",
        AtomicValue::str("Chan"),
    );
    let stats = w.server.stats();
    assert!(stats.matview_invalidations >= 1, "{stats:?}");
    let after = read(&w, &jones());
    assert_eq!(after.per_query_stats().matview_recomputes, 1);
    assert_eq!(after.per_query_stats().matview_hits, 0);
    let s = serialize_sequence(after.items());
    assert!(
        !s.contains("C0000"),
        "membership must reflect the write: {s}"
    );
}

#[test]
fn invalidate_only_policy_never_patches() {
    let w = world_tuned(5, |b| {
        b.materialize(profile(), MatViewPolicy::InvalidateOnly)
    });
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    read(&w, &profile()); // warm
    write_through(
        &w,
        &profile(),
        "C0002",
        "LAST_NAME",
        AtomicValue::str("Dropped"),
    );
    let stats = w.server.stats();
    assert_eq!(stats.matview_patches, 0);
    assert!(stats.matview_invalidations >= 1);
    let after = read(&w, &profile());
    assert_eq!(after.per_query_stats().matview_recomputes, 1);
    assert!(serialize_sequence(after.items()).contains("<LAST_NAME>Dropped</LAST_NAME>"));
}

#[test]
fn element_security_applies_after_the_cache_per_principal() {
    // §7 over the matview: entries cache the raw answer; element-level
    // filtering runs per principal on every delivery, hit or miss
    let mut policy = SecurityPolicy::new();
    policy.add_resource(ElementResource {
        path: vec![QName::local("LAST_NAME")],
        allowed_roles: vec!["admin".into()],
        denial: DenialAction::Replace(AtomicValue::str("###")),
    });
    let w = world_tuned(4, |b| {
        b.materialize(profile(), MatViewPolicy::PatchOrInvalidate)
            .security(policy)
    });
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    let admin = Principal::new("root", &["admin"]);
    let intern = Principal::new("intern", &[]);
    let full = w
        .server
        .execute(QueryRequest::call(profile()).principal(admin))
        .expect("executes");
    assert_eq!(full.per_query_stats().matview_recomputes, 1);
    assert!(!serialize_sequence(full.items()).contains("###"));
    // the intern's read is served from the admin-filled entry — masked
    let masked = w
        .server
        .execute(QueryRequest::call(profile()).principal(intern))
        .expect("executes");
    assert_eq!(masked.per_query_stats().matview_hits, 1);
    let s = serialize_sequence(masked.items());
    assert!(s.contains("<LAST_NAME>###</LAST_NAME>"), "{s}");
    assert!(!s.contains("Jones"), "{s}");
}

#[test]
fn explain_carries_the_matview_header() {
    let w = mat_world(4);
    let cold = w
        .server
        .execute(
            QueryRequest::call(profile())
                .principal(Principal::new("demo", &[]))
                .explain_only(),
        )
        .expect("explains");
    let text = cold.plan_explain().expect("explain text");
    assert!(
        text.contains("-- matview: policy=patch-or-invalidate tables=0 entries=0"),
        "{text}"
    );
    read(&w, &profile()); // warm: deps + one entry
    let warm = w
        .server
        .execute(
            QueryRequest::call(profile())
                .principal(Principal::new("demo", &[]))
                .explain_only(),
        )
        .expect("explains");
    let text = warm.plan_explain().expect("explain text");
    assert!(
        text.contains("-- matview: policy=patch-or-invalidate tables=1 entries=1"),
        "{text}"
    );
    // non-materialized functions are unannotated
    let other = w
        .server
        .execute(
            QueryRequest::call(secure())
                .principal(Principal::new("demo", &[]))
                .explain_only(),
        )
        .expect("explains");
    assert!(!other
        .plan_explain()
        .expect("explain text")
        .contains("-- matview:"));
}

#[test]
fn runtime_materialization_and_status() {
    let w = world_tuned(4, |b| b);
    w.server.deploy(PROFILE_MODULE).expect("deploys");
    assert!(w.server.matview_status(&profile()).is_none());
    w.server
        .materialize(profile(), MatViewPolicy::PatchOrInvalidate);
    let s = w.server.matview_status(&profile()).expect("registered");
    assert_eq!((s.tables, s.entries), (0, 0));
    read(&w, &profile());
    let s = w.server.matview_status(&profile()).expect("registered");
    assert_eq!((s.tables, s.entries), (1, 1));
}

/// The torn-read detector behind the nightly matview-storm job: writer
/// threads rename their round's customer through submit; reader threads
/// assert every materialized answer is internally consistent (one
/// instance per customer — a torn patch or half-applied invalidation
/// breaks the count), and the final answer is byte-identical to a cold
/// recompute.
fn invalidation_storm(customers: usize, writers: usize, rounds: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let w = Arc::new(mat_world(customers));
    read(&w, &profile()); // warm
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..writers {
        let w = w.clone();
        handles.push(std::thread::spawn(move || {
            for r in 0..rounds {
                let i = (t + r * writers) % customers;
                let cid = format!("C{i:04}");
                let name = format!("W{t}R{r}");
                write_through(&w, &profile(), &cid, "LAST_NAME", AtomicValue::str(&name));
            }
        }));
    }
    let mut readers = Vec::new();
    for _ in 0..2 {
        let w = w.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            // `|| reads == 0`: on a loaded machine the writers can
            // finish before this thread is first scheduled; every
            // reader still checks at least one answer for tears
            while !stop.load(Ordering::Relaxed) || reads == 0 {
                let r = read(&w, &profile());
                let s = serialize_sequence(r.items());
                assert_eq!(
                    s.matches("<PROFILE>").count(),
                    customers,
                    "torn answer: {s}"
                );
                reads += 1;
            }
            reads
        }));
    }
    for h in handles {
        h.join().expect("writer thread");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader thread") > 0);
    }
    // post-storm: the live answer matches a cold recompute byte for byte
    let live = serialize_sequence(read(&w, &profile()).items());
    assert_eq!(live, cold_recompute(&w, &profile()));
}

#[test]
fn invalidation_storm_smoke() {
    invalidation_storm(4, 2, 10);
}

#[test]
#[ignore = "long-running; exercised by the nightly matview-storm job"]
fn invalidation_storm_full() {
    invalidation_storm(12, 4, 200);
}
